//! Business-review scenario (the paper's Yelp motivation): sparse reviewer
//! graphs where the average user degree is low, so high-order ("deep")
//! neighbours carry the signal. Demonstrates WIDEN's active downsampling
//! and measures the efficiency it buys.
//!
//! Run with: `cargo run --release --example business_reviews`

use widen::core::{Trainer, Variant, WidenConfig, WidenModel};
use widen::data::{yelp_like, Scale};
use widen::eval::micro_f1;

fn main() {
    let dataset = yelp_like(Scale::Smoke, 33);
    println!("{}\n", dataset.stats().render());

    let train = &dataset.transductive.train;
    let test = &dataset.transductive.test;
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();

    // Compare the full model against the "No Downsampling" variant to see
    // the accuracy/efficiency trade-off of §3.3.
    for (label, variant) in [
        ("attentive downsampling", Variant::full()),
        ("no downsampling", Variant::no_downsampling()),
    ] {
        let mut config = WidenConfig::small();
        config.epochs = 14;
        // Loose trigger so downsampling visibly engages in a short run.
        config.r_wide = 0.05;
        config.r_deep = 0.05;
        config.variant = variant;
        let model = WidenModel::for_graph(&dataset.graph, config);
        let mut trainer = Trainer::new(model, &dataset.graph, train);
        let before = trainer.neighbor_volume();
        let report = trainer.fit(train);
        let after = trainer.neighbor_volume();
        let model = trainer.into_model();
        let preds = model.predict(&dataset.graph, test, 5);
        println!("[{label}]");
        println!(
            "  micro-F1 {:.4}   total train time {:.3}s   message volume {} -> {}",
            micro_f1(&truth, &preds),
            report.total_secs(),
            before.0 + before.1,
            after.0 + after.1,
        );
        println!(
            "  drops: {} wide, {} deep ({} relay edges preserved walk semantics)\n",
            report.wide_drops, report.deep_drops, report.relay_edges
        );
    }

    // Business quality prediction for "new" businesses — the paper's
    // motivating use case ("especially useful for evaluating new businesses
    // where customer feedback is sparse").
    let mut config = WidenConfig::small();
    config.epochs = 14;
    let reduced = dataset.graph.without_nodes(&dataset.inductive.test);
    let train_new: Vec<u32> = dataset
        .inductive
        .train
        .iter()
        .filter_map(|&v| reduced.mapping.to_new(v))
        .collect();
    let model = WidenModel::for_graph(&reduced.graph, config);
    let mut trainer = Trainer::new(model, &reduced.graph, &train_new);
    trainer.fit(&train_new);
    let model = trainer.into_model();
    let preds = model.predict(&dataset.graph, &dataset.inductive.test, 5);
    let truth: Vec<usize> = dataset
        .inductive
        .test
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    println!(
        "cold-start businesses (never seen in training): micro-F1 {:.4} over {} nodes",
        micro_f1(&truth, &preds),
        preds.len()
    );
}
