//! Quickstart: train WIDEN on a small ACM-like heterogeneous graph and
//! classify papers.
//!
//! Run with: `cargo run --release --example quickstart`

use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::eval::micro_f1;

fn main() {
    // 1. Generate a small heterogeneous academic graph (papers, authors,
    //    subjects) with three paper classes.
    let dataset = acm_like(Scale::Smoke, 7);
    println!("{}", dataset.stats().render());

    // 2. Configure WIDEN. `small()` is a CPU-friendly setting; `paper()`
    //    reproduces §4.4 of the paper.
    let mut config = WidenConfig::small();
    config.epochs = 15;
    let model = WidenModel::for_graph(&dataset.graph, config);
    println!("model parameters: {}", model.parameter_count());

    // 3. Train on the transductive split (Algorithm 3).
    let train = &dataset.transductive.train;
    let mut trainer = Trainer::new(model, &dataset.graph, train);
    let report = trainer.fit(train);
    println!(
        "trained {} epochs: loss {:.4} -> {:.4}, {} wide drops, {} deep prunes, {} relay edges",
        report.epoch_losses.len(),
        report.epoch_losses[0],
        report.final_loss(),
        report.wide_drops,
        report.deep_drops,
        report.relay_edges,
    );

    // 4. Evaluate micro-F1 on the held-out test nodes.
    let model = trainer.into_model();
    let test = &dataset.transductive.test;
    let preds = model.predict(&dataset.graph, test, 999);
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();
    println!("test micro-F1: {:.4}", micro_f1(&truth, &preds));

    // 5. Inductive usage: embed nodes the model never saw during training.
    let emb = model.embed_nodes(&dataset.graph, &dataset.inductive.test, 1234);
    println!(
        "embedded {} unseen nodes into {}-d unit vectors",
        emb.rows(),
        emb.cols()
    );
}
