//! Streaming / evolving-graph scenario (the paper's inductiveness
//! motivation, §1): train once, then embed waves of newly arriving nodes
//! without retraining — "new users and videos on YouTube".
//!
//! Run with: `cargo run --release --example streaming_inductive`

use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::eval::{micro_f1, silhouette_score};
use widen::graph::NodeId;

fn main() {
    let dataset = acm_like(Scale::Smoke, 55);
    println!("{}\n", dataset.stats().render());

    // Train on the graph with ALL held-out nodes removed.
    let held_out = &dataset.inductive.test;
    let reduced = dataset.graph.without_nodes(held_out);
    let train: Vec<NodeId> = dataset
        .inductive
        .train
        .iter()
        .filter_map(|&v| reduced.mapping.to_new(v))
        .collect();
    let mut config = WidenConfig::small();
    config.epochs = 15;
    let model = WidenModel::for_graph(&reduced.graph, config);
    let mut trainer = Trainer::new(model, &reduced.graph, &train);
    let report = trainer.fit(&train);
    let model = trainer.into_model();
    println!(
        "trained once on {} nodes ({} epochs, final loss {:.4}); weights are now frozen\n",
        reduced.graph.num_nodes(),
        report.epoch_losses.len(),
        report.final_loss()
    );

    // The held-out nodes "arrive" in three waves; each wave is embedded and
    // classified with zero retraining — the inductive property.
    let wave_size = held_out.len().div_ceil(3);
    for (wave, chunk) in held_out.chunks(wave_size).enumerate() {
        let preds = model.predict(&dataset.graph, chunk, 100 + wave as u64);
        let truth: Vec<usize> = chunk
            .iter()
            .map(|&v| dataset.graph.label(v).unwrap() as usize)
            .collect();
        let emb = model.embed_nodes(&dataset.graph, chunk, 100 + wave as u64);
        let sil = if chunk.len() >= 10 {
            silhouette_score(&emb, &truth)
        } else {
            f64::NAN
        };
        println!(
            "wave {}: {} unseen nodes  micro-F1 {:.4}  embedding silhouette {:.3}",
            wave + 1,
            chunk.len(),
            micro_f1(&truth, &preds),
            sil
        );
    }

    println!(
        "\n(every prediction above used only the frozen weights plus freshly sampled\n\
         wide/deep neighbourhoods of the new nodes — no gradient step was taken)"
    );
}
