//! Streaming / evolving-graph scenario (the paper's inductiveness
//! motivation, §1): train once, then nodes *arrive* — "new users and
//! videos on YouTube" — and are embedded without retraining.
//!
//! The serving graph here starts as the training graph and literally
//! grows: each wave lands through `HeteroGraph::add_node_with_edges`, so
//! no pre-built full graph is ever consulted at serving time. Frozen
//! weights + freshly sampled neighbourhoods of the grown graph are the
//! whole story.
//!
//! Run with: `cargo run --release --example streaming_inductive`

use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{acm_like, Scale};
use widen::eval::{micro_f1, silhouette_score};
use widen::graph::{EdgeTypeId, NodeId};

fn main() {
    let dataset = acm_like(Scale::Smoke, 55);
    println!("{}\n", dataset.stats().render());

    // Train on the graph with ALL held-out nodes removed.
    let held_out = &dataset.inductive.test;
    let reduced = dataset.graph.without_nodes(held_out);
    let train: Vec<NodeId> = dataset
        .inductive
        .train
        .iter()
        .filter_map(|&v| reduced.mapping.to_new(v))
        .collect();
    let mut config = WidenConfig::small();
    config.epochs = 15;
    let model = WidenModel::for_graph(&reduced.graph, config);
    let mut trainer = Trainer::new(model, &reduced.graph, &train);
    let report = trainer.fit(&train);
    let model = trainer.into_model();
    println!(
        "trained once on {} nodes ({} epochs, final loss {:.4}); weights are now frozen\n",
        reduced.graph.num_nodes(),
        report.epoch_losses.len(),
        report.final_loss()
    );

    // The held-out nodes arrive in three waves. Each arrival is streamed
    // into the serving graph with its edges to already-present peers
    // (edges to later arrivals are added by *their* ingest), then the
    // wave is embedded and classified with zero retraining.
    let mut g = reduced.graph.clone();
    let mut arrived: Vec<Option<NodeId>> = (0..dataset.graph.num_nodes() as NodeId)
        .map(|v| reduced.mapping.to_new(v))
        .collect();
    let wave_size = held_out.len().div_ceil(3);
    for (wave, chunk) in held_out.chunks(wave_size).enumerate() {
        let mut new_ids = Vec::with_capacity(chunk.len());
        for &v in chunk {
            let edges: Vec<(NodeId, EdgeTypeId)> = dataset
                .graph
                .neighbors(v)
                .iter()
                .zip(dataset.graph.edge_types_of(v))
                .filter_map(|(&u, &t)| arrived[u as usize].map(|nu| (nu, EdgeTypeId(t))))
                .collect();
            let id = g
                .add_node_with_edges(
                    dataset.graph.node_type(v),
                    dataset.graph.feature_row(v).to_vec(),
                    dataset.graph.label(v),
                    &edges,
                )
                .expect("held-out node streams in cleanly");
            arrived[v as usize] = Some(id);
            new_ids.push(id);
        }

        let preds = model.predict(&g, &new_ids, 100 + wave as u64);
        let truth: Vec<usize> = chunk
            .iter()
            .map(|&v| dataset.graph.label(v).unwrap() as usize)
            .collect();
        let emb = model.embed_nodes(&g, &new_ids, 100 + wave as u64);
        let sil = if chunk.len() >= 10 {
            silhouette_score(&emb, &truth)
        } else {
            f64::NAN
        };
        println!(
            "wave {}: {} arrivals (graph now {} nodes / {} edges)  micro-F1 {:.4}  silhouette {:.3}",
            wave + 1,
            chunk.len(),
            g.num_nodes(),
            g.num_directed_edges() / 2,
            micro_f1(&truth, &preds),
            sil
        );
    }

    println!(
        "\n(every prediction above used only the frozen weights plus freshly sampled\n\
         wide/deep neighbourhoods of a graph grown in place via add_node_with_edges —\n\
         no gradient step was taken and no pre-built full graph was consulted)"
    );
}
