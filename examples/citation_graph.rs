//! Citation-graph walkthrough: build a DBLP-like heterogeneous academic
//! graph (authors / papers / conferences / terms), train WIDEN and three
//! baselines, and compare them the way the paper's Table 2 does.
//!
//! Run with: `cargo run --release --example citation_graph`

use widen::baselines::{gcn::Gcn, han::Han, sage::GraphSage, BaselineConfig, NodeClassifier};
use widen::core::{Trainer, WidenConfig, WidenModel};
use widen::data::{dblp_like, subset_fraction, Scale};
use widen::eval::{macro_f1, micro_f1};

fn main() {
    let dataset = dblp_like(Scale::Smoke, 21);
    println!("{}\n", dataset.stats().render());

    let train_full = &dataset.transductive.train;
    let test = &dataset.transductive.test;
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).unwrap() as usize)
        .collect();

    // Sweep label fractions like Table 2's 25/50/75/100% columns.
    for frac in [0.25, 0.5, 1.0] {
        let train = subset_fraction(train_full, frac);
        println!(
            "--- {:.0}% of training labels ({} nodes) ---",
            frac * 100.0,
            train.len()
        );

        // WIDEN.
        let mut config = WidenConfig::small();
        config.epochs = 12;
        let model = WidenModel::for_graph(&dataset.graph, config);
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        trainer.fit(&train);
        let model = trainer.into_model();
        let preds = model.predict(&dataset.graph, test, 7);
        println!(
            "WIDEN      micro-F1 {:.4}  macro-F1 {:.4}",
            micro_f1(&truth, &preds),
            macro_f1(&truth, &preds, dataset.graph.num_classes())
        );

        // Baselines sharing the budget.
        let cfg = BaselineConfig {
            epochs: 12,
            learning_rate: 1e-2,
            ..Default::default()
        };
        let mut methods: Vec<Box<dyn NodeClassifier>> = vec![
            Box::new(Gcn::new(cfg.clone())),
            Box::new(GraphSage::new(cfg.clone())),
            Box::new(Han::new(cfg.clone())),
        ];
        for method in &mut methods {
            method.fit(&dataset.graph, &train);
            let preds = method.predict(&dataset.graph, test);
            println!(
                "{:<10} micro-F1 {:.4}  macro-F1 {:.4}",
                method.name(),
                micro_f1(&truth, &preds),
                macro_f1(&truth, &preds, dataset.graph.num_classes())
            );
        }
        println!();
    }
}
