//! Bring-your-own-schema walkthrough: define a custom heterogeneous
//! schema (a movie / user / genre graph), generate it, export/import it as
//! TSV, and train WIDEN **without labels** using the contrastive objective
//! — then probe the embeddings with 1-NN.
//!
//! Run with: `cargo run --release --example custom_schema`

use widen::core::{fit_unsupervised, UnsupervisedConfig, WidenConfig, WidenModel};
use widen::data::{EdgeTypeSpec, HeteroSbmConfig, NodeTypeSpec};
use widen::graph::{read_tsv, write_tsv};

fn main() {
    // 1. A custom schema: movies carry 3 latent genres-of-taste classes;
    //    users rate movies, movies belong to genre nodes.
    let config = HeteroSbmConfig {
        node_types: vec![
            NodeTypeSpec::new("movie", 240, true),
            NodeTypeSpec::new("user", 500, false),
            NodeTypeSpec::new("genre", 12, false),
        ],
        edge_types: vec![
            EdgeTypeSpec::new("rated", 1, 0, 3.0, 0.6),
            EdgeTypeSpec::new("belongs-to", 0, 2, 1.5, 0.85),
        ],
        num_classes: 3,
        feature_dim: 24,
        feature_signal_labeled: 0.3,
        feature_signal_unlabeled: 0.7,
        feature_noise: 1.0,
        hub_fraction: 0.05,
        informative_fraction: 0.7,
    };
    let graph = config.generate(2026);
    println!(
        "generated custom graph: {} nodes, {} edges, {} node types, {} edge types",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_node_types(),
        graph.num_edge_types()
    );

    // 2. Round-trip through the TSV exchange format (what you would do to
    //    load your own data instead).
    let mut buf = Vec::new();
    write_tsv(&graph, &mut buf).expect("serialise");
    println!("TSV export: {} bytes", buf.len());
    let graph = read_tsv(std::io::Cursor::new(buf)).expect("parse");

    // 3. Unsupervised WIDEN: contrastive training over walk co-occurrence.
    //    No label is read at any point.
    let mut cfg = WidenConfig::small();
    cfg.d = 24;
    cfg.batch_size = 32;
    let mut model = WidenModel::for_graph(&graph, cfg);
    let nodes: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    let report = fit_unsupervised(
        &mut model,
        &graph,
        &nodes,
        &UnsupervisedConfig {
            epochs: 8,
            ..Default::default()
        },
    );
    println!(
        "contrastive loss: {:.4} -> {:.4} over {} epochs",
        report.epoch_losses[0],
        report.final_loss(),
        report.epoch_losses.len()
    );

    // 4. Probe: 1-NN same-class rate over movie embeddings (labels used
    //    only for evaluation).
    let movies = graph.labeled_nodes();
    let emb = model.embed_nodes(&graph, &movies, 7);
    let labels: Vec<usize> = movies
        .iter()
        .map(|&v| graph.label(v).unwrap() as usize)
        .collect();
    let mut hits = 0;
    for i in 0..emb.rows() {
        let (mut best, mut best_d) = (usize::MAX, f32::INFINITY);
        for j in 0..emb.rows() {
            if i == j {
                continue;
            }
            let d: f32 = emb
                .row(i)
                .iter()
                .zip(emb.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best_d {
                best_d = d;
                best = j;
            }
        }
        hits += usize::from(labels[best] == labels[i]);
    }
    println!(
        "1-NN same-class rate of unsupervised embeddings: {:.3} (chance ≈ 0.333)",
        hits as f64 / emb.rows() as f64
    );

    // 5. Checkpoint the weights — a downstream service would load these.
    let checkpoint = model.save_weights();
    println!("checkpoint size: {} bytes", checkpoint.len());
}
