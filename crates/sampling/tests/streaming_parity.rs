//! Differential parity tests for the streaming sampling structures.
//!
//! Two contracts are pinned here:
//!
//! 1. [`StreamingAlias`] maintained per-delta is **bitwise** identical to
//!    one rebuilt from scratch over the final weights — same totals, and
//!    the *same sample stream* under the same RNG seed, across hostile
//!    weight schedules (zeros, duplicates, single-entry tables, growth
//!    over capacity boundaries).
//! 2. The wide/deep walk samplers draw identical streams from a mutated
//!    `HeteroGraph` and a scratch-built one — their "incremental
//!    structure" is the graph's span-arena adjacency itself, so graph
//!    mutation parity must carry through to sampled sets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_graph::{EdgeTypeId, GraphBuilder, NodeTypeId};
use widen_sampling::{hash_seed, sample_deep, sample_wide, AliasTable, StreamingAlias};

/// Hostile weight values: exact zeros, duplicates of 1.0, subnormal-ish
/// tiny values, large magnitudes.
fn hostile_weight() -> impl Strategy<Value = f32> {
    (0usize..6, 0.0f32..4.0).prop_map(|(pick, ordinary)| match pick {
        0 => 0.0,
        1 => 1.0, // deliberate duplicate mass
        2 => 1.0e-20,
        3 => 1.0e20,
        4 => 0.5,
        _ => ordinary,
    })
}

/// One streaming op against the sampler.
#[derive(Clone, Debug)]
enum Op {
    Set(usize, f32),
    Push(f32),
}

fn op() -> impl Strategy<Value = Op> {
    (0usize..2, 0usize..64, hostile_weight()).prop_map(|(kind, idx, w)| match kind {
        0 => Op::Set(idx, w),
        _ => Op::Push(w),
    })
}

/// Drains `n` samples; panics inside `sample` are the caller's concern.
fn stream(s: &StreamingAlias, seed: u64, n: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| s.sample(&mut rng)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_alias_matches_rebuilt_exactly(
        init in prop::collection::vec(hostile_weight(), 1..24),
        ops in prop::collection::vec(op(), 0..40),
        seed in 0u64..1000,
    ) {
        let mut inc = StreamingAlias::new(&init);
        let mut final_weights: Vec<f32> = init.clone();
        for o in &ops {
            match *o {
                Op::Set(idx, w) => {
                    let idx = idx % final_weights.len();
                    inc.set_weight(idx, w);
                    final_weights[idx] = w;
                }
                Op::Push(w) => {
                    inc.push(w);
                    final_weights.push(w);
                }
            }
        }
        let rebuilt = StreamingAlias::new(&final_weights);

        // Bitwise-identical totals and per-category weights.
        prop_assert_eq!(inc.len(), rebuilt.len());
        prop_assert_eq!(inc.total().to_bits(), rebuilt.total().to_bits());
        for i in 0..inc.len() {
            prop_assert_eq!(inc.weight(i).to_bits(), rebuilt.weight(i).to_bits());
        }

        if inc.total() > 0.0 {
            // Same seed, same stream — the differential guarantee.
            prop_assert_eq!(stream(&inc, seed, 64), stream(&rebuilt, seed, 64));
            // Zero-weight categories are unreachable.
            for &i in &stream(&inc, seed.wrapping_add(1), 64) {
                prop_assert!(inc.weight(i) > 0.0, "drew zero-weight category {i}");
            }
        }

        // The explicit rebuild fallback is a value-level no-op.
        let mut rebuilt_again = inc.clone();
        rebuilt_again.rebuild();
        prop_assert_eq!(rebuilt_again.total().to_bits(), inc.total().to_bits());
        if inc.total() > 0.0 {
            prop_assert_eq!(stream(&rebuilt_again, seed, 64), stream(&inc, seed, 64));
        }
    }

    #[test]
    fn streaming_alias_agrees_with_walker_alias_distribution(
        weights in prop::collection::vec(1.0f32..8.0, 1..12),
    ) {
        // Distribution-level (not stream-level: the two samplers consume
        // RNG differently by design) agreement with the O(1) table.
        let walker = AliasTable::new(&weights);
        let tree = StreamingAlias::new(&weights);
        let n = 40_000usize;
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(12);
        let mut counts_a = vec![0usize; weights.len()];
        let mut counts_b = vec![0usize; weights.len()];
        for _ in 0..n {
            counts_a[walker.sample(&mut rng_a)] += 1;
            counts_b[tree.sample(&mut rng_b)] += 1;
        }
        for i in 0..weights.len() {
            let fa = counts_a[i] as f64 / n as f64;
            let fb = counts_b[i] as f64 / n as f64;
            prop_assert!(
                (fa - fb).abs() < 0.02,
                "category {i}: walker {fa:.4} vs tree {fb:.4}"
            );
        }
    }
}

/// Builds a small three-type graph, returning (scratch, mutated): the
/// scratch graph gets every node and edge through the builder, the
/// mutated one starts from the first `split` nodes and streams the rest
/// through the mutation API.
fn build_pair(split: usize) -> (widen_graph::HeteroGraph, widen_graph::HeteroGraph) {
    let nodes: Vec<u16> = (0..30).map(|i| (i % 3) as u16).collect();
    let edges: Vec<(u32, u32, u16)> = (0..nodes.len() as u32)
        .flat_map(|i| {
            (0..i)
                .filter(move |j| (i + j) % 3 != 0 || j + 1 == i)
                .map(move |j| (i, j, ((i * 7 + j) % 2) as u16))
        })
        .collect();

    let build = |n: usize, es: &[(u32, u32, u16)]| {
        let mut b = GraphBuilder::new(&["a", "b", "c"], &["e0", "e1"]).with_classes(2);
        for &t in &nodes[..n] {
            b.add_node(NodeTypeId(t), vec![t as f32], None);
        }
        for &(x, y, t) in es {
            b.add_edge(x, y, EdgeTypeId(t));
        }
        b.build()
    };

    let scratch = build(nodes.len(), &edges);

    let prefix: Vec<_> = edges
        .iter()
        .copied()
        .filter(|&(x, y, _)| (x as usize) < split && (y as usize) < split)
        .collect();
    let mut mutated = build(split, &prefix);
    for (i, &ty) in nodes.iter().enumerate().skip(split) {
        let attached: Vec<(u32, EdgeTypeId)> = edges
            .iter()
            .filter(|&&(x, y, _)| x as usize == i && (y as usize) < i)
            .map(|&(_, y, t)| (y, EdgeTypeId(t)))
            .collect();
        mutated
            .add_node_with_edges(NodeTypeId(ty), vec![ty as f32], None, &attached)
            .expect("valid ingest");
    }
    (scratch, mutated)
}

#[test]
fn wide_and_deep_streams_survive_graph_mutation() {
    let (scratch, mutated) = build_pair(9);
    scratch.validate();
    mutated.validate();
    assert_eq!(scratch.num_directed_edges(), mutated.num_directed_edges());
    for v in 0..scratch.num_nodes() as u32 {
        for stream_id in 0..4u64 {
            let seed = hash_seed(97, &[u64::from(v), stream_id]);
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            assert_eq!(
                sample_wide(&scratch, v, 6, &mut rng_a),
                sample_wide(&mutated, v, 6, &mut rng_b),
                "wide stream diverged at node {v}, stream {stream_id}"
            );
            let mut rng_a = StdRng::seed_from_u64(seed ^ 0xDEAD);
            let mut rng_b = StdRng::seed_from_u64(seed ^ 0xDEAD);
            assert_eq!(
                sample_deep(&scratch, v, 8, &mut rng_a),
                sample_deep(&mutated, v, 8, &mut rng_b),
                "deep stream diverged at node {v}, stream {stream_id}"
            );
        }
    }
}

#[test]
fn wide_and_deep_streams_survive_compaction() {
    let (_, mut mutated) = build_pair(5);
    let before: Vec<_> = (0..mutated.num_nodes() as u32)
        .map(|v| {
            let mut rng = StdRng::seed_from_u64(hash_seed(7, &[u64::from(v)]));
            sample_wide(&mutated, v, 5, &mut rng)
        })
        .collect();
    mutated.compact();
    for (v, want) in before.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(hash_seed(7, &[v as u64]));
        assert_eq!(&sample_wide(&mutated, v as u32, 5, &mut rng), want);
    }
}
