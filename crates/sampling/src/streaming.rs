//! Incrementally-maintained weighted sampling for streaming graphs.
//!
//! [`AliasTable`](crate::AliasTable) is O(1) per draw but its internal
//! layout depends on the *global* order the small/large worklists drain
//! in, so a single weight delta cannot be repaired in place without
//! recomputing the whole table — and a repaired table would not even be
//! bit-identical to a rebuilt one. [`StreamingAlias`] trades the O(1)
//! draw for an O(log n) one over an implicit segment tree of weight sums,
//! which buys the property the streaming subsystem is pinned on:
//!
//! > Every internal node is *defined* as `left + right`, so a per-delta
//! > path update recomputes exactly the expressions a rebuild-from-scratch
//! > evaluates. Incremental and rebuilt trees are **bitwise identical**,
//! > and therefore draw **identical sample streams** under the same RNG
//! > seed — not merely the same distribution.
//!
//! The wide/deep walk structures need no analogue: they sample directly
//! off the graph's adjacency slices, so their incremental maintenance is
//! inherited from `HeteroGraph`'s span-arena mutation API (see the
//! "Streaming graphs" section of DESIGN.md) and pinned by the
//! mutated-vs-scratch parity tests.

use rand::Rng;

/// A dynamic discrete distribution over `0..len` supporting O(log n)
/// draws, O(log n) weight updates and amortised O(log n) appends, with
/// the incremental-equals-rebuilt bitwise guarantee described in the
/// module docs.
#[derive(Clone, Debug)]
pub struct StreamingAlias {
    /// Live leaf weights, as the f64 the tree sums.
    weights: Vec<f64>,
    /// Implicit binary tree: root at 1, leaf `i` at `cap + i`,
    /// `tree[k] == tree[2k] + tree[2k + 1]` for internal `k`.
    tree: Vec<f64>,
    /// Power-of-two leaf capacity (`weights.len().next_power_of_two()`).
    cap: usize,
    /// Weight deltas (updates + appends) applied since the last rebuild.
    deltas: usize,
}

impl StreamingAlias {
    /// Builds the sampler from non-negative finite weights. An all-zero
    /// (or empty) distribution is representable — only [`Self::sample`]
    /// requires a positive total, so weights may pass through zero while
    /// streaming.
    ///
    /// # Panics
    /// Panics if any weight is negative, infinite or NaN.
    pub fn new(weights: &[f32]) -> Self {
        let weights: Vec<f64> = weights.iter().map(|&w| Self::check(w)).collect();
        let mut s = Self {
            cap: weights.len().next_power_of_two().max(1),
            weights,
            tree: Vec::new(),
            deltas: 0,
        };
        s.rebuild();
        s
    }

    fn check(w: f32) -> f64 {
        assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0");
        f64::from(w)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no categories.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of category `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Sum of all weights (the tree root).
    pub fn total(&self) -> f64 {
        if self.weights.is_empty() {
            0.0
        } else {
            self.tree[1]
        }
    }

    /// Weight deltas absorbed since the last [`Self::rebuild`] — the
    /// counter the rebuild-fallback threshold is checked against.
    pub fn deltas_since_rebuild(&self) -> usize {
        self.deltas
    }

    /// Updates the weight of category `i`, recomputing the O(log n) root
    /// path. Bitwise equivalent to rebuilding from scratch.
    ///
    /// # Panics
    /// Panics if `i` is out of range or `w` is negative/non-finite.
    pub fn set_weight(&mut self, i: usize, w: f32) {
        assert!(i < self.weights.len(), "category out of range");
        let w = Self::check(w);
        self.weights[i] = w;
        self.tree[self.cap + i] = w;
        self.repair_path(self.cap + i);
        self.deltas += 1;
    }

    /// Appends a new category with weight `w`, returning its index.
    /// Within capacity this is an O(log n) path repair; crossing a
    /// power-of-two boundary doubles the tree exactly as a from-scratch
    /// build over the longer weight vector would lay it out.
    ///
    /// # Panics
    /// Panics if `w` is negative or non-finite.
    pub fn push(&mut self, w: f32) -> usize {
        let w = Self::check(w);
        let i = self.weights.len();
        self.weights.push(w);
        if self.weights.len() > self.cap {
            // Crossing a power-of-two boundary rebuilds the tree, which
            // absorbs this append — the delta counter resets to zero.
            self.cap = self.weights.len().next_power_of_two();
            self.rebuild();
        } else {
            self.tree[self.cap + i] = w;
            self.repair_path(self.cap + i);
            self.deltas += 1;
        }
        i
    }

    /// Recomputes the whole tree from the leaf weights and resets the
    /// delta counter. Because path updates already evaluate the same
    /// sum expressions, this never changes any stored value — it exists
    /// as the safety fallback the streaming contract promises (and the
    /// differential tests assert the no-op).
    pub fn rebuild(&mut self) {
        self.tree = vec![0.0; 2 * self.cap];
        for (i, &w) in self.weights.iter().enumerate() {
            self.tree[self.cap + i] = w;
        }
        for k in (1..self.cap).rev() {
            self.tree[k] = self.tree[2 * k] + self.tree[2 * k + 1];
        }
        self.deltas = 0;
    }

    /// Rebuilds when the delta counter has reached `threshold`; returns
    /// whether a rebuild ran.
    pub fn maybe_rebuild(&mut self, threshold: usize) -> bool {
        if self.deltas >= threshold {
            self.rebuild();
            true
        } else {
            false
        }
    }

    fn repair_path(&mut self, mut k: usize) {
        while k > 1 {
            k /= 2;
            self.tree[k] = self.tree[2 * k] + self.tree[2 * k + 1];
        }
    }

    /// Draws one category with probability proportional to its weight by
    /// descending the sum tree. Zero-weight categories are unreachable:
    /// the descent uses a strict `u < left` comparison, and the rare
    /// rounding edge where `u` lands past the last positive leaf falls
    /// back to a deterministic scan for the final positive weight.
    ///
    /// # Panics
    /// Panics if the total weight is zero (or the sampler is empty).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = self.total();
        assert!(total > 0.0, "weights must not all be zero");
        let mut u = rng.gen::<f64>() * total;
        let mut k = 1usize;
        while k < self.cap {
            let left = self.tree[2 * k];
            if u < left {
                k *= 2;
            } else {
                u -= left;
                k = 2 * k + 1;
            }
        }
        let leaf = k - self.cap;
        if leaf < self.weights.len() && self.weights[leaf] > 0.0 {
            leaf
        } else {
            // Rounding pushed u to (or past) the cumulative total; both
            // the incremental and the rebuilt tree take this same branch,
            // so stream parity survives the fallback.
            self.weights
                .iter()
                .rposition(|&w| w > 0.0)
                .expect("total > 0 implies a positive weight")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0f32, 3.0, 6.0];
        let s = StreamingAlias::new(&weights);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[s.sample(&mut rng)] += 1;
        }
        let total: f32 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f32 / n as f32;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let s = StreamingAlias::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category_always_drawn() {
        let s = StreamingAlias::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(s.sample(&mut rng), 0);
    }

    #[test]
    fn updates_shift_the_distribution() {
        let mut s = StreamingAlias::new(&[1.0, 1.0]);
        s.set_weight(0, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert_eq!(s.sample(&mut rng), 1);
        }
        s.set_weight(0, 5.0);
        s.set_weight(1, 0.0);
        for _ in 0..1000 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }

    #[test]
    fn push_grows_across_capacity_boundaries() {
        let mut s = StreamingAlias::new(&[1.0]);
        for i in 1..40 {
            assert_eq!(s.push(i as f32), i);
        }
        assert_eq!(s.len(), 40);
        let expected: f64 = (0..40).map(|i| f64::from(1.0f32.max(i as f32))).sum();
        assert_eq!(s.total(), expected);
    }

    #[test]
    fn all_zero_total_is_representable_but_not_sampleable() {
        let mut s = StreamingAlias::new(&[0.0, 0.0]);
        assert_eq!(s.total(), 0.0);
        s.set_weight(1, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(s.sample(&mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn sampling_zero_total_panics() {
        let s = StreamingAlias::new(&[0.0]);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = s.sample(&mut rng);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weights_rejected() {
        let _ = StreamingAlias::new(&[1.0, -1.0]);
    }

    #[test]
    fn maybe_rebuild_honours_threshold() {
        let mut s = StreamingAlias::new(&[1.0, 2.0, 0.5]); // cap 4
        s.set_weight(0, 3.0);
        assert_eq!(s.deltas_since_rebuild(), 1);
        assert!(!s.maybe_rebuild(2));
        s.push(4.0); // len 4 fits cap — counted as a delta
        assert!(s.maybe_rebuild(2));
        assert_eq!(s.deltas_since_rebuild(), 0);
        // A capacity-crossing push rebuilds internally and resets.
        s.push(1.0);
        assert_eq!(s.deltas_since_rebuild(), 0);
    }
}
