//! Wide neighbour sets (Definition 2).

use std::sync::{Arc, OnceLock};

use rand::seq::SliceRandom;
use rand::Rng;
use widen_graph::{HeteroGraph, NodeId};
use widen_obs::{buckets, Histogram};

/// Ambient-scope instrument (see the `widen-obs` scoping convention):
/// sampled wide-set sizes, recorded into the process-global registry.
fn wide_size_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        widen_obs::Registry::global().histogram("sampling_wide_set_size", buckets::SMALL_COUNTS)
    })
}

/// One wide neighbour: its global node id plus the type of the edge
/// connecting it to the target (`e_{n,t}` in Eq. 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WideEntry {
    /// Global node index `i` of Definition 2.
    pub node: NodeId,
    /// Type of the edge between this neighbour and the target.
    pub edge_type: u16,
}

/// The wide neighbour node set `W(v_t)` of Definition 2.
///
/// The vector position of an entry **is** its local index `n` (zero-based);
/// downsampling removes one entry and thereby renumbers all later locals,
/// exactly as Algorithm 1's relabelling loop does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WideSet {
    /// The target node `v_t` (never contained in `entries`).
    pub target: NodeId,
    /// Sampled first-order neighbours in local-index order.
    pub entries: Vec<WideEntry>,
}

impl WideSet {
    /// Current set size `|W(v_t)|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty (isolated target).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes the entry at local index `n`, shifting later locals down —
    /// the index-relabelling step of Algorithm 1 (lines 5–8).
    ///
    /// # Panics
    /// Panics if `n` is out of range.
    pub fn remove_local(&mut self, n: usize) -> WideEntry {
        assert!(n < self.entries.len(), "local index out of range");
        self.entries.remove(n)
    }
}

/// Uniformly samples `n_w` first-order neighbours of `target` (Definition 2).
///
/// If the target's degree is at least `n_w`, sampling is **without**
/// replacement (a subset); otherwise neighbours are drawn **with**
/// replacement up to `n_w`, the standard GraphSAGE convention for sparse
/// graphs. An isolated target yields an empty set, which the model handles
/// by packing only the self message.
pub fn sample_wide<R: Rng + ?Sized>(
    graph: &HeteroGraph,
    target: NodeId,
    n_w: usize,
    rng: &mut R,
) -> WideSet {
    let degree = graph.degree(target);
    let neighbors = graph.neighbors(target);
    let edge_types = graph.edge_types_of(target);
    let mut entries = Vec::with_capacity(n_w.min(degree.max(n_w)));
    if degree == 0 || n_w == 0 {
        wide_size_hist().observe(0.0);
        return WideSet { target, entries };
    }
    if degree <= n_w {
        // Take all, then top up with replacement if strictly fewer.
        for k in 0..degree {
            entries.push(WideEntry {
                node: neighbors[k],
                edge_type: edge_types[k],
            });
        }
        while entries.len() < n_w {
            let k = rng.gen_range(0..degree);
            entries.push(WideEntry {
                node: neighbors[k],
                edge_type: edge_types[k],
            });
        }
    } else {
        // Without replacement: partial Fisher–Yates over positions.
        let mut positions: Vec<usize> = (0..degree).collect();
        positions.partial_shuffle(rng, n_w);
        for &k in positions.iter().take(n_w) {
            entries.push(WideEntry {
                node: neighbors[k],
                edge_type: edge_types[k],
            });
        }
    }
    wide_size_hist().observe(entries.len() as f64);
    WideSet { target, entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use widen_graph::GraphBuilder;

    /// Star graph: node 0 in the centre with `leaves` leaves, alternating
    /// edge types.
    fn star(leaves: usize) -> HeteroGraph {
        let mut b = GraphBuilder::new(&["hub", "leaf"], &["a", "b"]);
        let hub_t = b.node_type("hub").unwrap();
        let leaf_t = b.node_type("leaf").unwrap();
        let ea = b.edge_type("a").unwrap();
        let eb = b.edge_type("b").unwrap();
        let hub = b.add_node(hub_t, vec![], None);
        for i in 0..leaves {
            let l = b.add_node(leaf_t, vec![], None);
            b.add_edge(hub, l, if i % 2 == 0 { ea } else { eb });
        }
        b.build()
    }

    #[test]
    fn samples_without_replacement_when_degree_suffices() {
        let g = star(30);
        let mut rng = StdRng::seed_from_u64(1);
        let w = sample_wide(&g, 0, 10, &mut rng);
        assert_eq!(w.len(), 10);
        let mut nodes: Vec<_> = w.entries.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 10, "no duplicates expected");
        assert!(!nodes.contains(&0), "target excluded");
    }

    #[test]
    fn tops_up_with_replacement_when_degree_short() {
        let g = star(3);
        let mut rng = StdRng::seed_from_u64(2);
        let w = sample_wide(&g, 0, 8, &mut rng);
        assert_eq!(w.len(), 8);
        // All entries are genuine neighbours.
        for e in &w.entries {
            assert!(e.node >= 1 && e.node <= 3);
        }
    }

    #[test]
    fn isolated_node_yields_empty_set() {
        let mut b = GraphBuilder::new(&["x"], &["e"]);
        let x = b.node_type("x").unwrap();
        b.add_node(x, vec![], None);
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(3);
        let w = sample_wide(&g, 0, 5, &mut rng);
        assert!(w.is_empty());
    }

    #[test]
    fn edge_types_follow_sampled_neighbors() {
        let g = star(10);
        let mut rng = StdRng::seed_from_u64(4);
        let w = sample_wide(&g, 0, 10, &mut rng);
        for e in &w.entries {
            // Leaf ids start at 1; even leaf index (id-1) → type a (0).
            let expected = if (e.node - 1) % 2 == 0 { 0 } else { 1 };
            assert_eq!(e.edge_type, expected);
        }
    }

    #[test]
    fn remove_local_shifts_later_entries() {
        let g = star(6);
        let mut rng = StdRng::seed_from_u64(5);
        let mut w = sample_wide(&g, 0, 6, &mut rng);
        let before = w.entries.clone();
        let removed = w.remove_local(2);
        assert_eq!(removed, before[2]);
        assert_eq!(w.len(), 5);
        assert_eq!(w.entries[2], before[3], "locals after n' shift down by one");
        assert_eq!(w.entries[..2], before[..2], "locals before n' unchanged");
    }

    #[test]
    fn sampling_records_set_sizes_in_the_global_registry() {
        let before = wide_size_hist().snapshot().count;
        let g = star(5);
        let _ = sample_wide(&g, 0, 4, &mut StdRng::seed_from_u64(11));
        assert!(wide_size_hist().snapshot().count > before);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let g = star(20);
        let a = sample_wide(&g, 0, 7, &mut StdRng::seed_from_u64(9));
        let b = sample_wide(&g, 0, 7, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
