//! # widen-sampling
//!
//! Neighbourhood sampling primitives for WIDEN and its baselines:
//!
//! * [`WideSet`] — Definition 2: a uniformly sampled set of first-order
//!   neighbours of a target node, with local/global index bookkeeping and
//!   the edge type connecting each neighbour to the target (needed by the
//!   `PACK∘` message-packaging of Eq. 1).
//! * [`DeepSet`] — Definition 3: a random-walk node sequence of length `N_d`
//!   starting at (but excluding) the target, recording the predecessor edge
//!   type of every hop (Eq. 2's `e_{s,s-1}`).
//! * [`AliasTable`] — O(1) weighted sampling for Node2Vec's biased walks and
//!   FastGCN's importance sampling.
//! * [`StreamingAlias`] — O(log n) weighted sampling whose per-delta
//!   updates are bitwise identical to a rebuild from scratch, for graphs
//!   that mutate while being sampled.
//! * [`hash_seed`] — deterministic per-(node, epoch, stream) seeding.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod alias;
mod deep;
mod shard;
mod streaming;
mod wide;

pub use alias::AliasTable;
pub use deep::{sample_deep, sample_deep_multi, DeepEntry, DeepSet};
pub use shard::ShardAliasTables;
pub use streaming::StreamingAlias;
pub use wide::{sample_wide, WideEntry, WideSet};

/// Mixes a base seed with arbitrary stream identifiers into a fresh RNG seed
/// (SplitMix64 finalisation). Used to give every (node, epoch, φ) tuple an
/// independent but reproducible random stream.
pub fn hash_seed(base: u64, parts: &[u64]) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        h ^= p.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = splitmix64(h);
    }
    splitmix64(h)
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_seed_is_deterministic_and_stream_sensitive() {
        let a = hash_seed(7, &[1, 2, 3]);
        let b = hash_seed(7, &[1, 2, 3]);
        let c = hash_seed(7, &[1, 2, 4]);
        let d = hash_seed(8, &[1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn hash_seed_order_sensitive() {
        assert_ne!(hash_seed(0, &[1, 2]), hash_seed(0, &[2, 1]));
    }
}
