//! Per-shard alias tables: one O(1) weighted node sampler per graph shard.
//!
//! Shard-parallel benchmarking and serving probes need to draw
//! representative nodes *from a specific shard* — e.g. `bench_shards`
//! exercising each shard's embed path, or the smoke binary picking round
//! trip targets. A single global alias table cannot honour shard
//! membership, so this builds one degree-weighted table per shard over the
//! partition assignment (degree + 1 smoothing keeps isolated nodes
//! reachable and every per-shard weight vector non-degenerate).

use rand::Rng;
use widen_graph::{HeteroGraph, NodeId};

use crate::alias::AliasTable;

/// One degree-weighted [`AliasTable`] per shard of a partitioned graph.
#[derive(Clone, Debug)]
pub struct ShardAliasTables {
    /// Shard `p`'s members, parallel to its alias table's index space.
    members: Vec<Vec<NodeId>>,
    /// `tables[p]` draws an index into `members[p]`; `None` for an empty
    /// shard.
    tables: Vec<Option<AliasTable>>,
}

impl ShardAliasTables {
    /// Builds the tables from a partition `assignment` (node id → shard),
    /// weighting each node by `degree + 1`.
    ///
    /// # Panics
    /// Panics if `k` is zero, `assignment` is shorter than the node count,
    /// or an assignment is out of range.
    pub fn degree_weighted(graph: &HeteroGraph, assignment: &[u32], k: usize) -> Self {
        assert!(k >= 1, "shard count must be positive");
        assert!(
            assignment.len() >= graph.num_nodes(),
            "assignment covers {} of {} nodes",
            assignment.len(),
            graph.num_nodes()
        );
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut weights: Vec<Vec<f32>> = vec![Vec::new(); k];
        for v in 0..graph.num_nodes() as NodeId {
            let p = assignment[v as usize] as usize;
            assert!(p < k, "node {v} assigned to shard {p} but k = {k}");
            members[p].push(v);
            // +1 smoothing: isolated nodes stay sampleable and no shard's
            // weight vector can sum to zero.
            weights[p].push(graph.degree(v) as f32 + 1.0);
        }
        let tables = weights
            .iter()
            .map(|w| {
                if w.is_empty() {
                    None
                } else {
                    Some(AliasTable::new(w))
                }
            })
            .collect();
        Self { members, tables }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// Shard `p`'s member nodes in ascending id order.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn members(&self, p: usize) -> &[NodeId] {
        &self.members[p]
    }

    /// Draws a degree-biased node from shard `p`, or `None` if the shard
    /// is empty.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, p: usize, rng: &mut R) -> Option<NodeId> {
        let table = self.tables[p].as_ref()?;
        Some(self.members[p][table.sample(rng)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use widen_graph::{EdgeTypeId, GraphBuilder, NodeTypeId};

    /// A hub node 0 connected to nodes 1..=n, all one type.
    fn star(n: usize) -> HeteroGraph {
        let mut b = GraphBuilder::new(&["x"], &["e"]);
        for _ in 0..=n {
            b.add_node(NodeTypeId(0), vec![1.0], None);
        }
        for v in 1..=n as NodeId {
            b.add_edge(0, v, EdgeTypeId(0));
        }
        b.build()
    }

    #[test]
    fn membership_partitions_all_nodes() {
        let g = star(9);
        let assignment: Vec<u32> = (0..10).map(|v| (v % 3) as u32).collect();
        let tables = ShardAliasTables::degree_weighted(&g, &assignment, 3);
        assert_eq!(tables.num_shards(), 3);
        let total: usize = (0..3).map(|p| tables.members(p).len()).sum();
        assert_eq!(total, 10);
        for p in 0..3 {
            for &v in tables.members(p) {
                assert_eq!(assignment[v as usize] as usize, p);
            }
        }
    }

    #[test]
    fn draws_stay_inside_the_shard_and_favour_degree() {
        let g = star(9);
        // Shard 0 holds the hub (degree 9) and node 1 (degree 1).
        let mut assignment = vec![1u32; 10];
        assignment[0] = 0;
        assignment[1] = 0;
        let tables = ShardAliasTables::degree_weighted(&g, &assignment, 2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hub_draws = 0usize;
        for _ in 0..1000 {
            let v = tables.sample(0, &mut rng).unwrap();
            assert!(v == 0 || v == 1, "drew {v} from the wrong shard");
            if v == 0 {
                hub_draws += 1;
            }
        }
        // Hub weight 10 vs leaf weight 2 ⇒ ~83% hub draws.
        assert!(hub_draws > 700, "hub only drawn {hub_draws}/1000 times");
    }

    #[test]
    fn empty_shard_yields_none() {
        let g = star(3);
        let assignment = vec![0u32; 4];
        let tables = ShardAliasTables::degree_weighted(&g, &assignment, 2);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(tables.sample(1, &mut rng).is_none());
        assert!(tables.members(1).is_empty());
        assert!(tables.sample(0, &mut rng).is_some());
    }
}
