//! Walker's alias method for O(1) weighted sampling.
//!
//! Used by the Node2Vec baseline (p/q-biased transition distributions) and
//! by FastGCN (layer-wise importance sampling `q(v) ∝ ‖A·,v‖²`).

use rand::Rng;

/// A pre-processed discrete distribution supporting O(1) draws.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/NaN value, or sums
    /// to zero.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "empty weight vector");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0");
                f64::from(w)
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let mut prob: Vec<f64> = weights
            .iter()
            .map(|&w| f64::from(w) * n as f64 / total)
            .collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers default to probability 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index according to the weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f32 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f32 / n as f32;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category_always_drawn() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(table.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn all_zero_weights_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weights_rejected() {
        let _ = AliasTable::new(&[1.0, -1.0]);
    }
}
