//! Deep neighbour sets — random-walk sequences (Definition 3).

use std::sync::{Arc, OnceLock};

use rand::Rng;
use widen_graph::{HeteroGraph, NodeId};
use widen_obs::{buckets, Histogram};

/// Ambient-scope instrument: realised walk lengths (`≤ N_d`; shorter when
/// a walk dead-ends), recorded into the process-global registry.
fn deep_len_hist() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        widen_obs::Registry::global().histogram("sampling_deep_walk_len", buckets::SMALL_COUNTS)
    })
}

/// One hop of a deep walk: the node `v_s` plus the type of the edge that led
/// to it from its predecessor (`e_{s,s-1}` of Eq. 2; for `s = 1` the
/// predecessor is the target itself, `e_{1,0} = e_{1,t}`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeepEntry {
    /// Global node index of `v_s`.
    pub node: NodeId,
    /// Edge type of `(v_s, v_{s-1})` in the walk.
    pub edge_type: u16,
}

/// The deep neighbour node set `D(v_t)` of Definition 3: a random walk of
/// (up to) `N_d` steps starting from — but excluding — the target.
///
/// The vector position of an entry is its local index `s` (zero-based; the
/// paper's `s = 1` is position 0). Walks stop early at isolated nodes, so
/// `len() ≤ N_d`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeepSet {
    /// The walk's start node `v_t` (never contained in `entries`).
    pub target: NodeId,
    /// Walk sequence in visit order.
    pub entries: Vec<DeepEntry>,
}

impl DeepSet {
    /// Current sequence length `|D(v_t)|`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the walk is empty (isolated target).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes the entry at local index `s`, shifting later locals down —
    /// the relabelling loop of Algorithm 2 (lines 8–11). The relay-edge
    /// update (Eq. 8) happens at the message-pack level before this call.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn remove_local(&mut self, s: usize) -> DeepEntry {
        assert!(s < self.entries.len(), "local index out of range");
        self.entries.remove(s)
    }
}

/// Performs one uniform random walk of length `n_d` from `target`
/// (Definition 3). The walk may revisit nodes (including the target); it
/// terminates early only when it reaches an isolated node.
pub fn sample_deep<R: Rng + ?Sized>(
    graph: &HeteroGraph,
    target: NodeId,
    n_d: usize,
    rng: &mut R,
) -> DeepSet {
    let mut entries = Vec::with_capacity(n_d);
    let mut current = target;
    for _ in 0..n_d {
        let degree = graph.degree(current);
        if degree == 0 {
            break;
        }
        let k = rng.gen_range(0..degree);
        let next = graph.neighbors(current)[k];
        let edge_type = graph.edge_types_of(current)[k];
        entries.push(DeepEntry {
            node: next,
            edge_type,
        });
        current = next;
    }
    deep_len_hist().observe(entries.len() as f64);
    DeepSet { target, entries }
}

/// Samples `phi` independent deep walks for the same target (the paper's
/// `Φ ≥ 1` deep neighbour sets whose representations are average-pooled in
/// Eq. 7).
pub fn sample_deep_multi<R: Rng + ?Sized>(
    graph: &HeteroGraph,
    target: NodeId,
    n_d: usize,
    phi: usize,
    rng: &mut R,
) -> Vec<DeepSet> {
    (0..phi)
        .map(|_| sample_deep(graph, target, n_d, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use widen_graph::GraphBuilder;

    /// 0 - 1 - 2 - 3 path with alternating edge types.
    fn path() -> HeteroGraph {
        let mut b = GraphBuilder::new(&["x"], &["a", "b"]);
        let x = b.node_type("x").unwrap();
        let ea = b.edge_type("a").unwrap();
        let eb = b.edge_type("b").unwrap();
        let ids: Vec<_> = (0..4).map(|_| b.add_node(x, vec![], None)).collect();
        b.add_edge(ids[0], ids[1], ea);
        b.add_edge(ids[1], ids[2], eb);
        b.add_edge(ids[2], ids[3], ea);
        b.build()
    }

    #[test]
    fn walk_is_connected_and_types_match() {
        let g = path();
        let mut rng = StdRng::seed_from_u64(1);
        let walk = sample_deep(&g, 0, 10, &mut rng);
        assert_eq!(walk.len(), 10);
        let mut prev = 0u32;
        for e in &walk.entries {
            // Each step must be a genuine edge from `prev`.
            let pos = g
                .neighbors(prev)
                .iter()
                .position(|&u| u == e.node)
                .expect("walk step must follow an edge");
            assert_eq!(g.edge_types_of(prev)[pos], e.edge_type);
            prev = e.node;
        }
    }

    #[test]
    fn first_hop_leaves_the_target() {
        let g = path();
        let mut rng = StdRng::seed_from_u64(2);
        let walk = sample_deep(&g, 0, 3, &mut rng);
        assert_eq!(walk.entries[0].node, 1, "node 0's only neighbour is 1");
        assert_eq!(walk.entries[0].edge_type, 0);
    }

    #[test]
    fn isolated_target_gives_empty_walk() {
        let mut b = GraphBuilder::new(&["x"], &["e"]);
        let x = b.node_type("x").unwrap();
        b.add_node(x, vec![], None);
        let g = b.build();
        let walk = sample_deep(&g, 0, 5, &mut StdRng::seed_from_u64(3));
        assert!(walk.is_empty());
    }

    #[test]
    fn multi_walks_are_independent_but_deterministic() {
        let g = path();
        let walks_a = sample_deep_multi(&g, 1, 6, 4, &mut StdRng::seed_from_u64(4));
        let walks_b = sample_deep_multi(&g, 1, 6, 4, &mut StdRng::seed_from_u64(4));
        assert_eq!(walks_a.len(), 4);
        assert_eq!(walks_a, walks_b);
        // With 4 walks of length 6 from a degree-2 node, at least two should
        // differ for this seed.
        assert!(walks_a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn sampling_records_walk_lengths_in_the_global_registry() {
        let before = deep_len_hist().snapshot().count;
        let g = path();
        let walk = sample_deep(&g, 0, 5, &mut StdRng::seed_from_u64(12));
        assert_eq!(walk.len(), 5);
        assert!(deep_len_hist().snapshot().count > before);
    }

    #[test]
    fn remove_local_relabels() {
        let g = path();
        let mut walk = sample_deep(&g, 0, 5, &mut StdRng::seed_from_u64(5));
        let before = walk.entries.clone();
        walk.remove_local(1);
        assert_eq!(walk.len(), 4);
        assert_eq!(walk.entries[0], before[0]);
        assert_eq!(walk.entries[1], before[2]);
    }
}
