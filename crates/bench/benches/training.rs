//! Criterion benchmarks at training granularity: one full WIDEN epoch with
//! and without downsampling (quantifying §3.3's efficiency claim), one
//! epoch of the sampled baselines for comparison (Figure 4's kernel-level
//! counterpart), and an A/B of the per-op autograd profiler — `profiler_off`
//! must match the pre-profiler tape (the disabled path is one null check
//! per op), with `profiler_on` quantifying the opt-in cost.

use criterion::{criterion_group, criterion_main, Criterion};
use widen_baselines::{common::BaselineConfig, gat::Gat, sage::GraphSage, NodeClassifier};
use widen_core::{Trainer, Variant, WidenConfig, WidenModel};
use widen_data::{acm_like, Scale};

fn widen_epoch_config(variant: Variant) -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 32;
    c.n_w = 10;
    c.n_d = 10;
    c.phi = 2;
    c.epochs = 1;
    // Loose thresholds so the downsampling path actually executes.
    c.r_wide = 1.0;
    c.r_deep = 1.0;
    c.variant = variant;
    c
}

fn bench_widen_epoch(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 1);
    let train: Vec<u32> = dataset.transductive.train.clone();
    let mut group = c.benchmark_group("widen_epoch");
    group.sample_size(10);
    for (label, variant) in [
        ("attentive_downsampling", Variant::full()),
        ("no_downsampling", Variant::no_downsampling()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = widen_epoch_config(variant);
                let model = WidenModel::for_graph(&dataset.graph, cfg);
                let mut trainer = Trainer::new(model, &dataset.graph, &train);
                let report = trainer.fit(&train);
                std::hint::black_box(report.final_loss())
            });
        });
    }
    group.finish();
}

fn bench_profiler_overhead(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 3);
    let train: Vec<u32> = dataset.transductive.train.clone();
    let mut group = c.benchmark_group("widen_epoch_profiler");
    group.sample_size(10);
    for (label, profiling) in [("profiler_off", false), ("profiler_on", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = widen_epoch_config(Variant::full());
                let model = WidenModel::for_graph(&dataset.graph, cfg);
                let mut trainer = Trainer::new(model, &dataset.graph, &train);
                trainer.set_profiling(profiling);
                let report = trainer.fit(&train);
                std::hint::black_box(report.final_loss())
            });
        });
    }
    group.finish();
}

fn bench_baseline_epoch(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 2);
    let train: Vec<u32> = dataset.transductive.train.clone();
    let cfg = BaselineConfig {
        epochs: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("baseline_epoch");
    group.sample_size(10);
    group.bench_function("graphsage", |b| {
        b.iter(|| {
            let mut model = GraphSage::new(cfg.clone());
            model.fit(&dataset.graph, &train);
            std::hint::black_box(model.predict(&dataset.graph, &train[..4]).len())
        });
    });
    group.bench_function("gat", |b| {
        b.iter(|| {
            let mut model = Gat::new(cfg.clone());
            model.fit(&dataset.graph, &train);
            std::hint::black_box(model.predict(&dataset.graph, &train[..4]).len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_widen_epoch,
    bench_profiler_overhead,
    bench_baseline_epoch
);
criterion_main!(benches);
