//! Criterion micro-benchmarks for the hot kernels: message packaging,
//! wide/deep attention forward+backward, downsampling decisions, sparse
//! matmul and neighbourhood sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use widen_core::model::MaskCache;
use widen_core::{WidenConfig, WidenModel};
use widen_data::{acm_like, Scale};
use widen_sampling::{sample_deep, sample_wide};
use widen_tensor::{CsrMatrix, Tape, Tensor};

fn bench_attention_forward_backward(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 1);
    let mut group = c.benchmark_group("widen_forward_backward");
    group.sample_size(20);
    for &d in &[32usize, 64, 128] {
        let mut cfg = WidenConfig::small();
        cfg.d = d;
        cfg.n_w = 10;
        cfg.n_d = 10;
        cfg.phi = 2;
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        let node = dataset.transductive.train[0];
        let state = model.sample_state(&dataset.graph, node, 1);
        let label = dataset.graph.label(node).unwrap() as usize;
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                let pv = model.insert_params(&mut tape);
                let masks = MaskCache::new();
                let fw = model.forward_node(&mut tape, &pv, &dataset.graph, &state, &masks);
                let loss = tape.softmax_cross_entropy(fw.logits, &[label]);
                tape.backward(loss);
                std::hint::black_box(tape.grad(fw.logits).is_some())
            });
        });
    }
    group.finish();
}

/// Median seconds per call of `f` over `iters` timed runs (one warm-up).
fn seconds_per_iter(mut f: impl FnMut(), iters: usize) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Head-to-head forward+backward of the batched engine vs the per-node
/// oracle across chunk sizes 1/8/64/256, on identical pre-sampled states.
/// Besides the criterion groups, prints one machine-readable JSON row per
/// chunk size with the measured times and the speedup factor.
fn bench_batched_vs_pernode_forward(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 7);
    // The paper's default §4.4 setting: d = 128, N_w = N_d = 20, Φ = 10.
    let model = WidenModel::for_graph(&dataset.graph, WidenConfig::paper());
    let labeled = dataset.graph.labeled_nodes();
    let mut group = c.benchmark_group("batched_vs_pernode_forward");
    group.sample_size(10);

    for &batch in &[1usize, 8, 64, 256] {
        let nodes: Vec<u32> = (0..batch).map(|i| labeled[i % labeled.len()]).collect();
        let states: Vec<_> = nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| model.sample_state(&dataset.graph, v, i as u64))
            .collect();
        let refs: Vec<&_> = states.iter().collect();
        let labels: Vec<usize> = nodes
            .iter()
            .map(|&v| dataset.graph.label(v).unwrap() as usize)
            .collect();

        let run_batched = || {
            let mut tape = Tape::new();
            let pv = model.insert_params(&mut tape);
            let fw = model.forward_batch(&mut tape, &pv, &dataset.graph, &refs);
            let loss = tape.softmax_cross_entropy(fw.logits, &labels);
            tape.backward(loss);
            std::hint::black_box(tape.grad(fw.logits).is_some());
        };
        let run_per_node = || {
            let mut tape = Tape::new();
            let pv = model.insert_params(&mut tape);
            let masks = MaskCache::new();
            let logit_vars: Vec<_> = refs
                .iter()
                .map(|state| {
                    model
                        .forward_node(&mut tape, &pv, &dataset.graph, state, &masks)
                        .logits
                })
                .collect();
            let stacked = tape.vstack(&logit_vars);
            let loss = tape.softmax_cross_entropy(stacked, &labels);
            tape.backward(loss);
            std::hint::black_box(tape.grad(stacked).is_some());
        };

        group.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, _| {
            b.iter(run_batched);
        });
        group.bench_with_input(BenchmarkId::new("per_node", batch), &batch, |b, _| {
            b.iter(run_per_node);
        });

        // The criterion shim doesn't expose its timings, so measure here
        // and emit a stable JSON row for the experiment logs.
        let iters = (256 / batch).clamp(3, 31);
        let batched_s = seconds_per_iter(run_batched, iters);
        let per_node_s = seconds_per_iter(run_per_node, iters);
        println!(
            "{}",
            serde_json::json!({
                "bench": "batched_vs_pernode_forward",
                "d": model.config.d,
                "n_w": model.config.n_w,
                "n_d": model.config.n_d,
                "phi": model.config.phi,
                "batch": batch,
                "per_node_ms": per_node_s * 1e3,
                "batched_ms": batched_s * 1e3,
                "speedup": per_node_s / batched_s,
            })
        );
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 2);
    let mut group = c.benchmark_group("sampling");
    group.bench_function("wide_n20", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % dataset.graph.num_nodes() as u32;
            std::hint::black_box(sample_wide(&dataset.graph, i, 20, &mut rng).len())
        });
    });
    group.bench_function("deep_walk_n20", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % dataset.graph.num_nodes() as u32;
            std::hint::black_box(sample_deep(&dataset.graph, i, 20, &mut rng).len())
        });
    });
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 3);
    let adj = Arc::new(dataset.graph.adjacency().gcn_normalized());
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::randn(dataset.graph.num_nodes(), 64, 0.1, &mut rng);
    c.bench_function("spmm_full_graph_d64", |b| {
        b.iter(|| std::hint::black_box(adj.spmm(&x).rows()));
    });
    let typed = dataset.graph.adjacency_of_type(widen_graph::EdgeTypeId(0));
    c.bench_function("spspmm_metapath", |b| {
        b.iter(|| std::hint::black_box(typed.spspmm(&typed).nnz()));
    });
    let _ = CsrMatrix::identity(4);
}

fn bench_dense_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("dense_matmul");
    for &n in &[64usize, 128, 256] {
        let a = Tensor::randn(n, n, 0.1, &mut rng);
        let b_mat = Tensor::randn(n, n, 0.1, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b_mat).rows()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_attention_forward_backward,
    bench_batched_vs_pernode_forward,
    bench_sampling,
    bench_spmm,
    bench_dense_matmul
);
criterion_main!(benches);
