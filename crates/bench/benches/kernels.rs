//! Criterion micro-benchmarks for the hot kernels: message packaging,
//! wide/deep attention forward+backward, downsampling decisions, sparse
//! matmul and neighbourhood sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use widen_core::model::MaskCache;
use widen_core::{WidenConfig, WidenModel};
use widen_data::{acm_like, Scale};
use widen_sampling::{sample_deep, sample_wide};
use widen_tensor::{CsrMatrix, Tape, Tensor};

fn bench_attention_forward_backward(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 1);
    let mut group = c.benchmark_group("widen_forward_backward");
    group.sample_size(20);
    for &d in &[32usize, 64, 128] {
        let mut cfg = WidenConfig::small();
        cfg.d = d;
        cfg.n_w = 10;
        cfg.n_d = 10;
        cfg.phi = 2;
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        let node = dataset.transductive.train[0];
        let state = model.sample_state(&dataset.graph, node, 1);
        let label = dataset.graph.label(node).unwrap() as usize;
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                let pv = model.insert_params(&mut tape);
                let mut masks = MaskCache::new();
                let fw = model.forward_node(&mut tape, &pv, &dataset.graph, &state, &mut masks);
                let loss = tape.softmax_cross_entropy(fw.logits, &[label]);
                tape.backward(loss);
                std::hint::black_box(tape.grad(fw.logits).is_some())
            });
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 2);
    let mut group = c.benchmark_group("sampling");
    group.bench_function("wide_n20", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % dataset.graph.num_nodes() as u32;
            std::hint::black_box(sample_wide(&dataset.graph, i, 20, &mut rng).len())
        });
    });
    group.bench_function("deep_walk_n20", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % dataset.graph.num_nodes() as u32;
            std::hint::black_box(sample_deep(&dataset.graph, i, 20, &mut rng).len())
        });
    });
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let dataset = acm_like(Scale::Smoke, 3);
    let adj = Arc::new(dataset.graph.adjacency().gcn_normalized());
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::randn(dataset.graph.num_nodes(), 64, 0.1, &mut rng);
    c.bench_function("spmm_full_graph_d64", |b| {
        b.iter(|| std::hint::black_box(adj.spmm(&x).rows()));
    });
    let typed = dataset.graph.adjacency_of_type(widen_graph::EdgeTypeId(0));
    c.bench_function("spspmm_metapath", |b| {
        b.iter(|| std::hint::black_box(typed.spspmm(&typed).nnz()));
    });
    let _ = CsrMatrix::identity(4);
}

fn bench_dense_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("dense_matmul");
    for &n in &[64usize, 128, 256] {
        let a = Tensor::randn(n, n, 0.1, &mut rng);
        let b_mat = Tensor::randn(n, n, 0.1, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b_mat).rows()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_attention_forward_backward,
    bench_sampling,
    bench_spmm,
    bench_dense_matmul
);
criterion_main!(benches);
