//! A/B benchmarks for the backward-pass rewrite: the old single-threaded
//! rank-1 `matmul_tn` against the column-striped rayon kernel, and
//! alloc-per-step of the backward pass with the gradient pool off vs on.
//!
//! The "old" kernel is reproduced here verbatim (serial p-outer rank-1
//! accumulation, `a != 0.0` short-circuit) so the comparison survives the
//! library kernel evolving further.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_tensor::{Tape, Tensor};

/// The pre-rewrite `matmul_tn`: serial rank-1 updates, row-major `b`.
fn matmul_tn_old(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows());
    let (m, k, n) = (a.cols(), a.rows(), b.cols());
    let mut out = Tensor::zeros(m, n);
    for p in 0..k {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for (i, &av) in a_row.iter().enumerate() {
            if av != 0.0 {
                let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
    out
}

/// Old serial kernel vs the shipped (striped, rayon-parallel) `matmul_tn`
/// at the weight-gradient shapes of the paper config (k = pack rows,
/// m = n = d).
fn bench_matmul_tn_ab(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("widen_backward_kernels/matmul_tn");
    group.sample_size(20);
    for &(k, d) in &[(256usize, 64usize), (1024, 128), (4096, 128)] {
        let a = Tensor::randn(k, d, 0.5, &mut rng);
        let g = Tensor::randn(k, d, 0.5, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("old_serial", format!("{k}x{d}")),
            &(k, d),
            |bch, _| bch.iter(|| std::hint::black_box(matmul_tn_old(&a, &g))),
        );
        group.bench_with_input(
            BenchmarkId::new("new_striped", format!("{k}x{d}")),
            &(k, d),
            |bch, _| bch.iter(|| std::hint::black_box(a.matmul_tn(&g))),
        );
    }
    group.finish();
}

/// The pre-rewrite `matmul_nt`: per-element scalar-reduction dot product
/// (loop-carried dependency, no SIMD lanes).
fn matmul_nt_old(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols(), b.cols());
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_row[p] * b_row[p];
            }
            out.as_mut_slice()[i * n + j] = acc;
        }
    }
    out
}

/// Old scalar-dot kernel vs the shipped lane-split `matmul_nt` at the
/// input-gradient shape `dX = G · Wᵀ` of the paper config.
fn bench_matmul_nt_ab(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut group = c.benchmark_group("widen_backward_kernels/matmul_nt");
    group.sample_size(20);
    for &(rows, d) in &[(600usize, 128usize), (12600, 128)] {
        let g = Tensor::randn(rows, d, 0.5, &mut rng);
        let w = Tensor::randn(d, d, 0.5, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("old_scalar_dot", format!("{rows}x{d}")),
            &(rows, d),
            |bch, _| bch.iter(|| std::hint::black_box(matmul_nt_old(&g, &w))),
        );
        group.bench_with_input(
            BenchmarkId::new("new_lane_dot", format!("{rows}x{d}")),
            &(rows, d),
            |bch, _| bch.iter(|| std::hint::black_box(g.matmul_nt(&w))),
        );
    }
    group.finish();
}

/// Builds a representative training-step tape: a chain of matmuls, an
/// attention-ish softmax and a cross-entropy head.
fn build_step_tape(tape: &mut Tape, d: usize, rows: usize, rng: &mut StdRng) {
    let x = tape.leaf(Tensor::randn(rows, d, 0.5, rng));
    let w1 = tape.leaf(Tensor::randn(d, d, 0.5, rng));
    let w2 = tape.leaf(Tensor::randn(d, d, 0.5, rng));
    let h1 = tape.matmul(x, w1);
    let h1 = tape.relu(h1);
    let scores = tape.matmul_nt(h1, h1);
    let attn = tape.softmax_rows(scores);
    let mixed = tape.matmul(attn, h1);
    let h2 = tape.matmul(mixed, w2);
    let labels: Vec<usize> = (0..rows).map(|i| i % d.min(4)).collect();
    let loss = tape.softmax_cross_entropy(h2, &labels);
    tape.backward(loss);
}

/// Backward alloc behaviour before/after the pool: `pool_off` allocates
/// every gradient fresh (the pre-rewrite behaviour); `pool_warm` carries
/// one warm pool across steps, so steady-state backward allocates nothing.
fn bench_backward_alloc_ab(c: &mut Criterion) {
    let (d, rows) = (128usize, 64usize);
    let mut group = c.benchmark_group("widen_backward_kernels/alloc_per_step");
    group.sample_size(20);

    group.bench_function("pool_off", |bch| {
        let mut rng = StdRng::seed_from_u64(11);
        bch.iter(|| {
            let mut tape = Tape::new();
            tape.disable_pool();
            build_step_tape(&mut tape, d, rows, &mut rng);
            std::hint::black_box(tape.pool_stats().misses)
        });
    });

    group.bench_function("pool_warm", |bch| {
        let mut rng = StdRng::seed_from_u64(11);
        let mut pool = Some(widen_tensor::BufferPool::new());
        bch.iter(|| {
            let mut tape = Tape::new();
            tape.install_pool(pool.take().expect("pool threaded through steps"));
            build_step_tape(&mut tape, d, rows, &mut rng);
            let out = std::hint::black_box(tape.pool_stats().hits);
            pool = Some(tape.take_pool());
            out
        });
    });

    group.finish();

    // One machine-readable line for EXPERIMENTS.md bookkeeping.
    let mut rng = StdRng::seed_from_u64(11);
    let mut tape = Tape::new();
    tape.disable_pool();
    build_step_tape(&mut tape, d, rows, &mut rng);
    let cold = tape.pool_stats().misses;
    let mut tape = Tape::new();
    build_step_tape(&mut tape, d, rows, &mut rng);
    let pool = tape.take_pool();
    let after_first = pool.stats();
    let mut tape = Tape::new();
    tape.install_pool(pool);
    build_step_tape(&mut tape, d, rows, &mut rng);
    let after_second = tape.pool_stats();
    println!(
        "{{\"bench\":\"alloc_per_step\",\"allocs_pool_off\":{cold},\"steady_state_allocs\":{},\"steady_state_hits\":{}}}",
        after_second.misses - after_first.misses,
        after_second.hits - after_first.hits
    );
}

criterion_group!(
    benches,
    bench_matmul_tn_ab,
    bench_matmul_nt_ab,
    bench_backward_alloc_ab
);
criterion_main!(benches);
