//! Command-line plumbing shared by the experiment binaries.

use std::path::PathBuf;

use widen_data::Scale;

/// Experiment scale: `smoke` finishes in seconds (CI-sized graphs), `table`
/// is the committed scale whose outputs EXPERIMENTS.md records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunScale {
    /// Hundreds of nodes, 2 seeds.
    Smoke,
    /// Tens of thousands of nodes, 5 seeds (§4.4: "averaged over 5
    /// executions").
    Table,
}

impl RunScale {
    /// The matching dataset generation scale.
    pub fn data_scale(self) -> Scale {
        match self {
            RunScale::Smoke => Scale::Smoke,
            RunScale::Table => Scale::Table,
        }
    }

    /// Default number of repeated seeded runs.
    pub fn default_seeds(self) -> usize {
        match self {
            RunScale::Smoke => 2,
            RunScale::Table => 5,
        }
    }
}

/// Parsed harness options.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Run scale.
    pub scale: RunScale,
    /// Seeds to aggregate over.
    pub seeds: Vec<u64>,
    /// Output directory for JSON dumps.
    pub out_dir: PathBuf,
    /// Base path for per-epoch JSONL metric traces
    /// (`Trainer::set_metrics_out`); `None` disables tracing.
    pub metrics_out: Option<PathBuf>,
}

impl HarnessOpts {
    /// Metrics-trace path for one named run: `<stem>-<tag>.jsonl` next to
    /// the requested `--metrics-out` file, so harnesses that train several
    /// models do not overwrite each other's traces. Creates the parent
    /// directory so the caller can open the sink directly. `None` when
    /// tracing is off.
    ///
    /// # Panics
    /// Panics if the parent directory cannot be created — harnesses should
    /// fail loudly.
    pub fn metrics_out_for(&self, tag: &str) -> Option<PathBuf> {
        let base = self.metrics_out.as_ref()?;
        if let Some(dir) = base.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create metrics dir");
        }
        let stem = base
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("metrics");
        let tag: String = tag
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        Some(base.with_file_name(format!("{stem}-{tag}.jsonl")))
    }
    /// Writes a JSON value to `<out_dir>/<name>.json`, creating the
    /// directory if needed.
    ///
    /// # Panics
    /// Panics on IO errors — harnesses should fail loudly.
    pub fn write_json(&self, name: &str, value: &serde_json::Value) {
        std::fs::create_dir_all(&self.out_dir).expect("create results dir");
        let path = self.out_dir.join(format!("{name}.json"));
        std::fs::write(
            &path,
            serde_json::to_string_pretty(value).expect("serialise"),
        )
        .expect("write results");
        println!("\n[results written to {}]", path.display());
    }
}

/// Parses `--scale smoke|table`, `--seeds N`, `--out DIR`,
/// `--metrics-out FILE` from argv.
///
/// # Panics
/// Panics with a usage message on malformed arguments.
pub fn parse_args() -> HarnessOpts {
    parse_args_from(std::env::args().skip(1).collect())
}

/// Testable argument parser.
pub fn parse_args_from(args: Vec<String>) -> HarnessOpts {
    let mut scale = RunScale::Smoke;
    let mut seeds: Option<usize> = None;
    let mut out_dir = PathBuf::from("results");
    let mut metrics_out = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = match v.as_str() {
                    "smoke" => RunScale::Smoke,
                    "table" => RunScale::Table,
                    other => panic!("unknown scale `{other}` (use smoke|table)"),
                };
            }
            "--seeds" => {
                let v = it.next().expect("--seeds needs a value");
                seeds = Some(v.parse().expect("--seeds must be an integer"));
            }
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out needs a value"));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next().expect("--metrics-out needs a value"),
                ));
            }
            other => {
                panic!("unknown argument `{other}` (use --scale/--seeds/--out/--metrics-out)")
            }
        }
    }
    let n_seeds = seeds.unwrap_or_else(|| scale.default_seeds());
    HarnessOpts {
        scale,
        seeds: (0..n_seeds as u64).map(|s| 1000 + s).collect(),
        out_dir,
        metrics_out,
    }
}

/// Renders a mean as the paper's 4-decimal convention with optional
/// significance underscores (`_x_` for p < 0.05, `__x__` for p < 0.01,
/// mirroring the single/double underline of Tables 2–3).
pub fn render_score(mean: f64, p_value: Option<f64>) -> String {
    let base = format!("{mean:.4}");
    match p_value {
        Some(p) if p < 0.01 => format!("__{base}__"),
        Some(p) if p < 0.05 => format!("_{base}_"),
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> HarnessOpts {
        parse_args_from(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn defaults_are_smoke_scale() {
        let o = opts(&[]);
        assert_eq!(o.scale, RunScale::Smoke);
        assert_eq!(o.seeds.len(), 2);
        assert_eq!(o.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn parses_table_scale_and_seed_count() {
        let o = opts(&["--scale", "table", "--seeds", "3", "--out", "/tmp/r"]);
        assert_eq!(o.scale, RunScale::Table);
        assert_eq!(o.seeds, vec![1000, 1001, 1002]);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/r"));
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn rejects_bad_scale() {
        let _ = opts(&["--scale", "galactic"]);
    }

    #[test]
    fn metrics_out_is_optional_and_tagged_per_run() {
        assert_eq!(opts(&[]).metrics_out, None);
        let o = opts(&["--metrics-out", "/tmp/r/trace.jsonl"]);
        assert_eq!(o.metrics_out, Some(PathBuf::from("/tmp/r/trace.jsonl")));
        assert_eq!(
            o.metrics_out_for("ACM like"),
            Some(PathBuf::from("/tmp/r/trace-ACM-like.jsonl"))
        );
        assert_eq!(opts(&[]).metrics_out_for("acm"), None);
    }

    #[test]
    fn score_rendering_marks_significance() {
        assert_eq!(render_score(0.9269, None), "0.9269");
        assert_eq!(render_score(0.9269, Some(0.2)), "0.9269");
        assert_eq!(render_score(0.9269, Some(0.03)), "_0.9269_");
        assert_eq!(render_score(0.9269, Some(0.005)), "__0.9269__");
    }
}
