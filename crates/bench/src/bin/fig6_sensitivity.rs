//! Regenerates **Figure 6** — hyperparameter sensitivity: one-at-a-time
//! sweeps of the latent dimension `d`, wide sample size `N_w`, deep walk
//! length `N_d` and deep walk count `Φ` on all three datasets (transductive
//! micro-F1, full training set).

use widen_bench::parse_args;
use widen_bench::runners::{datasets, run_widen_transductive, table_widen_config};
use widen_bench::RunScale;

fn main() {
    let opts = parse_args();
    println!(
        "== Figure 6: hyperparameter sensitivity ({:?} scale) ==",
        opts.scale
    );
    let seed = opts.seeds[0];

    // Sweep grids: at smoke scale the larger settings are trimmed so the
    // run stays seconds-fast; table scale follows the paper's grids.
    let (d_grid, nw_grid, nd_grid, phi_grid): (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) =
        match opts.scale {
            RunScale::Smoke => (vec![16, 32, 64], vec![1, 5, 10], vec![1, 5, 10], vec![2, 4]),
            // The paper's full grids reach d = 256 and Φ = 10; on this
            // single-core CPU budget we sweep the informative prefix of
            // each grid (the curve shapes are established well before the
            // upper ends — see EXPERIMENTS.md).
            RunScale::Table => (
                vec![16, 32, 64, 128],
                vec![1, 5, 10, 15],
                vec![1, 5, 10, 15],
                vec![1, 2, 4, 6],
            ),
        };

    let mut json = serde_json::Map::new();
    for dataset in datasets(opts.scale, seed) {
        println!("\n--- {} ---", dataset.name);
        let mut block = serde_json::Map::new();
        for (param, grid) in [
            ("d", &d_grid),
            ("N_w", &nw_grid),
            ("N_d", &nd_grid),
            ("phi", &phi_grid),
        ] {
            print!("{param:<4}:");
            let mut series = Vec::new();
            for &value in grid.iter() {
                let mut cfg = table_widen_config(opts.scale).with_seed(seed);
                match param {
                    "d" => cfg.d = value,
                    "N_w" => cfg.n_w = value,
                    "N_d" => cfg.n_d = value,
                    "phi" => cfg.phi = value,
                    _ => unreachable!(),
                }
                let f1 = run_widen_transductive(
                    &dataset,
                    cfg,
                    &dataset.transductive.train,
                    &dataset.transductive.test,
                );
                print!("  {value}→{f1:.4}");
                series.push(serde_json::json!({ "value": value, "f1": f1 }));
            }
            println!();
            block.insert(param.to_string(), serde_json::Value::Array(series));
        }
        json.insert(dataset.name.clone(), serde_json::Value::Object(block));
    }
    opts.write_json("fig6_sensitivity", &serde_json::Value::Object(json));
}
