//! `serve_throughput` — the serving-layer headline number: requests/sec of
//! the micro-batched server versus batch-size-1 serving (every job its own
//! forward pass), measured with 8 concurrent clients hammering one
//! in-process server. Coalescing is purely a throughput knob — answers are
//! bit-identical either way — so the speedup is the whole story.

use std::thread;
use std::time::Instant;

use widen_bench::parse_args;
use widen_core::{WidenConfig, WidenModel};
use widen_data::acm_like;
use widen_serve::{Client, ModelRegistry, ServeConfig, Server};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 12;
const NODES_PER_REQUEST: u32 = 8;
const ENSEMBLE_ROUNDS: u32 = 2;

fn model_config(seed: u64) -> WidenConfig {
    // Paper-sized model: wide/deep neighbourhoods big enough that the
    // batched engine's deduplicated projections have overlap to exploit.
    WidenConfig::paper().with_seed(seed)
}

struct ModeResult {
    label: &'static str,
    elapsed_secs: f64,
    requests: u64,
    rps: f64,
    jobs: u64,
    batches: u64,
    dedup_hits: u64,
    cache_hits: u64,
}

fn run_mode(
    label: &'static str,
    graph: &widen_graph::HeteroGraph,
    config: &WidenConfig,
    checkpoint: &[u8],
    max_batch: usize,
) -> ModeResult {
    let registry = ModelRegistry::from_checkpoint(graph.clone(), config.clone(), checkpoint)
        .expect("bench checkpoint loads");
    // Full server in both modes — embedding cache included — so the only
    // thing the comparison varies is the coalescing window.
    let serve_config = ServeConfig {
        workers: 1,
        max_batch,
        max_wait_us: 300,
        queue_depth: 4096,
        request_timeout_ms: 60_000,
        ..ServeConfig::default()
    };
    let handle = Server::bind(registry, serve_config, "127.0.0.1:0").expect("bind server");
    let addr = handle.local_addr();
    let num_nodes = graph.num_nodes() as u32;

    let start = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for r in 0..REQUESTS_PER_CLIENT {
                    // Hot-key skew: every client asks about the same
                    // trending node window per round — the workload
                    // micro-batching (coalescing + singleflight dedup)
                    // exists for. Batch-size-1 serving must recompute each
                    // copy; a coalescing window computes it once.
                    let base = (r as u32 * 4) % (num_nodes - NODES_PER_REQUEST).min(32);
                    let nodes: Vec<u32> = (base..base + NODES_PER_REQUEST).collect();
                    let seed = r as u64;
                    // Alternate workloads so both job kinds get coalesced.
                    if r % 2 == 0 {
                        let rows = client.embed(&nodes, seed).expect("embed");
                        assert_eq!(rows.len(), nodes.len());
                    } else {
                        let labels = client
                            .classify(&nodes, seed, ENSEMBLE_ROUNDS)
                            .expect("classify");
                        assert_eq!(labels.len(), nodes.len());
                    }
                }
                // Repeated-key phase: each client re-issues one identical
                // embed back to back under a per-client seed. Sequential
                // repeats dodge singleflight dedup (concurrent-only), so
                // the second copy exercises the embedding LRU — without
                // this phase the workload never repeats a (node, seed)
                // key sequentially and `cache_hits` flatlines at zero.
                let nodes: Vec<u32> = (0..NODES_PER_REQUEST).collect();
                let seed = 1_000_000 + t as u64;
                let first = client.embed(&nodes, seed).expect("embed");
                let second = client.embed(&nodes, seed).expect("cached embed");
                assert_eq!(first, second, "cache must serve identical rows");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("bench client panicked");
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    let stats = handle.shutdown();
    assert!(
        stats.cache_hits >= (CLIENTS as u64) * u64::from(NODES_PER_REQUEST),
        "embedding LRU is dead in {label} mode: {} hits from the repeated-key phase",
        stats.cache_hits
    );

    ModeResult {
        label,
        elapsed_secs,
        requests: stats.requests,
        rps: stats.requests as f64 / elapsed_secs,
        jobs: stats.jobs,
        batches: stats.batches,
        dedup_hits: stats.dedup_hits,
        cache_hits: stats.cache_hits,
    }
}

fn mode_json(m: &ModeResult, max_batch: usize) -> serde_json::Value {
    serde_json::json!({
        "mode": m.label,
        "max_batch": max_batch,
        "elapsed_secs": m.elapsed_secs,
        "requests": m.requests,
        "requests_per_sec": m.rps,
        "jobs": m.jobs,
        "fused_batches": m.batches,
        "mean_batch_size": m.jobs as f64 / m.batches.max(1) as f64,
        "dedup_hits": m.dedup_hits,
        "cache_hits": m.cache_hits,
    })
}

fn main() {
    let opts = parse_args();
    let seed = opts.seeds[0];
    println!(
        "== Serving throughput: micro-batched vs batch-size-1 ({:?} scale) ==",
        opts.scale
    );
    println!(
        "   {CLIENTS} concurrent clients × {REQUESTS_PER_CLIENT} requests × {NODES_PER_REQUEST} nodes\n"
    );

    let dataset = acm_like(opts.scale.data_scale(), seed);
    let config = model_config(seed);
    let model = WidenModel::for_graph(&dataset.graph, config.clone());
    let checkpoint = model.save_weights();

    const MICRO_BATCH: usize = 32;
    let batch1 = run_mode("batch-1", &dataset.graph, &config, &checkpoint, 1);
    let micro = run_mode(
        "micro-batched",
        &dataset.graph,
        &config,
        &checkpoint,
        MICRO_BATCH,
    );

    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "Mode", "requests", "elapsed(s)", "req/s", "batches", "mean batch", "dedup", "cached"
    );
    for m in [&batch1, &micro] {
        println!(
            "{:<14} {:>10} {:>12.3} {:>10.1} {:>10} {:>12.2} {:>8} {:>8}",
            m.label,
            m.requests,
            m.elapsed_secs,
            m.rps,
            m.batches,
            m.jobs as f64 / m.batches.max(1) as f64,
            m.dedup_hits,
            m.cache_hits,
        );
    }
    let speedup = micro.rps / batch1.rps;
    println!("\nmicro-batched speedup: {speedup:.2}× requests/sec");

    opts.write_json(
        "BENCH_serve",
        &serde_json::json!({
            "scale": format!("{:?}", opts.scale),
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "nodes_per_request": NODES_PER_REQUEST,
            "ensemble_rounds": ENSEMBLE_ROUNDS,
            "modes": [mode_json(&batch1, 1), mode_json(&micro, MICRO_BATCH)],
            "speedup_requests_per_sec": speedup,
        }),
    );
}
