//! Regenerates **Table 2** — transductive node classification micro-F1 for
//! all nine methods on the three datasets at {25, 50, 75, 100}% of the
//! training labels, with paired t-tests of WIDEN against the best baseline
//! per column (underscored when p < 0.05, double-underscored when p < 0.01).

use widen_baselines::all_baselines;
use widen_bench::harness::render_score;
use widen_bench::runners::{
    datasets, run_baseline_transductive, run_widen_transductive, table_baseline_config,
    table_widen_config,
};
use widen_bench::{parse_args, RunScale};
use widen_data::subset_fraction;
use widen_eval::{paired_t_test, RunAggregate};

const FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

fn main() {
    let opts = parse_args();
    println!(
        "== Table 2: transductive node classification ({:?} scale, {} seeds) ==",
        opts.scale,
        opts.seeds.len()
    );

    let method_names: Vec<&str> = {
        let cfg = table_baseline_config(opts.scale);
        let mut names: Vec<&str> = all_baselines(&cfg).iter().map(|b| b.name()).collect();
        names.push("WIDEN");
        names
    };

    let mut json_rows = Vec::new();
    for dataset_index in 0..3 {
        // Score matrix: [method][fraction] → per-seed scores.
        let mut scores: Vec<Vec<Vec<f64>>> =
            vec![vec![Vec::new(); FRACTIONS.len()]; method_names.len()];
        let mut dataset_name = String::new();

        for &seed in &opts.seeds {
            let dataset = datasets(opts.scale, seed).swap_remove(dataset_index);
            dataset_name = dataset.name.clone();
            let skip_gtn_here = dataset.name.starts_with("yelp") && opts.scale == RunScale::Table;
            for (f_idx, &frac) in FRACTIONS.iter().enumerate() {
                let train = subset_fraction(&dataset.transductive.train, frac);
                let test = &dataset.transductive.test;

                let baselines = all_baselines(&table_baseline_config(opts.scale).with_seed(seed));
                for (m_idx, mut baseline) in baselines.into_iter().enumerate() {
                    // The paper omits GTN on Yelp (one epoch > 10 h on CPU);
                    // we mirror that at table scale.
                    if baseline.name() == "GTN" && skip_gtn_here {
                        continue;
                    }
                    let f1 = run_baseline_transductive(baseline.as_mut(), &dataset, &train, test);
                    scores[m_idx][f_idx].push(f1);
                }
                let widen_cfg = table_widen_config(opts.scale).with_seed(seed);
                let f1 = run_widen_transductive(&dataset, widen_cfg, &train, test);
                scores[method_names.len() - 1][f_idx].push(f1);
            }
        }

        // Render the dataset block.
        println!("\n--- {dataset_name} ---");
        print!("{:<12}", "Method");
        for f in FRACTIONS {
            print!(" {:>14}", format!("{}%", (f * 100.0) as u32));
        }
        println!();
        let widen_idx = method_names.len() - 1;
        for (m_idx, name) in method_names.iter().enumerate() {
            print!("{name:<12}");
            for f_idx in 0..FRACTIONS.len() {
                let samples = &scores[m_idx][f_idx];
                if samples.is_empty() {
                    print!(" {:>14}", "-");
                    continue;
                }
                let agg = RunAggregate::new(samples.clone());
                let marker = if m_idx == widen_idx && samples.len() >= 2 {
                    // t-test vs the best baseline of this column.
                    best_baseline(&scores, f_idx, widen_idx)
                        .map(|best| paired_t_test(samples, &best).p_value)
                } else {
                    None
                };
                print!(" {:>14}", render_score(agg.mean(), marker));
            }
            println!();
            for (f_idx, f) in FRACTIONS.iter().enumerate() {
                if !scores[m_idx][f_idx].is_empty() {
                    json_rows.push(serde_json::json!({
                        "dataset": dataset_name,
                        "method": name,
                        "fraction": f,
                        "mean": RunAggregate::new(scores[m_idx][f_idx].clone()).mean(),
                        "std": RunAggregate::new(scores[m_idx][f_idx].clone()).std(),
                        "samples": scores[m_idx][f_idx],
                    }));
                }
            }
        }
    }
    opts.write_json("table2_transductive", &serde_json::Value::Array(json_rows));
}

/// The per-seed scores of the best (by mean) non-WIDEN method in a column.
fn best_baseline(scores: &[Vec<Vec<f64>>], f_idx: usize, widen_idx: usize) -> Option<Vec<f64>> {
    scores
        .iter()
        .enumerate()
        .filter(|(m, col)| *m != widen_idx && !col[f_idx].is_empty())
        .max_by(|(_, a), (_, b)| {
            let ma = a[f_idx].iter().sum::<f64>() / a[f_idx].len() as f64;
            let mb = b[f_idx].iter().sum::<f64>() / b[f_idx].len() as f64;
            ma.partial_cmp(&mb).unwrap()
        })
        .map(|(_, col)| col[f_idx].clone())
}
