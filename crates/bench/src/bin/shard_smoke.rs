//! `shard_smoke` — CI end-to-end check of the sharded path: a 2-shard
//! training run on the smoke-scale ACM graph followed by a shard-routed
//! serve round trip (embed, classify, ingest, re-embed) over a real
//! socket. Exits non-zero (panics) on any inconsistency; prints one `OK`
//! line on success. Fast enough to run on every push — the model is tiny
//! and trains for a single epoch.

use widen_core::{ShardParallelism, ShardedTrainer, WidenConfig, WidenModel};
use widen_data::{acm_like, Scale};
use widen_serve::{Client, ModelRegistry, ServeConfig, Server};

fn main() {
    let seed = 7;
    let dataset = acm_like(Scale::Smoke, seed);
    let mut cfg = WidenConfig::small().with_seed(seed);
    cfg.d = 8;
    cfg.n_w = 4;
    cfg.n_d = 4;
    cfg.phi = 1;
    cfg.epochs = 1;

    // 2-shard training: sequential execution is bitwise-identical to the
    // threaded mode, and cheapest on a small CI runner.
    let model = WidenModel::for_graph(&dataset.graph, cfg);
    let train = &dataset.transductive.train;
    let mut trainer = ShardedTrainer::new(model, &dataset.graph, train, 2);
    trainer.set_parallelism(ShardParallelism::Sequential);
    assert_eq!(trainer.num_shards(), 2);
    let report = trainer.fit();
    let loss = report.final_loss();
    assert!(loss.is_finite() && loss > 0.0, "bad training loss {loss}");
    let split: Vec<usize> = trainer.shard_sizes().iter().map(|&(_, _, t)| t).collect();
    assert!(
        split.iter().all(|&t| t > 0),
        "a shard ended up with no training nodes: {split:?}"
    );
    println!("shard_smoke: trained 2 shards (split {split:?}), final loss {loss:.4}");

    // Shard-routed serving round trip against the full-graph oracle.
    let model = trainer.into_model();
    let nodes: Vec<u32> = (0..dataset.graph.num_nodes() as u32).step_by(17).collect();
    let want = model.embed_nodes(&dataset.graph, &nodes, seed);
    let feat_dim = dataset.graph.feature_dim();

    let registry = ModelRegistry::from_model(dataset.graph.clone(), model).with_shards(2);
    let handle =
        Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").expect("bind serve socket");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let rows = client.embed(&nodes, seed).expect("embed round trip");
    assert_eq!(rows.len(), nodes.len());
    for (i, row) in rows.iter().enumerate() {
        let same = row
            .iter()
            .zip(want.row(i))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "shard-routed embed diverged at node {}", nodes[i]);
    }

    let labels = client
        .classify(&nodes, seed, 2)
        .expect("classify round trip");
    assert_eq!(labels.len(), nodes.len());

    let (new_node, warm_row) = client
        .ingest(0, &vec![0.1; feat_dim], None, &[(nodes[1], 0)], seed)
        .expect("ingest round trip");
    let again = client
        .embed(&[new_node], seed)
        .expect("re-embed ingested node");
    let same = again[0]
        .iter()
        .zip(&warm_row)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "ingested node re-embed diverged from the warm row");

    let stats = handle.shutdown();
    assert_eq!(stats.ingests, 1);
    println!(
        "shard_smoke: OK ({} embeds, {} labels, 1 ingest, served shard-routed)",
        nodes.len(),
        labels.len()
    );
}
