//! CI smoke check for the observability surface: starts an in-process
//! serving instance, drives a few requests through a real TCP client, then
//! issues a `Stats` request and asserts the returned snapshot carries live
//! counters from both the server registry and the ambient process registry.

use widen_core::{WidenConfig, WidenModel};
use widen_data::{acm_like, Scale};
use widen_serve::{Client, ModelRegistry, ServeConfig, Server};

fn main() {
    let dataset = acm_like(Scale::Smoke, 7);
    let mut cfg = WidenConfig::small();
    cfg.d = 8;
    cfg.n_w = 4;
    cfg.n_d = 4;
    cfg.phi = 1;
    let model = WidenModel::for_graph(&dataset.graph, cfg);
    let registry = ModelRegistry::from_model(dataset.graph, model);
    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let nodes: Vec<u32> = (0..8).collect();
    client.embed(&nodes, 1).expect("embed");
    client.embed(&nodes, 1).expect("embed (cached)");
    client.classify(&nodes, 1, 2).expect("classify");

    let text = client.stats().expect("stats");
    println!("{text}");
    assert!(text.starts_with("{\"server\":{"), "unexpected shape");
    for key in [
        "serve_requests_total",
        "serve_jobs_total",
        "serve_batches_total",
        "serve_cache_hits_total",
        "serve_batch_size",
        "sampling_wide_set_size",
        "sampling_deep_walk_len",
    ] {
        assert!(text.contains(key), "stats snapshot missing `{key}`");
    }
    assert!(
        text.contains("\"serve_requests_total\":3"),
        "counters must be live, not zeroed"
    );

    let stats = handle.shutdown();
    assert_eq!(stats.requests, 4, "3 data requests + 1 stats request");
    assert_eq!(stats.cache_hits, nodes.len() as u64);
    println!(
        "serve stats smoke: OK ({} requests, {} jobs, {} batches, {} cache hits)",
        stats.requests, stats.jobs, stats.batches, stats.cache_hits
    );
}
