//! `trace_smoke` — CI gate for the observability stack. Runs two
//! profiled and traced training epochs, exports the span tree as a Chrome
//! trace_event file and re-validates it with the strict parser, then
//! spins up a server, sends one traced request, and checks the wire span
//! summary is structurally sound (children inside the request span).
//! Exits non-zero on any violation, so the workflow fails loudly when an
//! instrumentation change breaks the trace format.

use widen_bench::parse_args;
use widen_core::{Trainer, WidenConfig, WidenModel};
use widen_data::{acm_like, Scale};
use widen_obs::{render_tree, validate_chrome_trace, write_chrome_trace, Tracer};
use widen_serve::{Client, ModelRegistry, ServeConfig, Server, WireSpan};

const EPOCHS: usize = 2;

fn main() {
    let opts = parse_args();
    let seed = opts.seeds[0];
    println!("== trace_smoke: profiled training + traced serving ==\n");
    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");

    // --- profiled + traced training -------------------------------------
    let dataset = acm_like(Scale::Smoke, seed);
    let mut cfg = WidenConfig::small().with_seed(seed);
    cfg.epochs = EPOCHS;
    let train = &dataset.transductive.train;
    let model = WidenModel::for_graph(&dataset.graph, cfg);
    let mut trainer = Trainer::new(model, &dataset.graph, train);
    let tracer = Tracer::new(seed);
    trainer.set_tracer(tracer.clone());
    trainer.set_profiling(true);
    let report = trainer.fit(train);

    assert_eq!(
        report.epoch_profiles.len(),
        EPOCHS,
        "one op profile per epoch"
    );
    for (epoch, profile) in report.epoch_profiles.iter().enumerate() {
        assert!(!profile.is_empty(), "epoch {epoch} recorded no ops");
        assert!(profile.total_flops() > 0, "epoch {epoch} estimated 0 FLOPs");
    }
    println!("training profile (epoch 0, top 5 ops):");
    println!("{}", report.epoch_profiles[0].render_table(5));

    let spans = tracer.drain();
    let epoch_roots = spans
        .iter()
        .filter(|s| s.name == "core.trainer.epoch")
        .count();
    assert_eq!(epoch_roots, EPOCHS, "one epoch root span per epoch");
    if let Some(root) = spans.iter().find(|s| s.name == "core.trainer.epoch") {
        println!("epoch 0 span tree:");
        print!("{}", render_tree(&spans, root.trace));
    }

    let trace_path = opts.out_dir.join("trace_smoke.trace.json");
    write_chrome_trace(&trace_path, &spans).expect("write chrome trace");
    let text = std::fs::read_to_string(&trace_path).expect("read trace back");
    let events = validate_chrome_trace(&text).expect("exported trace must validate");
    assert_eq!(events, spans.len(), "one trace event per span");
    println!(
        "chrome trace: {} events valid -> {}\n",
        events,
        trace_path.display()
    );

    // --- traced serve request -------------------------------------------
    let model = trainer.into_model();
    let checkpoint = model.save_weights();
    let registry =
        ModelRegistry::from_checkpoint(dataset.graph.clone(), model.config.clone(), &checkpoint)
            .expect("registry from fresh checkpoint");
    let slow_log = opts.out_dir.join("trace_smoke.slowlog.jsonl");
    let config = ServeConfig {
        // Threshold of 1ms guarantees the slow-request path exercises too.
        slow_request_ms: 1,
        slow_log_path: Some(slow_log.clone()),
        ..ServeConfig::default()
    };
    let handle = Server::bind(registry, config, "127.0.0.1:0").expect("bind server");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.set_tracing(true);
    let rows = client.embed(&[0], seed).expect("traced embed");
    assert_eq!(rows.len(), 1);

    let summary = client.last_trace().expect("server returned a span summary");
    let root = &summary.spans[0];
    assert_eq!(root.name, "serve.server.request");
    assert_eq!(root.parent, WireSpan::ROOT);
    let children = &summary.spans[1..];
    assert!(!children.is_empty(), "request recorded no child spans");
    let child_sum: u64 = children.iter().map(|s| s.dur_ns).sum();
    assert!(
        child_sum <= root.dur_ns,
        "children ({child_sum}ns) exceed the request span ({}ns)",
        root.dur_ns
    );
    println!("serve span summary (trace {:016x}):", summary.trace_id);
    for span in &summary.spans {
        let indent = if span.parent == WireSpan::ROOT {
            ""
        } else {
            "  "
        };
        println!(
            "{indent}{} @{:.3}ms {:.3}ms",
            span.name,
            span.start_ns as f64 / 1e6,
            span.dur_ns as f64 / 1e6
        );
    }
    handle.shutdown();

    println!("\ntrace_smoke: OK");
}
