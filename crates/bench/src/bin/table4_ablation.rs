//! Regenerates **Table 4** — ablation study: each row removes one component
//! of WIDEN (downsampling, wide/deep branches, successive self-attention,
//! relay edges, or replaces attentive downsampling with random drops) and
//! reports transductive micro-F1 on all three datasets.

use widen_bench::parse_args;
use widen_bench::runners::{datasets, run_widen_transductive, table4_variants, table_widen_config};
use widen_eval::RunAggregate;

fn main() {
    let opts = parse_args();
    println!(
        "== Table 4: ablation study ({:?} scale, {} seeds) ==\n",
        opts.scale,
        opts.seeds.len()
    );

    let variants = table4_variants();
    let dataset_names = ["acm-like", "dblp-like", "yelp-like"];
    // scores[variant][dataset] → per-seed F1.
    let mut scores: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 3]; variants.len()];

    for &seed in &opts.seeds {
        for (d_idx, dataset) in datasets(opts.scale, seed).into_iter().enumerate() {
            for (v_idx, (_, variant)) in variants.iter().enumerate() {
                let cfg = table_widen_config(opts.scale)
                    .with_seed(seed)
                    .with_variant(*variant);
                let f1 = run_widen_transductive(
                    &dataset,
                    cfg,
                    &dataset.transductive.train,
                    &dataset.transductive.test,
                );
                scores[v_idx][d_idx].push(f1);
            }
        }
    }

    print!("{:<38}", "Architecture");
    for name in dataset_names {
        print!(" {:>10}", name.trim_end_matches("-like"));
    }
    println!();
    let default_means: Vec<f64> = (0..3)
        .map(|d| RunAggregate::new(scores[0][d].clone()).mean())
        .collect();
    let mut json_rows = Vec::new();
    for (v_idx, (name, _)) in variants.iter().enumerate() {
        print!("{name:<38}");
        for d_idx in 0..3 {
            let agg = RunAggregate::new(scores[v_idx][d_idx].clone());
            // The paper marks severe (> 5 %) drops relative to Default.
            let severe = agg.mean() < default_means[d_idx] * 0.95;
            let marker = if severe { "↓" } else { "" };
            print!(" {:>9}{}", format!("{:.4}", agg.mean()), marker);
            json_rows.push(serde_json::json!({
                "variant": name,
                "dataset": dataset_names[d_idx],
                "mean": agg.mean(),
                "std": agg.std(),
                "severe_drop": severe,
                "samples": scores[v_idx][d_idx],
            }));
        }
        println!();
    }
    println!("\n(↓ marks a >5% drop relative to the Default row, as in the paper)");
    opts.write_json("table4_ablation", &serde_json::Value::Array(json_rows));
}
