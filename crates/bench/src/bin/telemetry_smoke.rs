//! CI smoke check for the telemetry and flight-recorder surface: starts an
//! in-process serving instance with an aggressive slow-request threshold
//! and a shallow queue, drives one healthy, one deliberately shed, and one
//! deliberately slow request through a real TCP client, then asserts that
//! the `Telemetry` op returns percentile-grade SLO reports and that the
//! anomalies froze a non-empty flight-recorder dump that parses as JSONL.

use widen_core::{WidenConfig, WidenModel};
use widen_data::{acm_like, Scale};
use widen_serve::{Client, ClientError, ModelRegistry, ServeConfig, ServeError, Server};

/// Line-by-line JSONL validation without a JSON parser (the vendored
/// serde_json stub is write-only): object shape, required fields,
/// balanced braces and quotes.
fn assert_parses_as_jsonl(dump: &str) {
    assert!(!dump.is_empty(), "flight-recorder dump must not be empty");
    for line in dump.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        for field in [
            "\"seq\":",
            "\"kind\":",
            "\"outcome\":",
            "\"total_us\":",
            "\"phases\":[",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces: {line}"
        );
        assert_eq!(
            line.matches('"').count() % 2,
            0,
            "unbalanced quotes: {line}"
        );
    }
}

fn main() {
    let dataset = acm_like(Scale::Smoke, 11);
    let mut cfg = WidenConfig::small();
    cfg.d = 8;
    cfg.n_w = 4;
    cfg.n_d = 4;
    cfg.phi = 1;
    let model = WidenModel::for_graph(&dataset.graph, cfg);
    let registry = ModelRegistry::from_model(dataset.graph, model);
    let handle = Server::bind(
        registry,
        ServeConfig {
            // Shallow queue: a 3-node request cannot fit and is shed.
            queue_depth: 2,
            // Every answered request breaches this threshold, so the last
            // one always leaves a "slow" anomaly dump behind.
            slow_request_ms: 1,
            max_wait_us: 2_000,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // One healthy (if slow-flagged) request, then one deliberate shed.
    client.embed(&[0, 1], 1).expect("embed");
    let err = client.embed(&[0, 1, 2], 2).expect_err("must shed");
    assert!(
        matches!(err, ClientError::Server(ServeError::Overloaded)),
        "expected Overloaded, got {err:?}"
    );

    // The telemetry op returns the merged SLO view.
    let text = client.telemetry().expect("telemetry");
    println!("{text}");
    for key in [
        "\"slo\":",
        "\"serve_request_latency_us\":",
        "\"serve_reactor_tick_us\":",
        "\"serve_queue_wait_us\":",
        "\"p50\":",
        "\"p99\":",
        "\"serve_shed_total\":1",
    ] {
        assert!(text.contains(key), "telemetry missing `{key}`");
    }

    // Both anomalies (shed, slow) trigger dumps; the stored dump must be
    // non-empty, parse as JSONL, and contain the shed request's timeline.
    let dump = handle
        .postmortem_dump()
        .expect("anomalies must leave a post-mortem dump");
    print!("{dump}");
    assert_parses_as_jsonl(&dump);
    assert!(
        dump.lines()
            .any(|l| l.contains("\"outcome\":\"overloaded\"")),
        "dump must contain the shed request's timeline"
    );
    let snap = handle.metrics().snapshot();
    let dumps = snap.counter("serve_postmortem_dumps_total").unwrap_or(0);
    assert!(dumps >= 1, "dump counter must be live");

    let stats = handle.shutdown();
    assert_eq!(stats.shed, 1);
    println!(
        "telemetry smoke: OK ({} requests, {} shed, {} post-mortem dumps, {} recorded lines)",
        stats.requests,
        stats.shed,
        dumps,
        dump.lines().count()
    );
}
