//! `bench_shards` — fig5-style shard-scaling sweep: trains the WIDEN
//! model with the [`widen_core::ShardedTrainer`] at 1 → 8 shards on the
//! Yelp-like graph and reports the **modelled distributed critical path**
//! per epoch — for every global step, the slowest shard's busy time plus
//! the gradient-merge/optimizer time. On a multi-core host the wall clock
//! approaches this number; on the single-core CI box the modelled path is
//! the scaling signal itself (each shard's busy time is measured while
//! the shards run, so imbalance and merge overhead are fully charged).
//!
//! Splices a `"scaling"` object into `BENCH_widen.json` with
//! `secs_per_epoch_s{1,2,4,8}`, the 4-shard speedup, and its parallel
//! efficiency; `bench_gate` holds the speedup above its minimum band.
//!
//! ```text
//! bench_shards [--scale smoke|table] [--seeds N] [--out DIR]
//! ```
//!
//! `--scale table` runs the 10× node-count sweep the committed numbers
//! use; `--scale smoke` is the CI-sized variant.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_bench::parse_args;
use widen_core::{ShardParallelism, ShardedTrainer, WidenConfig, WidenModel};
use widen_data::yelp_like;
use widen_graph::greedy_bfs;
use widen_sampling::ShardAliasTables;
use widen_tensor::BackendKind;

/// Swept shard counts; 4 is the gated point.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const EPOCHS: usize = 1;
/// Fits per shard count. Every rep runs bitwise-identical work (the
/// trainer is deterministic for a fixed seed and shard count), so any
/// spread between reps is scheduler/frequency noise — which only ever
/// *adds* time. The reported critical path therefore takes the
/// elementwise **minimum across reps of each (step, shard) busy sample**
/// before the per-step max: a noisy window inflating one shard in one rep
/// cannot leak into the modelled path as long as any rep saw that shard
/// run clean. Reps are also interleaved round-robin across shard counts
/// so a slow stretch on a shared box penalises every shard count alike.
const FIT_REPS: usize = 5;
/// Nodes drawn per shard for the alias-table embed probe.
const PROBE_DRAWS: usize = 8;

fn main() {
    let opts = parse_args();
    let seed = opts.seeds[0];
    let backend = std::env::var("WIDEN_KERNEL_BACKEND")
        .ok()
        .and_then(|v| BackendKind::from_name(&v))
        .unwrap_or(BackendKind::Optimized);
    let dataset = yelp_like(opts.scale.data_scale(), seed);
    let train = &dataset.transductive.train;
    let mut cfg = WidenConfig::paper().with_seed(seed).with_backend(backend);
    cfg.epochs = EPOCHS;
    println!(
        "== bench_shards: {} nodes, {} train nodes, {} backend ==\n",
        dataset.graph.num_nodes(),
        train.len(),
        backend.name()
    );

    let mut per_shard_secs: Vec<(usize, f64)> = Vec::new();
    let mut final_model = None;
    // Per shard count: epoch → step → shard busy floors and epoch → step
    // merge floors, min-merged across reps.
    let mut floor_busy: Vec<Option<Vec<Vec<Vec<u64>>>>> = vec![None; SHARD_COUNTS.len()];
    let mut floor_merge: Vec<Option<Vec<Vec<u64>>>> = vec![None; SHARD_COUNTS.len()];
    for rep in 0..FIT_REPS {
        for (slot, &k) in SHARD_COUNTS.iter().enumerate() {
            let model = WidenModel::for_graph(&dataset.graph, cfg.clone());
            let mut trainer = ShardedTrainer::new(model, &dataset.graph, train, k);
            // Sequential execution: shard steps are bitwise identical to
            // the threaded mode (pinned by `shard_parity`), but each
            // shard's busy time is measured while it runs alone — under
            // `Threads` on a box with fewer cores than shards, OS
            // time-slicing inflates every shard's stopwatch with the
            // other shards' work and the modelled critical path
            // degenerates to the wall clock.
            trainer.set_parallelism(ShardParallelism::Sequential);
            let sizes = trainer.shard_sizes();
            let report = trainer.fit();
            let modelled = report.mean_critical_path_secs();
            let wall = report.train.total_secs() / EPOCHS as f64;
            let merge_total: f64 = report.merge_secs.iter().sum();
            println!(
                "rep {rep} | {k} shards: {modelled:.4} modelled s/epoch (wall {wall:.4}, merge {merge_total:.4}, loss {:.4}, train split {:?})",
                report.final_loss(),
                sizes.iter().map(|&(_, _, t)| t).collect::<Vec<_>>()
            );
            merge_floors(&mut floor_busy[slot], report.step_busy_nanos);
            merge_floors(&mut floor_merge[slot], report.step_merge_nanos);
            final_model = Some(trainer.into_model());
        }
    }
    for (slot, &k) in SHARD_COUNTS.iter().enumerate() {
        let busy = floor_busy[slot].as_ref().expect("at least one rep");
        let merge = floor_merge[slot].as_ref().expect("at least one rep");
        // Modelled critical path from the floors: per step, the slowest
        // shard's cleanest observation plus the cleanest merge.
        let total_nanos: u64 = busy
            .iter()
            .zip(merge)
            .flat_map(|(steps, merges)| {
                steps
                    .iter()
                    .zip(merges)
                    .map(|(shards, m)| shards.iter().copied().max().unwrap_or(0) + m)
            })
            .sum();
        let epochs = busy.len().max(1);
        per_shard_secs.push((k, total_nanos as f64 * 1e-9 / epochs as f64));
    }
    let secs_of = |k: usize| {
        per_shard_secs
            .iter()
            .find(|&&(c, _)| c == k)
            .map(|&(_, s)| s)
            .expect("swept shard count")
    };
    let speedup_4x = secs_of(1) / secs_of(4).max(1e-12);
    let efficiency_4x = speedup_4x / 4.0;
    println!("\n4-shard speedup {speedup_4x:.2}x (parallel efficiency {efficiency_4x:.2})");

    // Per-shard alias-table probe: draw degree-biased nodes from each
    // shard and embed them — the shard-routed serving warm-up path.
    let model = final_model.expect("sweep ran");
    let partition = greedy_bfs(&dataset.graph, 4, 2);
    let tables = ShardAliasTables::degree_weighted(&dataset.graph, &partition.assignment, 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let probe_start = Instant::now();
    let mut probed = 0usize;
    for p in 0..tables.num_shards() {
        let nodes: Vec<u32> = (0..PROBE_DRAWS)
            .filter_map(|_| tables.sample(p, &mut rng))
            .collect();
        if nodes.is_empty() {
            continue;
        }
        let rows = model.embed_nodes(&dataset.graph, &nodes, seed);
        assert_eq!(rows.rows(), nodes.len());
        probed += nodes.len();
    }
    let probe_ms = probe_start.elapsed().as_secs_f64() * 1e3;
    println!("alias-table probe: embedded {probed} shard-sampled nodes in {probe_ms:.1} ms");

    let scaling = serde_json::json!({
        "dataset": "yelp-like",
        "scale": format!("{:?}", opts.scale),
        "nodes": dataset.graph.num_nodes(),
        "train_nodes": train.len(),
        "epochs": EPOCHS,
        "secs_per_epoch_s1": secs_of(1),
        "secs_per_epoch_s2": secs_of(2),
        "secs_per_epoch_s4": secs_of(4),
        "secs_per_epoch_s8": secs_of(8),
        "speedup_4x": speedup_4x,
        "parallel_efficiency_4x": efficiency_4x,
        "shard_probe_nodes": probed,
        "shard_probe_ms": probe_ms,
    });
    let rendered = serde_json::to_string_pretty(&scaling).expect("serialise");
    splice_scaling("BENCH_widen.json", &rendered);
    println!("\n[scaling spliced into BENCH_widen.json]");
}

/// Elementwise minimum over arbitrarily nested timing vectors. Reps of a
/// deterministic fit produce identically-shaped samples, so the floor is
/// taken pointwise; a shape mismatch means the fit was not deterministic
/// and is a bug worth crashing on.
trait MinMerge {
    fn min_merge(&mut self, other: Self);
}

impl MinMerge for u64 {
    fn min_merge(&mut self, other: Self) {
        *self = (*self).min(other);
    }
}

impl<T: MinMerge> MinMerge for Vec<T> {
    fn min_merge(&mut self, other: Self) {
        assert_eq!(self.len(), other.len(), "reps must agree on step shape");
        for (a, b) in self.iter_mut().zip(other) {
            a.min_merge(b);
        }
    }
}

/// Folds one rep's timing sample into the running elementwise floor.
fn merge_floors<T: MinMerge>(slot: &mut Option<T>, sample: T) {
    match slot {
        None => *slot = Some(sample),
        Some(cur) => cur.min_merge(sample),
    }
}

/// Appends (or replaces) a trailing `"scaling"` key in the snapshot at
/// `path`, keeping the rest of the document byte-identical. The vendored
/// `serde_json` has no parser, so this is plain text surgery on the
/// known snapshot shape: the scaling object is always the last key, so a
/// re-run truncates at its marker before re-appending.
fn splice_scaling(path: &str, scaling: &str) {
    const MARKER: &str = "\n  \"scaling\":";
    let merged = match std::fs::read_to_string(path) {
        Ok(doc) => {
            let base = match doc.find(MARKER) {
                Some(at) => format!("{}\n}}", doc[..at].trim_end().trim_end_matches(',')),
                None => doc,
            };
            let body = base
                .trim_end()
                .strip_suffix('}')
                .expect("snapshot must end with `}`")
                .trim_end()
                .to_string();
            let sep = if body.ends_with('{') { "" } else { "," };
            format!("{body}{sep}\n  \"scaling\": {scaling}\n}}")
        }
        Err(_) => format!("{{\n  \"scaling\": {scaling}\n}}"),
    };
    std::fs::write(path, merged).expect("write BENCH_widen.json");
}
