//! Regenerates **Table 3** — inductive node classification micro-F1: 20 %
//! of labelled nodes are removed from the training graph and embedded only
//! at test time. Node2Vec is excluded (it cannot embed unseen node ids,
//! §4.6); every other method fits on the reduced graph and predicts on the
//! full one.

use widen_baselines::all_baselines;
use widen_bench::harness::render_score;
use widen_bench::parse_args;
use widen_bench::runners::{
    datasets, run_baseline_inductive, run_widen_inductive, table_baseline_config,
    table_widen_config,
};
use widen_eval::{paired_t_test, RunAggregate};

fn main() {
    let opts = parse_args();
    println!(
        "== Table 3: inductive node classification ({:?} scale, {} seeds) ==\n",
        opts.scale,
        opts.seeds.len()
    );

    let method_names: Vec<String> = {
        let cfg = table_baseline_config(opts.scale);
        let mut names: Vec<String> = all_baselines(&cfg)
            .iter()
            .filter(|b| b.supports_inductive())
            .map(|b| b.name().to_string())
            .collect();
        names.push("WIDEN".to_string());
        names
    };

    let dataset_names = ["acm-like", "dblp-like", "yelp-like"];
    // scores[method][dataset] → per-seed F1.
    let mut scores: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 3]; method_names.len()];

    for &seed in &opts.seeds {
        for (d_idx, dataset) in datasets(opts.scale, seed).into_iter().enumerate() {
            let mut m_idx = 0;
            for mut baseline in all_baselines(&table_baseline_config(opts.scale).with_seed(seed)) {
                if !baseline.supports_inductive() {
                    continue;
                }
                let f1 = run_baseline_inductive(baseline.as_mut(), &dataset);
                scores[m_idx][d_idx].push(f1);
                m_idx += 1;
            }
            let widen_cfg = table_widen_config(opts.scale).with_seed(seed);
            let f1 = run_widen_inductive(&dataset, widen_cfg);
            scores[method_names.len() - 1][d_idx].push(f1);
        }
    }

    print!("{:<12}", "Method");
    for name in dataset_names {
        print!(" {:>14}", name);
    }
    println!();
    let widen_idx = method_names.len() - 1;
    let mut json_rows = Vec::new();
    for (m_idx, name) in method_names.iter().enumerate() {
        print!("{name:<12}");
        for d_idx in 0..3 {
            let samples = &scores[m_idx][d_idx];
            let agg = RunAggregate::new(samples.clone());
            let p = if m_idx == widen_idx && samples.len() >= 2 {
                best_baseline(&scores, d_idx, widen_idx)
                    .map(|best| paired_t_test(samples, &best).p_value)
            } else {
                None
            };
            print!(" {:>14}", render_score(agg.mean(), p));
            json_rows.push(serde_json::json!({
                "dataset": dataset_names[d_idx],
                "method": name,
                "mean": agg.mean(),
                "std": agg.std(),
                "samples": samples,
            }));
        }
        println!();
    }
    opts.write_json("table3_inductive", &serde_json::Value::Array(json_rows));
}

fn best_baseline(scores: &[Vec<Vec<f64>>], d_idx: usize, widen_idx: usize) -> Option<Vec<f64>> {
    scores
        .iter()
        .enumerate()
        .filter(|(m, col)| *m != widen_idx && !col[d_idx].is_empty())
        .max_by(|(_, a), (_, b)| {
            let ma = a[d_idx].iter().sum::<f64>() / a[d_idx].len() as f64;
            let mb = b[d_idx].iter().sum::<f64>() / b[d_idx].len() as f64;
            ma.partial_cmp(&mb).unwrap()
        })
        .map(|(_, col)| col[d_idx].clone())
}
