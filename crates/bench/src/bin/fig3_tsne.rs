//! Regenerates **Figure 3** — t-SNE visualisation of inductively learned
//! node embeddings on the three datasets, plus silhouette scores that
//! quantify the paper's "clear boundaries between classes" claim. For the
//! Yelp-like graph, 1 000 inductive nodes are sampled for clarity, as in
//! the paper.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use widen_bench::parse_args;
use widen_bench::runners::{datasets, table_widen_config};
use widen_core::{Trainer, WidenModel};
use widen_eval::{silhouette_score, tsne, TsneConfig};
use widen_graph::NodeId;

fn main() {
    let opts = parse_args();
    println!(
        "== Figure 3: t-SNE of inductive embeddings ({:?} scale) ==\n",
        opts.scale
    );
    let seed = opts.seeds[0];
    let mut json = serde_json::Map::new();

    for dataset in datasets(opts.scale, seed) {
        // Inductive training: held-out nodes never seen.
        let reduced = dataset.graph.without_nodes(&dataset.inductive.test);
        let train_new: Vec<NodeId> = dataset
            .inductive
            .train
            .iter()
            .filter_map(|&v| reduced.mapping.to_new(v))
            .collect();
        let cfg = table_widen_config(opts.scale).with_seed(seed);
        let model = WidenModel::for_graph(&reduced.graph, cfg);
        let mut trainer = Trainer::new(model, &reduced.graph, &train_new);
        trainer.fit(&train_new);
        let model = trainer.into_model();

        // Sample up to 1000 inductive nodes (Figure 3 does this for Yelp).
        let mut nodes = dataset.inductive.test.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF16);
        nodes.shuffle(&mut rng);
        nodes.truncate(1000);

        let embeddings = model.embed_nodes(&dataset.graph, &nodes, 777);
        let labels: Vec<usize> = nodes
            .iter()
            .map(|&v| dataset.graph.label(v).expect("labelled") as usize)
            .collect();

        let coords = tsne(
            &embeddings,
            &TsneConfig {
                iterations: 300,
                seed,
                ..TsneConfig::default()
            },
        );
        let sil_embedding = silhouette_score(&embeddings, &labels);
        let sil_2d = silhouette_score(&coords, &labels);
        println!(
            "{:<12} {} inductive nodes  silhouette(embedding) = {:.3}  silhouette(t-SNE 2D) = {:.3}",
            dataset.name,
            nodes.len(),
            sil_embedding,
            sil_2d
        );

        let points: Vec<serde_json::Value> = (0..coords.rows())
            .map(|i| {
                serde_json::json!({
                    "x": coords.get(i, 0),
                    "y": coords.get(i, 1),
                    "class": labels[i],
                })
            })
            .collect();
        json.insert(
            dataset.name.clone(),
            serde_json::json!({
                "silhouette_embedding": sil_embedding,
                "silhouette_2d": sil_2d,
                "points": points,
            }),
        );
    }
    println!("\n(positive silhouettes = same-class nodes cluster; plot the JSON points to reproduce the figure)");
    opts.write_json("fig3_tsne", &serde_json::Value::Object(json));
}
