//! Internal calibration utility: sweeps WIDEN optimizer/capacity settings
//! on the three smoke datasets (100 % labels, transductive) to pick the
//! committed harness configuration. Not part of the paper's experiments.

use widen_bench::parse_args;
use widen_bench::runners::{datasets, run_widen_transductive, table_widen_config};

fn main() {
    let opts = parse_args();
    let seed = opts.seeds[0];
    // Ensemble-vs-single prediction comparison.
    for dataset in datasets(opts.scale, seed) {
        let mut cfg = table_widen_config(opts.scale).with_seed(seed);
        cfg.weight_decay = 0.01;
        let model = widen_core::WidenModel::for_graph(&dataset.graph, cfg);
        let mut trainer =
            widen_core::Trainer::new(model, &dataset.graph, &dataset.transductive.train);
        trainer.fit(&dataset.transductive.train);
        let model = trainer.into_model();
        let truth: Vec<usize> = dataset
            .transductive
            .test
            .iter()
            .map(|&v| dataset.graph.label(v).unwrap() as usize)
            .collect();
        let single = model.predict(&dataset.graph, &dataset.transductive.test, 0xE7A1);
        let ens = model.predict_ensemble(&dataset.graph, &dataset.transductive.test, 0xE7A1, 5);
        println!(
            "{:<12} single={:.4} ensemble5={:.4}",
            dataset.name,
            widen_eval::micro_f1(&truth, &single),
            widen_eval::micro_f1(&truth, &ens)
        );
    }
    type Tweak = Box<dyn Fn(&mut widen_core::WidenConfig)>;
    let grid: Vec<(&str, Tweak)> = vec![
        ("base", Box::new(|_c: &mut widen_core::WidenConfig| {})),
        ("wd01", Box::new(|c| c.weight_decay = 0.01)),
        ("wd05", Box::new(|c| c.weight_decay = 0.05)),
        (
            "wd01+ep50",
            Box::new(|c| {
                c.weight_decay = 0.01;
                c.epochs = 50;
            }),
        ),
    ];
    for dataset in datasets(opts.scale, seed) {
        print!("{:<12}", dataset.name);
        for (name, tweak) in &grid {
            let mut cfg = table_widen_config(opts.scale).with_seed(seed);
            tweak(&mut cfg);
            let f1 = run_widen_transductive(
                &dataset,
                cfg,
                &dataset.transductive.train,
                &dataset.transductive.test,
            );
            print!("  {name}={f1:.4}");
        }
        println!();
    }
}

// quick check of ensemble prediction benefit, compiled into the same binary
