//! `bench_gate` — CI regression gate over `bench_widen` snapshots.
//!
//! Compares a freshly produced `BENCH_widen.json` against the committed
//! baseline (`results/BENCH_baseline.json`) and fails (exit code 1) when
//! any headline metric regresses past the tolerance band:
//!
//! * `secs_per_epoch` — lower is better, must stay within `1 + tol`;
//! * `fwd_ms`         — lower is better, must stay within `1 + tol`;
//! * `bwd_ms`         — lower is better, must stay within `1 + tol`;
//! * `requests_per_sec` — higher is better, must stay above `1 - tol`;
//! * `requests_per_sec_c64` — serving throughput at 64 concurrent
//!   pipelining connections (the event-driven front end's headline
//!   axis); higher is better, must stay above `1 - tol`;
//! * `latency_ms_p99` — interpolated 99th-percentile request latency of
//!   the headline serving phase; lower is better, must stay within
//!   `1 + tol`;
//! * `bwd_ms / fwd_ms` — a fixed-ceiling sanity backstop, allowed the
//!   same relative slack;
//! * `secs_per_epoch_s1` — the shard sweep's 1-shard epoch time from
//!   `bench_shards`; lower is better, must stay within `1 + tol`;
//! * `speedup_4x` — the modelled 4-shard parallel speedup; **strict**:
//!   must stay at or above the fixed 2.5× floor regardless of tolerance,
//!   so a scaling-linearity regression can never hide inside the noise
//!   band.
//!
//! The workspace's vendored `serde_json` is write-only, so the snapshot
//! is read back with a small hand-rolled scanner: find `"key":`, parse
//! the number that follows. Keys are unique in the snapshot layout.
//!
//! ```text
//! bench_gate [CANDIDATE] [BASELINE] [--tolerance FRACTION]
//! ```
//!
//! Defaults: `BENCH_widen.json`, `results/BENCH_baseline.json`, `0.25`.

use std::process::ExitCode;

/// Relative tolerance band applied to every gate when `--tolerance` is
/// not given: ±25% absorbs shared-runner noise while still catching the
/// step-function regressions the gate exists for.
const DEFAULT_TOLERANCE: f64 = 0.25;

/// Hard ceiling on the backward/forward ratio. Originally 2× from the
/// backward-pass rewrite; raised to 3× when the optimized forward GEMM
/// backend landed — a faster forward inflates the ratio even though both
/// absolute passes improved, and absolute regressions are now caught by
/// the dedicated `fwd_ms` and `bwd_ms` bands. The ratio stays only as a
/// sanity backstop against the backward pass ballooning relative to the
/// work it mirrors.
const MAX_BWD_FWD_RATIO: f64 = 3.0;

/// Floor on the modelled 4-shard training speedup from `bench_shards`.
/// The sweep's ideal is bounded by the train-node balance (~3.6× at the
/// smoke scale after weighted partitioning) and the floor-of-reps
/// estimator holds the measurement near its noise floor, so 2.5× leaves
/// real headroom while still catching any change that serialises shard
/// work or unbalances the partition. This gate is *strict*: `--tolerance`
/// does not loosen it.
const MIN_SHARD_SPEEDUP_4X: f64 = 2.5;

/// Extracts the first number following `"key":` in a JSON document.
///
/// Good enough for the flat, uniquely-keyed `bench_widen` snapshot; not
/// a general JSON parser. Returns `None` when the key is missing or not
/// followed by a number.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One gated metric: the measured pair plus the direction of "better".
/// A `strict` gate treats its baseline as an absolute bound — the
/// tolerance band does not apply.
#[derive(Debug)]
struct Gate {
    name: &'static str,
    baseline: f64,
    candidate: f64,
    lower_is_better: bool,
    strict: bool,
}

impl Gate {
    /// The worst candidate value still allowed under `tol`.
    fn limit(&self, tol: f64) -> f64 {
        let tol = if self.strict { 0.0 } else { tol };
        if self.lower_is_better {
            self.baseline * (1.0 + tol)
        } else {
            self.baseline * (1.0 - tol)
        }
    }

    fn passes(&self, tol: f64) -> bool {
        if self.lower_is_better {
            self.candidate <= self.limit(tol)
        } else {
            self.candidate >= self.limit(tol)
        }
    }
}

/// Builds the gate set from two snapshot documents. Returns an error
/// naming the first metric that could not be read.
fn build_gates(candidate: &str, baseline: &str) -> Result<Vec<Gate>, String> {
    let read = |doc: &str, which: &str, key: &str| {
        extract_number(doc, key).ok_or_else(|| format!("{which} snapshot is missing `{key}`"))
    };
    let mut gates = Vec::new();
    for (key, lower_is_better) in [
        ("secs_per_epoch", true),
        ("fwd_ms", true),
        ("bwd_ms", true),
        ("requests_per_sec", false),
        ("requests_per_sec_c64", false),
        ("latency_ms_p99", true),
        ("secs_per_epoch_s1", true),
    ] {
        gates.push(Gate {
            name: key,
            baseline: read(baseline, "baseline", key)?,
            candidate: read(candidate, "candidate", key)?,
            lower_is_better,
            strict: false,
        });
    }
    // The ratio gate is anchored at the fixed 2× budget rather than the
    // baseline's own ratio, so it cannot drift looser over time.
    let fwd = read(candidate, "candidate", "fwd_ms")?;
    let bwd = read(candidate, "candidate", "bwd_ms")?;
    gates.push(Gate {
        name: "bwd_ms / fwd_ms",
        baseline: MAX_BWD_FWD_RATIO,
        candidate: bwd / fwd.max(1e-9),
        lower_is_better: true,
        strict: false,
    });
    // Scaling linearity: anchored at the fixed speedup floor, never at
    // the baseline's own (possibly superlinear) figure, and exempt from
    // the tolerance band.
    gates.push(Gate {
        name: "speedup_4x",
        baseline: MIN_SHARD_SPEEDUP_4X,
        candidate: read(candidate, "candidate", "speedup_4x")?,
        lower_is_better: false,
        strict: true,
    });
    Ok(gates)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut paths = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    while let Some(arg) = args.next() {
        if arg == "--tolerance" {
            let v = args.next().expect("--tolerance needs a value");
            tolerance = v.parse().expect("--tolerance must be a number");
        } else {
            paths.push(arg);
        }
    }
    let candidate_path = paths
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_widen.json");
    let baseline_path = paths
        .get(1)
        .map(String::as_str)
        .unwrap_or("results/BENCH_baseline.json");

    let candidate = match std::fs::read_to_string(candidate_path) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("bench_gate: cannot read candidate `{candidate_path}`: {err}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("bench_gate: cannot read baseline `{baseline_path}`: {err}");
            return ExitCode::FAILURE;
        }
    };

    let gates = match build_gates(&candidate, &baseline) {
        Ok(gates) => gates,
        Err(err) => {
            eprintln!("bench_gate: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "== bench_gate: {candidate_path} vs {baseline_path} (tolerance ±{:.0}%) ==\n",
        tolerance * 100.0
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12}  verdict",
        "metric", "baseline", "candidate", "limit"
    );
    let mut failed = false;
    for gate in &gates {
        let ok = gate.passes(tolerance);
        failed |= !ok;
        println!(
            "{:<18} {:>12.4} {:>12.4} {:>12.4}  {}",
            gate.name,
            gate.baseline,
            gate.candidate,
            gate.limit(tolerance),
            if ok { "ok" } else { "REGRESSION" }
        );
    }
    if failed {
        eprintln!("\nbench_gate: regression detected");
        ExitCode::FAILURE
    } else {
        println!("\nbench_gate: all metrics within tolerance");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
      "training": { "secs_per_epoch": 0.5, "epochs": 2 },
      "engine": { "fwd_ms": 200.0, "bwd_ms": 350.5 },
      "serving": {
        "requests_per_sec": 220.25,
        "requests_per_sec_c64": 480.0,
        "cache_hit_ratio": 0.22,
        "latency_ms_p50": 4.0,
        "latency_ms_p99": 40.0,
        "concurrency_sweep": [ { "connections": 4, "rps": 220.25 } ]
      },
      "scaling": {
        "secs_per_epoch_s1": 0.60,
        "secs_per_epoch_s2": 0.32,
        "secs_per_epoch_s4": 0.19,
        "secs_per_epoch_s8": 0.11,
        "speedup_4x": 3.15,
        "parallel_efficiency_4x": 0.79
      }
    }"#;

    #[test]
    fn extract_number_reads_nested_keys() {
        assert_eq!(extract_number(SNAPSHOT, "secs_per_epoch"), Some(0.5));
        assert_eq!(extract_number(SNAPSHOT, "bwd_ms"), Some(350.5));
        assert_eq!(extract_number(SNAPSHOT, "requests_per_sec"), Some(220.25));
        assert_eq!(extract_number(SNAPSHOT, "missing"), None);
    }

    #[test]
    fn extract_number_handles_exponents_and_negatives() {
        let doc = r#"{"a": -1.5e-3, "b": 2E4}"#;
        assert_eq!(extract_number(doc, "a"), Some(-1.5e-3));
        assert_eq!(extract_number(doc, "b"), Some(2e4));
    }

    #[test]
    fn gates_pass_within_tolerance_and_fail_outside() {
        let slower = SNAPSHOT
            .replace("\"bwd_ms\": 350.5", "\"bwd_ms\": 500.0")
            .replace("\"secs_per_epoch\": 0.5", "\"secs_per_epoch\": 0.52");
        let gates = build_gates(&slower, SNAPSHOT).unwrap();
        let bwd = gates.iter().find(|g| g.name == "bwd_ms").unwrap();
        assert!(!bwd.passes(0.25), "43% slower backward must trip the gate");
        let epoch = gates.iter().find(|g| g.name == "secs_per_epoch").unwrap();
        assert!(epoch.passes(0.25), "4% slower epoch stays inside the band");
    }

    #[test]
    fn throughput_gate_is_higher_is_better() {
        let slower = SNAPSHOT.replace(
            "\"requests_per_sec\": 220.25",
            "\"requests_per_sec\": 100.0",
        );
        let gates = build_gates(&slower, SNAPSHOT).unwrap();
        let rps = gates.iter().find(|g| g.name == "requests_per_sec").unwrap();
        assert!(!rps.passes(0.25));
        let gates = build_gates(SNAPSHOT, SNAPSHOT).unwrap();
        assert!(gates.iter().all(|g| g.passes(0.25)));
    }

    #[test]
    fn high_concurrency_throughput_gate_reads_its_own_key() {
        // The c64 key must gate independently of the 4-client headline —
        // and the sweep array's `rps` entries must not shadow either.
        let collapsed = SNAPSHOT.replace("480.0", "120.0");
        let gates = build_gates(&collapsed, SNAPSHOT).unwrap();
        let c64 = gates
            .iter()
            .find(|g| g.name == "requests_per_sec_c64")
            .unwrap();
        assert!(!c64.passes(0.25), "collapsed c64 throughput must trip");
        let rps = gates.iter().find(|g| g.name == "requests_per_sec").unwrap();
        assert_eq!(rps.candidate, 220.25, "headline key must stay untouched");
        assert!(rps.passes(0.25));
    }

    #[test]
    fn p99_latency_gate_is_lower_is_better_and_reads_its_own_key() {
        // The `latency_ms_p99` needle must not be satisfied by the p50
        // key, and a blown-out tail must trip even when throughput holds.
        let tail_blowout = SNAPSHOT.replace("\"latency_ms_p99\": 40.0", "\"latency_ms_p99\": 80.0");
        let gates = build_gates(&tail_blowout, SNAPSHOT).unwrap();
        let p99 = gates.iter().find(|g| g.name == "latency_ms_p99").unwrap();
        assert_eq!(p99.baseline, 40.0);
        assert_eq!(p99.candidate, 80.0);
        assert!(!p99.passes(0.25), "2x p99 must trip the gate");
        let rps = gates.iter().find(|g| g.name == "requests_per_sec").unwrap();
        assert!(rps.passes(0.25), "throughput keys stay untouched");

        let faster_tail = SNAPSHOT.replace("\"latency_ms_p99\": 40.0", "\"latency_ms_p99\": 10.0");
        let gates = build_gates(&faster_tail, SNAPSHOT).unwrap();
        let p99 = gates.iter().find(|g| g.name == "latency_ms_p99").unwrap();
        assert!(p99.passes(0.25), "a faster tail is never a regression");
    }

    #[test]
    fn fwd_gate_catches_forward_regressions() {
        let slower = SNAPSHOT.replace("\"fwd_ms\": 200.0", "\"fwd_ms\": 300.0");
        let gates = build_gates(&slower, SNAPSHOT).unwrap();
        let fwd = gates.iter().find(|g| g.name == "fwd_ms").unwrap();
        assert!(!fwd.passes(0.25), "50% slower forward must trip the gate");
        let faster = SNAPSHOT.replace("\"fwd_ms\": 200.0", "\"fwd_ms\": 100.0");
        let gates = build_gates(&faster, SNAPSHOT).unwrap();
        let fwd = gates.iter().find(|g| g.name == "fwd_ms").unwrap();
        assert!(fwd.passes(0.25), "a faster forward is never a regression");
    }

    #[test]
    fn ratio_gate_is_anchored_at_fixed_ceiling() {
        let heavy = SNAPSHOT.replace("\"bwd_ms\": 350.5", "\"bwd_ms\": 800.0");
        let gates = build_gates(&heavy, &heavy).unwrap();
        let ratio = gates.iter().find(|g| g.name == "bwd_ms / fwd_ms").unwrap();
        assert!(
            !ratio.passes(0.25),
            "4x backward/forward must fail even against its own baseline"
        );
        // A fast forward pass alone must not trip the backstop: 2.6x is
        // inside the raised 3x ceiling (the old 2x budget would fail it).
        let fast_fwd = SNAPSHOT.replace("\"bwd_ms\": 350.5", "\"bwd_ms\": 520.0");
        let gates = build_gates(&fast_fwd, &fast_fwd).unwrap();
        let ratio = gates.iter().find(|g| g.name == "bwd_ms / fwd_ms").unwrap();
        assert!(ratio.passes(0.25));
    }

    #[test]
    fn missing_keys_are_reported_by_name() {
        let err = build_gates("{}", SNAPSHOT).unwrap_err();
        assert!(err.contains("candidate") && err.contains("secs_per_epoch"));
    }

    #[test]
    fn speedup_gate_is_strict_and_anchored_at_the_floor() {
        // 2.49x is a hair under the floor: no tolerance may rescue it —
        // even one generous enough to pass every relative band.
        let flat = SNAPSHOT.replace("\"speedup_4x\": 3.15", "\"speedup_4x\": 2.49");
        let gates = build_gates(&flat, SNAPSHOT).unwrap();
        let speedup = gates.iter().find(|g| g.name == "speedup_4x").unwrap();
        assert_eq!(speedup.baseline, MIN_SHARD_SPEEDUP_4X);
        assert!(!speedup.passes(0.25), "sub-floor speedup must trip");
        assert!(!speedup.passes(10.0), "strict gates ignore tolerance");
        assert_eq!(speedup.limit(0.25), MIN_SHARD_SPEEDUP_4X);

        // At the floor exactly it passes, and the baseline's own higher
        // figure never tightens the bound.
        let at_floor = SNAPSHOT.replace("\"speedup_4x\": 3.15", "\"speedup_4x\": 2.5");
        let gates = build_gates(&at_floor, SNAPSHOT).unwrap();
        assert!(gates
            .iter()
            .find(|g| g.name == "speedup_4x")
            .unwrap()
            .passes(0.25));
    }

    #[test]
    fn one_shard_epoch_gate_reads_the_scaling_key() {
        // `secs_per_epoch_s1` must not be satisfied by `secs_per_epoch`:
        // a 2x-slower 1-shard sweep trips while training time holds.
        let slower = SNAPSHOT.replace("\"secs_per_epoch_s1\": 0.60", "\"secs_per_epoch_s1\": 1.20");
        let gates = build_gates(&slower, SNAPSHOT).unwrap();
        let s1 = gates
            .iter()
            .find(|g| g.name == "secs_per_epoch_s1")
            .unwrap();
        assert_eq!(s1.baseline, 0.60);
        assert_eq!(s1.candidate, 1.20);
        assert!(!s1.passes(0.25), "2x slower 1-shard epoch must trip");
        let epoch = gates.iter().find(|g| g.name == "secs_per_epoch").unwrap();
        assert_eq!(epoch.candidate, 0.5, "training key must stay untouched");
    }

    #[test]
    fn identical_snapshots_pass_every_gate_including_scaling() {
        let gates = build_gates(SNAPSHOT, SNAPSHOT).unwrap();
        assert_eq!(gates.len(), 9);
        assert!(gates.iter().all(|g| g.passes(0.25)));
    }
}
