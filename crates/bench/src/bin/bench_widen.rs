//! `bench_widen` — one consolidated performance snapshot of the repo,
//! written to `BENCH_widen.json` (in the working directory — run from the
//! repo root to refresh the committed copy). Three headline numbers:
//!
//! 1. **training**: wall-clock per epoch on the paper configuration, plus
//!    the profiler's forward/backward split and FLOP estimate;
//! 2. **batched engine**: per-op self-time of the fused forward/backward
//!    from the autograd profiler (matmul share, top op);
//! 3. **serving**: requests/sec of the micro-batched server under
//!    concurrent load, with the mean fused batch size, plus a
//!    concurrent-connections sweep (4 → 256 pipelining clients against
//!    the event-driven front end) whose 64-client point is gated in CI.

use std::thread;
use std::time::Instant;

use widen_bench::parse_args;
use widen_core::{Trainer, WidenConfig, WidenModel};
use widen_data::acm_like;
use widen_serve::{Client, ModelRegistry, ServeConfig, Server};
use widen_tensor::{BackendKind, ProfileReport};

const EPOCHS: usize = 2;
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 8;
const NODES_PER_REQUEST: u32 = 8;
/// Concurrent-connection levels for the front-end sweep. The reactor
/// multiplexes all of them onto one thread, so the axis measures how
/// throughput scales with offered parallelism, not thread count.
const SWEEP_LEVELS: [usize; 4] = [4, 16, 64, 256];
const SWEEP_REQUESTS_PER_CLIENT: usize = 8;

fn main() {
    let opts = parse_args();
    let seed = opts.seeds[0];
    println!("== bench_widen: consolidated performance snapshot ==\n");

    // --- training + engine profile on the paper config ------------------
    // The headline numbers run on the optimized GEMM backend — the
    // production-default path this snapshot exists to track. Override with
    // WIDEN_KERNEL_BACKEND=reference to snapshot the scalar oracle.
    let backend = std::env::var("WIDEN_KERNEL_BACKEND")
        .ok()
        .and_then(|v| BackendKind::from_name(&v))
        .unwrap_or(BackendKind::Optimized);
    let dataset = acm_like(opts.scale.data_scale(), seed);
    let mut cfg = WidenConfig::paper().with_seed(seed).with_backend(backend);
    cfg.epochs = EPOCHS;
    let train = &dataset.transductive.train;
    let model = WidenModel::for_graph(&dataset.graph, cfg.clone());
    let mut trainer = Trainer::new(model, &dataset.graph, train);
    trainer.set_profiling(true);
    let report = trainer.fit(train);
    let secs_per_epoch = report.total_secs() / EPOCHS as f64;

    let mut profile = ProfileReport::default();
    for p in &report.epoch_profiles {
        profile.merge(p);
    }
    println!(
        "training: {:.4} s/epoch on the paper config ({} epochs, {} backend)",
        secs_per_epoch,
        EPOCHS,
        backend.name()
    );
    println!("{}", profile.render_table(5));

    // --- serving throughput ----------------------------------------------
    let model = trainer.into_model();
    let checkpoint = model.save_weights();
    let registry = ModelRegistry::from_checkpoint(dataset.graph.clone(), cfg.clone(), &checkpoint)
        .expect("bench checkpoint loads");
    let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0").expect("bind");
    let addr = handle.local_addr();
    let num_nodes = dataset.graph.num_nodes() as u32;
    let start = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|t| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for r in 0..REQUESTS_PER_CLIENT {
                    let base = (r as u32 * 4) % (num_nodes - NODES_PER_REQUEST).min(32);
                    let nodes: Vec<u32> = (base..base + NODES_PER_REQUEST).collect();
                    let rows = client.embed(&nodes, r as u64).expect("embed");
                    assert_eq!(rows.len(), nodes.len());
                }
                // Repeated-key phase: the same request twice in sequence
                // with a per-client seed, so the second copy cannot be
                // absorbed by singleflight dedup (which only folds
                // *concurrent* identical keys) and must come out of the
                // embedding LRU. This is what keeps `cache_hits` a live
                // signal in the snapshot.
                let nodes: Vec<u32> = (0..NODES_PER_REQUEST).collect();
                let seed = 1_000_000 + t as u64;
                let first = client.embed(&nodes, seed).expect("embed");
                let second = client.embed(&nodes, seed).expect("cached embed");
                assert_eq!(first, second, "cache must serve identical rows");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("bench client panicked");
    }
    let serve_secs = start.elapsed().as_secs_f64();
    // Percentile-grade latency from the reactor's request histogram,
    // snapshotted before shutdown tears the registry's owner down.
    let latency_snapshot = handle.metrics().snapshot();
    let latency = latency_snapshot
        .histogram("serve_request_latency_us")
        .expect("serve_request_latency_us histogram");
    let latency_ms_p50 = latency.quantile(0.5).unwrap_or(0.0) / 1_000.0;
    let latency_ms_p99 = latency.quantile(0.99).unwrap_or(0.0) / 1_000.0;
    let stats = handle.shutdown();
    assert!(
        stats.cache_hits >= (CLIENTS as u64) * u64::from(NODES_PER_REQUEST),
        "embedding LRU is dead: {} hits from the repeated-key phase",
        stats.cache_hits
    );
    let rps = stats.requests as f64 / serve_secs;
    let cache_hit_ratio =
        stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64;
    println!(
        "serving: {:.1} req/s ({} requests, mean batch {:.2}, cache hit ratio {:.3}, p50 {:.3} ms, p99 {:.3} ms)",
        rps,
        stats.requests,
        stats.jobs as f64 / stats.batches.max(1) as f64,
        cache_hit_ratio,
        latency_ms_p50,
        latency_ms_p99
    );

    // --- concurrent-connections sweep -----------------------------------
    // Fresh server; the workload shape mirrors the headline phase (clients
    // share request identity, so singleflight folds concurrent duplicates)
    // — the axis isolates how the front end scales with connection count,
    // holding the per-request work distribution fixed.
    let registry = ModelRegistry::from_checkpoint(dataset.graph.clone(), cfg, &checkpoint)
        .expect("bench checkpoint loads");
    // Size the job queue for the sweep's worst-case offered load (every
    // client pipelines all its requests at once) — the sweep measures
    // throughput, not the shedding policy, so nothing may be rejected.
    let max_level = *SWEEP_LEVELS.iter().max().expect("sweep is non-empty");
    // The deadline must clear the sweep's makespan, not a serving SLO: a
    // fully pipelined closed loop parks the last request behind every
    // other one, so tail latency here is (offered load / throughput).
    let sweep_config = ServeConfig {
        queue_depth: max_level * SWEEP_REQUESTS_PER_CLIENT * NODES_PER_REQUEST as usize,
        max_connections: max_level + 8,
        request_timeout_ms: 120_000,
        ..ServeConfig::default()
    };
    let handle = Server::bind(registry, sweep_config, "127.0.0.1:0").expect("bind");
    let addr = handle.local_addr();
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    for &level in &SWEEP_LEVELS {
        let start = Instant::now();
        let clients: Vec<_> = (0..level)
            .map(|_| {
                thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    // Pipeline the whole batch on one socket, then drain:
                    // this is the request shape the correlation ids exist
                    // for, and it keeps the reactor's queue offered-load
                    // high even at the low client counts.
                    let span = num_nodes - NODES_PER_REQUEST;
                    let ids: Vec<(u64, usize)> = (0..SWEEP_REQUESTS_PER_CLIENT)
                        .map(|r| {
                            let base = (r as u32 * 7) % span;
                            let nodes: Vec<u32> = (base..base + NODES_PER_REQUEST).collect();
                            // Shared across clients within a level (so
                            // singleflight folds like the headline phase)
                            // but unique per level, so the embed LRU can
                            // never answer from an earlier level's rows.
                            let seed = (level * 1_000 + r) as u64;
                            let id = client.send_embed(&nodes, seed).expect("send");
                            (id, nodes.len())
                        })
                        .collect();
                    for (id, want) in ids {
                        let rows = client.recv_embed(id).expect("recv");
                        assert_eq!(rows.len(), want);
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("sweep client panicked");
        }
        let secs = start.elapsed().as_secs_f64();
        let rps = (level * SWEEP_REQUESTS_PER_CLIENT) as f64 / secs;
        println!("serving sweep: {level:>3} connections -> {rps:.1} req/s");
        sweep.push((level, rps));
    }
    let sweep_stats = handle.shutdown();
    assert_eq!(
        sweep_stats.shed, 0,
        "sweep queue was sized for offered load"
    );
    let rps_c64 = sweep
        .iter()
        .find(|(level, _)| *level == 64)
        .map(|(_, rps)| *rps)
        .expect("sweep includes the gated 64-connection level");

    let top = profile.top_k(1);
    let snapshot = serde_json::json!({
        "scale": format!("{:?}", opts.scale),
        "seed": seed,
        "training": {
            "config": "paper",
            "epochs": EPOCHS,
            "secs_per_epoch": secs_per_epoch,
            "per_epoch_secs": report.epoch_secs,
        },
        "engine": {
            "backend": backend.name(),
            "fwd_ms": profile.fwd_nanos_total as f64 / 1e6,
            "bwd_ms": profile.bwd_nanos_total as f64 / 1e6,
            "est_gflop": profile.total_flops() as f64 / 1e9,
            "top_op": top.first().map(|o| o.name).unwrap_or(""),
            "top_op_share": top.first().map(|o| {
                o.total_nanos() as f64
                    / (profile.fwd_nanos_total + profile.bwd_nanos_total).max(1) as f64
            }).unwrap_or(0.0),
        },
        "serving": {
            "clients": CLIENTS,
            "requests": stats.requests,
            "requests_per_sec": rps,
            "mean_batch_size": stats.jobs as f64 / stats.batches.max(1) as f64,
            "dedup_hits": stats.dedup_hits,
            "cache_hits": stats.cache_hits,
            "cache_hit_ratio": cache_hit_ratio,
            "latency_ms_p50": latency_ms_p50,
            "latency_ms_p99": latency_ms_p99,
            "requests_per_sec_c64": rps_c64,
            // Entry keys deliberately avoid the substring
            // `"requests_per_sec"`: bench_gate reads the snapshot with a
            // first-occurrence key scanner, not a JSON parser.
            "concurrency_sweep": sweep
                .iter()
                .map(|(level, rps)| {
                    serde_json::json!({ "connections": level, "rps": rps })
                })
                .collect::<Vec<_>>(),
        },
    });
    let path = "BENCH_widen.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&snapshot).expect("serialise"),
    )
    .expect("write BENCH_widen.json");
    println!("\n[snapshot written to {path}]");
}
