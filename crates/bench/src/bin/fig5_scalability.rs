//! Regenerates **Figure 5** — scalability: WIDEN training time on the
//! Yelp-like graph as the node proportion grows through
//! {0.2, 0.4, 0.6, 0.8, 1.0}, with a least-squares linearity check
//! (the paper concludes "approximately linear" dependence).

use widen_bench::parse_args;
use widen_bench::runners::{datasets, table_widen_config};
use widen_core::{Trainer, WidenModel};
use widen_data::subsample_nodes;
use widen_eval::timing::linear_fit;

const RATIOS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

fn main() {
    let opts = parse_args();
    println!(
        "== Figure 5: training-time scalability on yelp-like ({:?} scale) ==\n",
        opts.scale
    );
    let seed = opts.seeds[0];
    let yelp = datasets(opts.scale, seed)
        .into_iter()
        .nth(2)
        .expect("yelp dataset");

    println!(
        "{:>8} {:>10} {:>12} {:>14}",
        "ratio", "nodes", "train nodes", "train secs"
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut json_rows = Vec::new();
    for &ratio in &RATIOS {
        let sub = subsample_nodes(&yelp.graph, ratio, seed ^ 0x5CA1E);
        let graph = sub.graph;
        // Training nodes: same labelled fraction as the full protocol.
        let labeled = graph.labeled_nodes();
        let train: Vec<u32> = labeled
            .iter()
            .copied()
            .take((labeled.len() as f64 * 0.2).round() as usize)
            .collect();
        let cfg = table_widen_config(opts.scale).with_seed(seed);
        let model = WidenModel::for_graph(&graph, cfg);
        let mut trainer = Trainer::new(model, &graph, &train);
        let report = trainer.fit(&train);
        let secs = report.total_secs();
        println!(
            "{:>8.1} {:>10} {:>12} {:>14.3}",
            ratio,
            graph.num_nodes(),
            train.len(),
            secs
        );
        xs.push(ratio);
        ys.push(secs);
        json_rows.push(serde_json::json!({
            "ratio": ratio,
            "nodes": graph.num_nodes(),
            "train_nodes": train.len(),
            "train_secs": secs,
        }));
    }

    let (slope, intercept, r2) = linear_fit(&xs, &ys);
    println!(
        "\nlinear fit: time ≈ {slope:.3}·ratio + {intercept:.3}   R² = {r2:.4} \
         (paper: \"approximately linear\")"
    );
    opts.write_json(
        "fig5_scalability",
        &serde_json::json!({
            "points": json_rows,
            "fit": { "slope": slope, "intercept": intercept, "r2": r2 },
        }),
    );
}
