//! Regenerates **Table 1** — statistics of the three (synthetic) datasets.

use widen_bench::{parse_args, RunScale};

fn main() {
    let opts = parse_args();
    println!(
        "== Table 1: dataset statistics ({:?} scale) ==\n",
        opts.scale
    );
    let seed = opts.seeds[0];
    let mut rows = Vec::new();
    for dataset in widen_bench::runners::datasets(opts.scale, seed) {
        let stats = dataset.stats();
        println!("{}\n", stats.render());
        rows.push(serde_json::json!({
            "dataset": stats.name,
            "nodes": stats.nodes,
            "node_types": stats.node_types,
            "edges": stats.edges,
            "edge_types": stats.edge_types,
            "features": stats.features,
            "class_labels": stats.class_labels,
            "transductive_train": stats.transductive.0,
            "transductive_val": stats.transductive.1,
            "transductive_test": stats.transductive.2,
            "inductive_train": stats.inductive.0,
            "inductive_test": stats.inductive.1,
            "mean_degree": stats.mean_degree,
        }));
    }
    if opts.scale == RunScale::Table {
        println!(
            "note: yelp-like is a scale-preserving stand-in (≈60k nodes) for the paper's 2.18M-node Yelp dump; see DESIGN.md."
        );
    }
    opts.write_json("table1_datasets", &serde_json::Value::Array(rows));
}
