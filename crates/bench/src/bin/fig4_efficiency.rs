//! Regenerates **Figure 4** — training efficiency: mean wall-clock time per
//! training epoch and micro-F1 after exactly 10 epochs, for every method on
//! the ACM-like and DBLP-like graphs (the paper restricts this test to the
//! two smaller graphs; most baselines cannot mini-batch Yelp).

use std::time::Instant;

use widen_baselines::all_baselines;
use widen_bench::parse_args;
use widen_bench::runners::{datasets, table_baseline_config, table_widen_config};
use widen_core::{Execution, Trainer, WidenModel};
use widen_eval::micro_f1;
use widen_tensor::ProfileReport;

const EPOCHS: usize = 10;

fn main() {
    let opts = parse_args();
    println!(
        "== Figure 4: training efficiency ({:?} scale, {} epochs) ==\n",
        opts.scale, EPOCHS
    );
    let seed = opts.seeds[0];
    let mut json_rows = Vec::new();

    for dataset in datasets(opts.scale, seed).into_iter().take(2) {
        println!("--- {} ---", dataset.name);
        println!("{:<12} {:>16} {:>16}", "Method", "sec/epoch", "F1@10epochs");
        let train = &dataset.transductive.train;
        let test = &dataset.transductive.test;
        let truth: Vec<usize> = test
            .iter()
            .map(|&v| dataset.graph.label(v).unwrap() as usize)
            .collect();

        let mut base_cfg = table_baseline_config(opts.scale).with_seed(seed);
        base_cfg.epochs = EPOCHS;
        for mut baseline in all_baselines(&base_cfg) {
            let start = Instant::now();
            baseline.fit(&dataset.graph, train);
            let secs_per_epoch = start.elapsed().as_secs_f64() / EPOCHS as f64;
            let preds = baseline.predict(&dataset.graph, test);
            let f1 = micro_f1(&truth, &preds);
            println!(
                "{:<12} {:>16.4} {:>16.4}",
                baseline.name(),
                secs_per_epoch,
                f1
            );
            json_rows.push(serde_json::json!({
                "dataset": dataset.name,
                "method": baseline.name(),
                "secs_per_epoch": secs_per_epoch,
                "f1_after_10_epochs": f1,
            }));
        }

        let mut widen_cfg = table_widen_config(opts.scale).with_seed(seed);
        widen_cfg.epochs = EPOCHS;
        let model = WidenModel::for_graph(&dataset.graph, widen_cfg);
        let mut trainer = Trainer::new(model, &dataset.graph, train);
        trainer.set_profiling(true);
        if let Some(path) = opts.metrics_out_for(&dataset.name) {
            trainer.set_metrics_out(&path).expect("open metrics trace");
            println!("             (per-epoch metrics -> {})", path.display());
        }
        let report = trainer.fit(train);
        let secs_per_epoch = report.total_secs() / EPOCHS as f64;
        let model = trainer.into_model();
        let preds = model.predict(&dataset.graph, test, 0xE7A1);
        let f1 = micro_f1(&truth, &preds);
        println!("{:<12} {:>16.4} {:>16.4}", "WIDEN", secs_per_epoch, f1);
        println!(
            "             (downsampling: {} wide drops, {} deep prunes, {} relay edges)\n",
            report.wide_drops, report.deep_drops, report.relay_edges
        );
        // Per-op autograd breakdown across all profiled epochs — where the
        // WIDEN epoch time above actually goes.
        let mut profile = ProfileReport::default();
        for epoch_profile in &report.epoch_profiles {
            profile.merge(epoch_profile);
        }
        if !profile.is_empty() {
            println!("WIDEN per-op profile (top 8 by self-time, all epochs):");
            println!("{}", profile.render_table(8));
        }
        json_rows.push(serde_json::json!({
            "dataset": dataset.name,
            "method": "WIDEN",
            "secs_per_epoch": secs_per_epoch,
            "f1_after_10_epochs": f1,
            "per_epoch_secs": report.epoch_secs,
            "wide_drops": report.wide_drops,
            "deep_drops": report.deep_drops,
            "profile": {
                "fwd_ms": profile.fwd_nanos_total as f64 / 1e6,
                "bwd_ms": profile.bwd_nanos_total as f64 / 1e6,
                "est_gflop": profile.total_flops() as f64 / 1e9,
                "top_ops": profile.top_k(8).iter().map(|o| serde_json::json!({
                    "op": o.name,
                    "count": o.count,
                    "fwd_ms": o.fwd_nanos as f64 / 1e6,
                    "bwd_ms": o.bwd_nanos as f64 / 1e6,
                    "est_gflop": o.flops as f64 / 1e9,
                    "last_shape": o.last_shape,
                })).collect::<Vec<_>>(),
            },
        }));

        // Same model on the retained per-node oracle engine, so the batched
        // engine's speedup stays visible at whole-epoch granularity.
        let mut oracle_cfg = table_widen_config(opts.scale).with_seed(seed);
        oracle_cfg.epochs = EPOCHS;
        oracle_cfg.execution = Execution::PerNode;
        let model = WidenModel::for_graph(&dataset.graph, oracle_cfg);
        let mut trainer = Trainer::new(model, &dataset.graph, train);
        let report = trainer.fit(train);
        let oracle_secs = report.total_secs() / EPOCHS as f64;
        println!("{:<12} {:>16.4} {:>16}", "WIDEN(node)", oracle_secs, "—");
        json_rows.push(serde_json::json!({
            "dataset": dataset.name,
            "method": "WIDEN(per-node)",
            "secs_per_epoch": oracle_secs,
        }));
    }
    opts.write_json("fig4_efficiency", &serde_json::Value::Array(json_rows));
}
