//! # widen-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation (§4), plus criterion micro-benchmarks for the hot
//! kernels. One binary per experiment:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1_datasets` | Table 1 — dataset statistics |
//! | `table2_transductive` | Table 2 — transductive micro-F1, 9 methods × 3 datasets × 4 label fractions |
//! | `table3_inductive` | Table 3 — inductive micro-F1 |
//! | `table4_ablation` | Table 4 — ablation variants |
//! | `fig3_tsne` | Figure 3 — t-SNE of inductive embeddings (+ silhouette) |
//! | `fig4_efficiency` | Figure 4 — per-epoch time + F1 after 10 epochs |
//! | `fig5_scalability` | Figure 5 — training time vs data proportion |
//! | `fig6_sensitivity` | Figure 6 — hyperparameter sweeps |
//!
//! Every binary accepts `--scale smoke|table` (default `smoke`),
//! `--seeds N` (default scale-dependent) and `--out DIR` (default
//! `results/`); results are printed as formatted tables and dumped as JSON.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod harness;
pub mod runners;

pub use harness::{parse_args, HarnessOpts, RunScale};
pub use runners::{
    run_baseline_inductive, run_baseline_transductive, run_widen_inductive, run_widen_transductive,
    table_baseline_config, table_widen_config,
};
