//! Shared experiment runners: train/evaluate WIDEN and the baselines under
//! the transductive and inductive protocols.

use widen_baselines::{BaselineConfig, NodeClassifier};
use widen_core::{Trainer, Variant, WidenConfig, WidenModel};
use widen_data::Dataset;
use widen_eval::micro_f1;
use widen_graph::NodeId;

use crate::harness::RunScale;

/// Fixed neighbourhood-sampling seed used when scoring, so evaluation noise
/// comes only from training randomness.
const EVAL_SAMPLING_SEED: u64 = 0xE7A1;

/// WIDEN configuration for a harness scale.
///
/// `Table` uses a CPU-budgeted rendition of §4.4's unified setting
/// (`d = 64, N_w = 10, N_d = 10, Φ = 3` instead of `128/20/20/10`) so the
/// full 9-method × 3-dataset × 4-fraction × 5-seed sweep completes on a
/// laptop-class CPU; relative comparisons are unaffected (every method
/// shares the same budget). EXPERIMENTS.md records this deviation.
pub fn table_widen_config(scale: RunScale) -> WidenConfig {
    match scale {
        RunScale::Smoke => {
            let mut c = WidenConfig::small();
            c.n_w = 16;
            c.n_d = 12;
            c.phi = 4;
            c.epochs = 30;
            c.weight_decay = 0.01;
            c
        }
        RunScale::Table => {
            let mut c = WidenConfig::paper();
            c.d = 64;
            c.n_w = 10;
            c.n_d = 10;
            c.phi = 3;
            c.epochs = 20;
            c.learning_rate = 5e-3;
            c.weight_decay = 0.01;
            c.k_wide = 5;
            c.k_deep = 5;
            c
        }
    }
}

/// Baseline configuration matched to the WIDEN budget of the same scale.
pub fn table_baseline_config(scale: RunScale) -> BaselineConfig {
    let widen = table_widen_config(scale);
    BaselineConfig {
        hidden: widen.d,
        learning_rate: 1e-2,
        weight_decay: 1e-4,
        epochs: widen.epochs,
        sample_size: widen.n_w.max(5),
        batch_size: 64,
        seed: 0,
    }
}

/// Trains WIDEN transductively on `train` and returns test micro-F1.
pub fn run_widen_transductive(
    dataset: &Dataset,
    config: WidenConfig,
    train: &[NodeId],
    test: &[NodeId],
) -> f64 {
    let model = WidenModel::for_graph(&dataset.graph, config);
    let mut trainer = Trainer::new(model, &dataset.graph, train);
    trainer.fit(train);
    let model = trainer.into_model();
    score_widen(&model, dataset, test)
}

/// Trains WIDEN on the reduced graph (held-out nodes removed) and scores
/// the held-out nodes on the full graph — the paper's inductive protocol.
pub fn run_widen_inductive(dataset: &Dataset, config: WidenConfig) -> f64 {
    let reduced = dataset.graph.without_nodes(&dataset.inductive.test);
    let train_new: Vec<NodeId> = dataset
        .inductive
        .train
        .iter()
        .filter_map(|&v| reduced.mapping.to_new(v))
        .collect();
    let model = WidenModel::for_graph(&reduced.graph, config);
    let mut trainer = Trainer::new(model, &reduced.graph, &train_new);
    trainer.fit(&train_new);
    let model = trainer.into_model();
    score_widen(&model, dataset, &dataset.inductive.test)
}

fn score_widen(model: &WidenModel, dataset: &Dataset, test: &[NodeId]) -> f64 {
    // Logit averaging over 5 sampled neighbourhoods: the standard
    // variance-reduction step for sampling-based GNN inference.
    let preds = model.predict_ensemble(&dataset.graph, test, EVAL_SAMPLING_SEED, 3);
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).expect("labelled test node") as usize)
        .collect();
    micro_f1(&truth, &preds)
}

/// Fits a baseline transductively and returns test micro-F1.
pub fn run_baseline_transductive(
    model: &mut dyn NodeClassifier,
    dataset: &Dataset,
    train: &[NodeId],
    test: &[NodeId],
) -> f64 {
    model.fit(&dataset.graph, train);
    let preds = model.predict(&dataset.graph, test);
    let truth: Vec<usize> = test
        .iter()
        .map(|&v| dataset.graph.label(v).expect("labelled test node") as usize)
        .collect();
    micro_f1(&truth, &preds)
}

/// Fits a baseline on the reduced graph and scores the held-out nodes on
/// the full graph (§4.6's protocol for methods that support it).
pub fn run_baseline_inductive(model: &mut dyn NodeClassifier, dataset: &Dataset) -> f64 {
    assert!(model.supports_inductive(), "method is transductive-only");
    let reduced = dataset.graph.without_nodes(&dataset.inductive.test);
    let train_new: Vec<NodeId> = dataset
        .inductive
        .train
        .iter()
        .filter_map(|&v| reduced.mapping.to_new(v))
        .collect();
    model.fit(&reduced.graph, &train_new);
    let preds = model.predict(&dataset.graph, &dataset.inductive.test);
    let truth: Vec<usize> = dataset
        .inductive
        .test
        .iter()
        .map(|&v| dataset.graph.label(v).expect("labelled test node") as usize)
        .collect();
    micro_f1(&truth, &preds)
}

/// All three datasets at a scale with the given seed.
pub fn datasets(scale: RunScale, seed: u64) -> Vec<Dataset> {
    let s = scale.data_scale();
    vec![
        widen_data::acm_like(s, seed),
        widen_data::dblp_like(s, seed),
        widen_data::yelp_like(s, seed),
    ]
}

/// The Table 4 variants in paper order.
pub fn table4_variants() -> Vec<(&'static str, Variant)> {
    Variant::table4_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};

    #[test]
    fn table_config_scales() {
        let smoke = table_widen_config(RunScale::Smoke);
        let table = table_widen_config(RunScale::Table);
        assert!(table.d > smoke.d);
        table.validate();
        smoke.validate();
        let b = table_baseline_config(RunScale::Table);
        assert_eq!(b.hidden, table.d);
    }

    #[test]
    fn transductive_runner_beats_chance() {
        let d = acm_like(Scale::Smoke, 1);
        let f1 = run_widen_transductive(
            &d,
            table_widen_config(RunScale::Smoke),
            &d.transductive.train,
            &d.transductive.test,
        );
        assert!(f1 > 0.5, "WIDEN transductive F1 = {f1}");
    }

    #[test]
    fn inductive_runner_beats_chance() {
        let d = acm_like(Scale::Smoke, 2);
        let f1 = run_widen_inductive(&d, table_widen_config(RunScale::Smoke));
        assert!(f1 > 0.5, "WIDEN inductive F1 = {f1}");
    }
}
