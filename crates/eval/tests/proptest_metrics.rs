//! Property-based tests of the evaluation metrics.

use proptest::prelude::*;
use widen_eval::{kl_divergence, macro_f1, micro_f1, paired_t_test, RunAggregate};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn micro_f1_bounds_and_extremes(
        labels in prop::collection::vec(0usize..4, 1..60),
        flips in prop::collection::vec(any::<bool>(), 1..60),
    ) {
        let preds: Vec<usize> = labels
            .iter()
            .zip(flips.iter().cycle())
            .map(|(&l, &flip)| if flip { (l + 1) % 4 } else { l })
            .collect();
        let f1 = micro_f1(&labels, &preds);
        prop_assert!((0.0..=1.0).contains(&f1));
        // Exact prediction ⇒ 1.
        prop_assert_eq!(micro_f1(&labels, &labels), 1.0);
        // f1 equals fraction of unflipped positions.
        let expected = labels
            .iter()
            .zip(flips.iter().cycle())
            .filter(|(_, &flip)| !flip)
            .count() as f64 / labels.len() as f64;
        prop_assert!((f1 - expected).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_never_exceeds_one(
        pairs in prop::collection::vec((0usize..3, 0usize..3), 2..50),
    ) {
        let labels: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
        let preds: Vec<usize> = pairs.iter().map(|&(_, p)| p).collect();
        let m = macro_f1(&labels, &preds, 3);
        prop_assert!((0.0..=1.0).contains(&m));
    }

    #[test]
    fn kl_nonnegative_and_zero_iff_equal(
        raw in prop::collection::vec(0.05f32..5.0, 2..10),
    ) {
        // Normalise to a distribution.
        let sum: f32 = raw.iter().sum();
        let p: Vec<f32> = raw.iter().map(|x| x / sum).collect();
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-9);
        // Perturb.
        let mut q = p.clone();
        q[0] = (q[0] + 0.1).min(0.9);
        let qsum: f32 = q.iter().sum();
        for x in &mut q { *x /= qsum; }
        let kl = kl_divergence(&p, &q);
        prop_assert!(kl >= 0.0);
    }

    #[test]
    fn kl_finite_for_all_probability_vectors(
        raw_p in prop::collection::vec(0.0f32..5.0, 2..12),
        raw_q in prop::collection::vec(0.0f32..5.0, 2..12),
        hot in 0usize..12,
    ) {
        // Truncate to a common length, keeping zero entries — the
        // regression regime where q_i = 0 used to yield inf/NaN.
        let len = raw_p.len().min(raw_q.len());
        let p = &raw_p[..len];
        let q = &raw_q[..len];
        let kl = kl_divergence(p, q);
        prop_assert!(kl.is_finite(), "KL(p‖q) must be finite, got {kl}");
        prop_assert!(kl >= 0.0, "KL(p‖q) must be non-negative, got {kl}");
        // One-hot against the raw vector — maximal support mismatch.
        let mut one_hot = vec![0.0f32; len];
        one_hot[hot % len] = 1.0;
        let kl_hot = kl_divergence(&one_hot, q);
        prop_assert!(kl_hot.is_finite() && kl_hot >= 0.0);
        let kl_hot_rev = kl_divergence(p, &one_hot);
        prop_assert!(kl_hot_rev.is_finite() && kl_hot_rev >= 0.0);
        // Zero-mass vector: smoothing makes it uniform, never NaN.
        let zeros = vec![0.0f32; len];
        let kl_zero = kl_divergence(&zeros, q);
        prop_assert!(kl_zero.is_finite() && kl_zero >= 0.0);
    }

    #[test]
    fn t_test_p_value_in_unit_interval(
        samples in prop::collection::vec((0.0f64..1.0, -0.01f64..0.01), 3..10),
        delta in -0.2f64..0.2,
    ) {
        let a: Vec<f64> = samples.iter().map(|&(x, _)| x).collect();
        let b: Vec<f64> = samples.iter().map(|&(x, j)| x + delta + j).collect();
        let r = paired_t_test(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert_eq!(r.df, a.len() - 1);
    }

    #[test]
    fn aggregate_mean_bounded_by_samples(
        samples in prop::collection::vec(-10.0f64..10.0, 1..20),
    ) {
        let agg = RunAggregate::new(samples.clone());
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(agg.mean() >= min - 1e-9 && agg.mean() <= max + 1e-9);
        prop_assert!(agg.std() >= 0.0);
    }
}
