//! Silhouette score — quantifies Figure 3's qualitative "clear cluster
//! boundaries" claim about inductively learned embeddings.

use widen_tensor::Tensor;

/// Mean silhouette coefficient over all points.
///
/// For each point: `s = (b − a) / max(a, b)` with `a` the mean distance to
/// its own cluster and `b` the smallest mean distance to another cluster.
/// Points in singleton clusters score 0 by convention. Values near +1 mean
/// tight, well-separated clusters; near 0, overlapping; negative, likely
/// mis-assigned.
///
/// # Panics
/// Panics if rows and labels disagree, or fewer than 2 clusters are present.
pub fn silhouette_score(embeddings: &Tensor, labels: &[usize]) -> f64 {
    let n = embeddings.rows();
    assert_eq!(n, labels.len(), "one label per embedding row");
    let num_clusters = labels.iter().max().map_or(0, |m| m + 1);
    let mut cluster_sizes = vec![0usize; num_clusters];
    for &l in labels {
        cluster_sizes[l] += 1;
    }
    assert!(
        cluster_sizes.iter().filter(|&&s| s > 0).count() >= 2,
        "silhouette needs at least two non-empty clusters"
    );

    let mut total = 0.0f64;
    let mut dist_sums = vec![0.0f64; num_clusters];
    for i in 0..n {
        dist_sums.iter_mut().for_each(|d| *d = 0.0);
        let xi = embeddings.row(i);
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut d = 0.0f64;
            for (a, b) in xi.iter().zip(embeddings.row(j)) {
                let diff = f64::from(a - b);
                d += diff * diff;
            }
            dist_sums[labels[j]] += d.sqrt();
        }
        let own = labels[i];
        if cluster_sizes[own] <= 1 {
            continue; // singleton ⇒ s = 0
        }
        let a = dist_sums[own] / (cluster_sizes[own] - 1) as f64;
        let mut b = f64::INFINITY;
        for (c, &size) in cluster_sizes.iter().enumerate() {
            if c != own && size > 0 {
                b = b.min(dist_sums[c] / size as f64);
            }
        }
        total += (b - a) / a.max(b);
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_separated_clusters_score_high() {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f32, 0.0]);
            labels.push(0);
            pts.push(vec![10.0 + 0.01 * i as f32, 10.0]);
            labels.push(1);
        }
        let rows: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let t = Tensor::from_rows(&rows);
        let s = silhouette_score(&t, &labels);
        assert!(s > 0.95, "score = {s}");
    }

    #[test]
    fn random_overlap_scores_near_zero() {
        // Two interleaved clusters on the same line.
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            pts.push(vec![i as f32, 0.0]);
            labels.push(i % 2);
        }
        let rows: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let t = Tensor::from_rows(&rows);
        let s = silhouette_score(&t, &labels);
        assert!(s.abs() < 0.3, "score = {s}");
    }

    #[test]
    fn swapped_labels_score_negative() {
        let pts = [[0.0f32, 0.0], [0.1, 0.0], [10.0, 0.0], [10.1, 0.0]];
        let rows: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let t = Tensor::from_rows(&rows);
        // Deliberately mis-assign: pair each point with the far cluster.
        let labels = vec![0, 1, 0, 1];
        let s = silhouette_score(&t, &labels);
        assert!(s < 0.0, "score = {s}");
    }

    #[test]
    #[should_panic(expected = "two non-empty clusters")]
    fn single_cluster_rejected() {
        let t = Tensor::from_rows(&[&[0.0], &[1.0]]);
        let _ = silhouette_score(&t, &[0, 0]);
    }
}
