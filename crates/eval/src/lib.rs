//! # widen-eval
//!
//! The evaluation toolkit behind the paper's experiment section:
//!
//! * [`f1`] — micro/macro-averaged F1 and confusion matrices (the metric of
//!   Tables 2–4).
//! * [`ttest`] — paired Student t-tests (the significance underscores of
//!   Tables 2–3), built on a regularised-incomplete-beta CDF.
//! * [`kl`] — Kullback–Leibler divergence between attention distributions
//!   (Eq. 9's downsampling trigger).
//! * [`mod@tsne`] — exact t-SNE with PCA initialisation (Figure 3).
//! * [`silhouette`] — cluster-separation score used to quantify Figure 3's
//!   qualitative claim.
//! * [`timing`] — stopwatch / per-epoch timing helpers (Figures 4–5).
//! * [`aggregate`] — mean ± std over repeated seeded runs (§4.4's
//!   "averaged over 5 executions").

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod f1;
pub mod kl;
pub mod silhouette;
pub mod timing;
pub mod tsne;
pub mod ttest;

pub use aggregate::RunAggregate;
pub use f1::{confusion_matrix, macro_f1, micro_f1};
pub use kl::kl_divergence;
pub use silhouette::silhouette_score;
pub use timing::Stopwatch;
pub use tsne::{tsne, TsneConfig};
pub use ttest::{paired_t_test, TTestResult};
