//! Paired Student t-test — the significance machinery behind the
//! underscores in Tables 2 and 3 (`p < 0.05` / `p < 0.01`).
//!
//! The t CDF is evaluated through the regularised incomplete beta function
//! (continued fraction, Lentz's algorithm), the standard numerical recipe.

/// Outcome of a paired t-test.
#[derive(Clone, Copy, Debug)]
pub struct TTestResult {
    /// The t statistic (mean difference over its standard error).
    pub t: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: usize,
    /// Two-tailed p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// True if significant at the given two-tailed level (e.g. 0.05).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-tailed paired t-test of `a` against `b` (e.g. WIDEN's five run scores
/// vs. the best baseline's five run scores).
///
/// Returns `p = 1` when the differences are identically zero (no evidence).
///
/// # Panics
/// Panics unless both samples have the same length ≥ 2.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> TTestResult {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let n = a.len();
    assert!(n >= 2, "need at least two pairs");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    let df = n - 1;
    if var == 0.0 {
        let p = if mean == 0.0 { 1.0 } else { 0.0 };
        return TTestResult {
            t: if mean == 0.0 { 0.0 } else { f64::INFINITY },
            df,
            p_value: p,
        };
    }
    let se = (var / n as f64).sqrt();
    let t = mean / se;
    let p_value = 2.0 * student_t_sf(t.abs(), df as f64);
    TTestResult {
        t,
        df,
        p_value: p_value.clamp(0.0, 1.0),
    }
}

/// Survival function `P(T > t)` of Student's t with `df` degrees of freedom,
/// for `t ≥ 0`.
fn student_t_sf(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    0.5 * incomplete_beta_regularized(0.5 * df, 0.5, x)
}

/// Regularised incomplete beta `I_x(a, b)`.
fn incomplete_beta_regularized(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta).exp();
    // `front` is symmetric under (a, b, x) → (b, a, 1−x), so both branches
    // can share it.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)`.
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn t_sf_matches_reference_values() {
        // scipy.stats.t.sf(2.0, 10) = 0.036694...
        assert!((student_t_sf(2.0, 10.0) - 0.036694).abs() < 1e-4);
        // t.sf(1.0, 4) = 0.186950...
        assert!((student_t_sf(1.0, 4.0) - 0.186950).abs() < 1e-4);
        // t.sf(0, df) = 0.5.
        assert!((student_t_sf(0.0, 7.0) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn clear_difference_is_significant() {
        let a = [0.92, 0.93, 0.91, 0.94, 0.92];
        let b = [0.85, 0.86, 0.84, 0.85, 0.86];
        let r = paired_t_test(&a, &b);
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        assert!(r.t > 0.0);
        assert!(r.significant_at(0.05));
    }

    #[test]
    fn identical_samples_not_significant() {
        let a = [0.9, 0.91, 0.92];
        let r = paired_t_test(&a, &a);
        assert_eq!(r.p_value, 1.0);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn noisy_overlap_is_not_significant() {
        let a = [0.90, 0.80, 0.95, 0.78, 0.88];
        let b = [0.89, 0.84, 0.90, 0.82, 0.85];
        let r = paired_t_test(&a, &b);
        assert!(r.p_value > 0.05, "p = {}", r.p_value);
    }

    #[test]
    fn symmetric_two_tailed() {
        let a = [0.8, 0.82, 0.81, 0.83];
        let b = [0.9, 0.92, 0.91, 0.93];
        let r1 = paired_t_test(&a, &b);
        let r2 = paired_t_test(&b, &a);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
        assert!((r1.t + r2.t).abs() < 1e-12);
    }
}
