//! Aggregation of repeated seeded runs (§4.4: "all effectiveness results are
//! averaged over 5 executions").

/// Mean ± standard deviation over a set of run scores, keeping the raw
/// samples for downstream paired t-tests.
#[derive(Clone, Debug)]
pub struct RunAggregate {
    /// Raw per-run scores, in run order.
    pub samples: Vec<f64>,
}

impl RunAggregate {
    /// Wraps raw run scores.
    pub fn new(samples: Vec<f64>) -> Self {
        Self { samples }
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether there are no runs.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Unbiased sample standard deviation (0 with fewer than 2 runs).
    pub fn std(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
            / (self.samples.len() as f64 - 1.0);
        var.sqrt()
    }

    /// `"0.9269 ± 0.0021"`-style rendering.
    pub fn render(&self) -> String {
        format!("{:.4} ± {:.4}", self.mean(), self.std())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let agg = RunAggregate::new(vec![1.0, 2.0, 3.0]);
        assert!((agg.mean() - 2.0).abs() < 1e-12);
        assert!((agg.std() - 1.0).abs() < 1e-12);
        assert_eq!(agg.len(), 3);
    }

    #[test]
    fn singleton_has_zero_std() {
        let agg = RunAggregate::new(vec![5.0]);
        assert_eq!(agg.std(), 0.0);
        assert_eq!(agg.mean(), 5.0);
    }

    #[test]
    fn render_formats() {
        let agg = RunAggregate::new(vec![0.9, 0.92]);
        assert_eq!(agg.render(), "0.9100 ± 0.0141");
    }
}
