//! Wall-clock timing helpers for the efficiency experiments (Figures 4–5).

use std::time::{Duration, Instant};

/// Accumulating stopwatch with lap support.
///
/// The efficiency harness records one lap per training epoch; Figure 4
/// reports the mean lap, Figure 5 the total across a full run.
#[derive(Debug)]
pub struct Stopwatch {
    laps: Vec<Duration>,
    current: Option<Instant>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// A stopped stopwatch with no laps.
    pub fn new() -> Self {
        Self {
            laps: Vec::new(),
            current: None,
        }
    }

    /// Starts (or restarts) the current lap.
    pub fn start(&mut self) {
        self.current = Some(Instant::now());
    }

    /// Ends the current lap, recording its duration.
    ///
    /// # Panics
    /// Panics if no lap is running.
    pub fn lap(&mut self) -> Duration {
        let started = self.current.take().expect("lap() without start()");
        let elapsed = started.elapsed();
        self.laps.push(elapsed);
        elapsed
    }

    /// Number of completed laps.
    pub fn lap_count(&self) -> usize {
        self.laps.len()
    }

    /// Mean lap duration in seconds (0 with no laps).
    pub fn mean_lap_secs(&self) -> f64 {
        if self.laps.is_empty() {
            0.0
        } else {
            self.total_secs() / self.laps.len() as f64
        }
    }

    /// Total recorded time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.laps.iter().map(Duration::as_secs_f64).sum()
    }

    /// All lap durations in seconds.
    pub fn laps_secs(&self) -> Vec<f64> {
        self.laps.iter().map(Duration::as_secs_f64).collect()
    }
}

/// Least-squares linear fit `y ≈ slope·x + intercept`, returning
/// `(slope, intercept, r²)` — used to verify Figure 5's "approximately
/// linear" scalability claim quantitatively.
///
/// # Panics
/// Panics unless both slices have equal length ≥ 2.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mean_x) * (xi - mean_x);
        sxy += (xi - mean_x) * (yi - mean_y);
        syy += (yi - mean_y) * (yi - mean_y);
    }
    assert!(sxx > 0.0, "x values are constant");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_records_laps() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(4));
        assert_eq!(sw.lap_count(), 1);
        assert!(sw.mean_lap_secs() > 0.0);
        assert!((sw.total_secs() - sw.mean_lap_secs()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lap() without start()")]
    fn lap_without_start_panics() {
        let mut sw = Stopwatch::new();
        let _ = sw.lap();
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let (slope, intercept, r2) = linear_fit(&x, &y);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_r2_drops_with_noise() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 4.0, 2.0, 5.0, 3.0];
        let (_, _, r2) = linear_fit(&x, &y);
        assert!(r2 < 0.7);
    }
}
