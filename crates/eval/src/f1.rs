//! Micro/macro-averaged F1 scores — the classification metric of Tables 2–4.

/// `num_classes × num_classes` confusion matrix; `m[true][pred]` counts.
///
/// # Panics
/// Panics if inputs differ in length or contain out-of-range classes.
pub fn confusion_matrix(y_true: &[usize], y_pred: &[usize], num_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(y_true.len(), y_pred.len(), "label vectors must align");
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        assert!(t < num_classes && p < num_classes, "class out of range");
        m[t][p] += 1;
    }
    m
}

/// Micro-averaged F1.
///
/// For single-label multi-class classification, micro-F1 aggregates TP/FP/FN
/// over classes; TP = number correct and FP = FN = number wrong, so it
/// reduces to overall accuracy — the convention the paper follows (§4.3
/// "micro-averaged F1 score").
pub fn micro_f1(y_true: &[usize], y_pred: &[usize]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "label vectors must align");
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    correct as f64 / y_true.len() as f64
}

/// Macro-averaged F1: the unweighted mean of per-class F1 scores. Classes
/// absent from both truth and prediction contribute F1 = 0.
pub fn macro_f1(y_true: &[usize], y_pred: &[usize], num_classes: usize) -> f64 {
    let m = confusion_matrix(y_true, y_pred, num_classes);
    let mut total = 0.0;
    for (c, row) in m.iter().enumerate() {
        let tp = row[c] as f64;
        let fp: f64 = (0..num_classes)
            .filter(|&t| t != c)
            .map(|t| m[t][c] as f64)
            .sum();
        let fn_: f64 = row
            .iter()
            .enumerate()
            .filter(|&(p, _)| p != c)
            .map(|(_, &v)| v as f64)
            .sum();
        let denom = 2.0 * tp + fp + fn_;
        if denom > 0.0 {
            total += 2.0 * tp / denom;
        }
    }
    total / num_classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let y = vec![0, 1, 2, 1, 0];
        assert_eq!(micro_f1(&y, &y), 1.0);
        assert_eq!(macro_f1(&y, &y, 3), 1.0);
    }

    #[test]
    fn micro_f1_is_accuracy_for_single_label() {
        let y_true = vec![0, 0, 1, 1];
        let y_pred = vec![0, 1, 1, 1];
        assert!((micro_f1(&y_true, &y_pred) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalises_missed_minority_class() {
        // Class 1 never predicted.
        let y_true = vec![0, 0, 0, 1];
        let y_pred = vec![0, 0, 0, 0];
        let micro = micro_f1(&y_true, &y_pred);
        let macro_ = macro_f1(&y_true, &y_pred, 2);
        assert!((micro - 0.75).abs() < 1e-12);
        // Class 0: F1 = 2*3/(2*3+1) = 6/7; class 1: 0 ⇒ macro = 3/7.
        assert!((macro_ - 3.0 / 7.0).abs() < 1e-12);
        assert!(macro_ < micro);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][2], 1);
        assert_eq!(m[2][2], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(micro_f1(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_rejected() {
        let _ = micro_f1(&[0], &[0, 1]);
    }
}
