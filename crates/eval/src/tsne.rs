//! Exact t-SNE (van der Maaten & Hinton, 2008) — Figure 3's visualisation
//! of inductively learned embeddings.
//!
//! This is the O(n²) exact formulation with PCA initialisation, per-point
//! perplexity calibration via binary search, early exaggeration, and
//! momentum gradient descent. The paper plots at most 1 000 points per
//! dataset, well inside exact t-SNE's comfortable range.

use rand::rngs::StdRng;
use rand::SeedableRng;
use widen_tensor::Tensor;

/// t-SNE hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions (typ. 5–50).
    pub perplexity: f64,
    /// Total gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Iterations with early exaggeration (P × 4).
    pub exaggeration_iters: usize,
    /// RNG seed (PCA fallback jitter).
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 100.0,
            exaggeration_iters: 100,
            seed: 0,
        }
    }
}

/// Embeds `data` (`n × d`) into 2-D.
///
/// # Panics
/// Panics if `n < 4` or the perplexity is infeasible (`n ≤ 3·perplexity` is
/// clamped instead of panicking).
pub fn tsne(data: &Tensor, config: &TsneConfig) -> Tensor {
    let n = data.rows();
    assert!(n >= 4, "t-SNE needs at least 4 points");
    let perplexity = config.perplexity.min((n as f64 - 1.0) / 3.0).max(2.0);

    // Pairwise squared Euclidean distances in the input space.
    let d2 = pairwise_sq_dists(data);

    // Per-point precision calibration to the target perplexity.
    let p_cond = calibrate(&d2, perplexity);

    // Symmetrise and normalise: p_ij = (p_{j|i} + p_{i|j}) / 2n.
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            p[i * n + j] = (p_cond[i * n + j] + p_cond[j * n + i]) / (2.0 * n as f64);
        }
    }
    let p_sum: f64 = p.iter().sum();
    for v in &mut p {
        *v = (*v / p_sum).max(1e-12);
    }

    // PCA init (scaled small, as in the reference implementation).
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut y = pca_2d(data, &mut rng);
    let scale = 1e-2
        / y.as_slice()
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()))
            .max(1e-6);
    y.scale_inplace(scale);

    let mut velocity = vec![0.0f64; n * 2];
    let mut gains = vec![1.0f64; n * 2];

    for iter in 0..config.iterations {
        let exaggeration = if iter < config.exaggeration_iters {
            4.0
        } else {
            1.0
        };
        let momentum = if iter < 250 { 0.5 } else { 0.8 };

        // Low-dimensional affinities (Student-t kernel).
        let mut q_num = vec![0.0f64; n * n];
        let mut q_sum = 0.0f64;
        for i in 0..n {
            let yi = y.row(i);
            for j in i + 1..n {
                let yj = y.row(j);
                let dx = f64::from(yi[0] - yj[0]);
                let dy = f64::from(yi[1] - yj[1]);
                let num = 1.0 / (1.0 + dx * dx + dy * dy);
                q_num[i * n + j] = num;
                q_num[j * n + i] = num;
                q_sum += 2.0 * num;
            }
        }
        let q_sum = q_sum.max(1e-12);

        // Gradient: 4 Σ_j (p_ij·ex − q_ij) num_ij (y_i − y_j).
        for i in 0..n {
            let mut gx = 0.0f64;
            let mut gy = 0.0f64;
            let yi0 = f64::from(y.row(i)[0]);
            let yi1 = f64::from(y.row(i)[1]);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let num = q_num[i * n + j];
                let q = (num / q_sum).max(1e-12);
                let mult = (p[i * n + j] * exaggeration - q) * num;
                gx += mult * (yi0 - f64::from(y.row(j)[0]));
                gy += mult * (yi1 - f64::from(y.row(j)[1]));
            }
            for (k, g) in [(0usize, 4.0 * gx), (1usize, 4.0 * gy)] {
                let idx = i * 2 + k;
                // Adaptive gains (Jacobs) as in the reference code.
                let same_sign = g.signum() == velocity[idx].signum();
                gains[idx] = if same_sign {
                    (gains[idx] * 0.8).max(0.01)
                } else {
                    gains[idx] + 0.2
                };
                velocity[idx] = momentum * velocity[idx] - config.learning_rate * gains[idx] * g;
            }
        }
        for i in 0..n {
            let row = y.row_mut(i);
            row[0] += velocity[i * 2] as f32;
            row[1] += velocity[i * 2 + 1] as f32;
        }
        // Re-centre to remove drift.
        let (mut mx, mut my) = (0.0f64, 0.0f64);
        for i in 0..n {
            mx += f64::from(y.row(i)[0]);
            my += f64::from(y.row(i)[1]);
        }
        mx /= n as f64;
        my /= n as f64;
        for i in 0..n {
            let row = y.row_mut(i);
            row[0] -= mx as f32;
            row[1] -= my as f32;
        }
    }
    y
}

fn pairwise_sq_dists(data: &Tensor) -> Vec<f64> {
    let n = data.rows();
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let mut d = 0.0f64;
            for (a, b) in data.row(i).iter().zip(data.row(j)) {
                let diff = f64::from(a - b);
                d += diff * diff;
            }
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }
    d2
}

/// Binary-searches each point's Gaussian precision β so the conditional
/// distribution hits the target perplexity; returns row-normalised
/// `p_{j|i}`.
fn calibrate(d2: &[f64], perplexity: f64) -> Vec<f64> {
    let n = (d2.len() as f64).sqrt() as usize;
    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let mut beta = 1.0f64;
        let mut beta_min = f64::NEG_INFINITY;
        let mut beta_max = f64::INFINITY;
        for _ in 0..50 {
            // Compute entropy at current beta.
            let mut sum = 0.0f64;
            let mut weighted = 0.0f64;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = (-beta * d2[i * n + j]).exp();
                sum += w;
                weighted += w * d2[i * n + j];
            }
            let sum = sum.max(1e-300);
            let entropy = beta * weighted / sum + sum.ln();
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_infinite() {
                    beta * 2.0
                } else {
                    (beta + beta_max) / 2.0
                };
            } else {
                beta_max = beta;
                beta = if beta_min.is_infinite() {
                    beta / 2.0
                } else {
                    (beta + beta_min) / 2.0
                };
            }
        }
        let mut sum = 0.0f64;
        for j in 0..n {
            if i != j {
                let w = (-beta * d2[i * n + j]).exp();
                p[i * n + j] = w;
                sum += w;
            }
        }
        let sum = sum.max(1e-300);
        for j in 0..n {
            p[i * n + j] /= sum;
        }
    }
    p
}

/// Projects onto the top-2 principal components (power iteration with
/// deflation on the d×d covariance).
fn pca_2d(data: &Tensor, rng: &mut StdRng) -> Tensor {
    let n = data.rows();
    let d = data.cols();
    // Centre.
    let mut mean = vec![0.0f64; d];
    for i in 0..n {
        for (m, &v) in mean.iter_mut().zip(data.row(i)) {
            *m += f64::from(v);
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    // Covariance (d × d).
    let mut cov = vec![0.0f64; d * d];
    for i in 0..n {
        let row = data.row(i);
        for a in 0..d {
            let xa = f64::from(row[a]) - mean[a];
            for b in a..d {
                let xb = f64::from(row[b]) - mean[b];
                cov[a * d + b] += xa * xb;
            }
        }
    }
    for a in 0..d {
        for b in 0..a {
            cov[a * d + b] = cov[b * d + a];
        }
    }

    let mut components: Vec<Vec<f64>> = Vec::new();
    for _ in 0..2 {
        let mut v: Vec<f64> = (0..d)
            .map(|_| rand::Rng::gen_range(rng, -1.0..1.0))
            .collect();
        for _ in 0..100 {
            // Deflate previously found components.
            for c in &components {
                let dot: f64 = v.iter().zip(c).map(|(a, b)| a * b).sum();
                for (vi, ci) in v.iter_mut().zip(c) {
                    *vi -= dot * ci;
                }
            }
            let mut next = vec![0.0f64; d];
            for a in 0..d {
                let mut acc = 0.0;
                for b in 0..d {
                    acc += cov[a * d + b] * v[b];
                }
                next[a] = acc;
            }
            let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                break;
            }
            for x in &mut next {
                *x /= norm;
            }
            v = next;
        }
        components.push(v);
    }

    let mut out = Tensor::zeros(n, 2);
    for i in 0..n {
        let row = data.row(i);
        for (k, comp) in components.iter().enumerate() {
            let mut acc = 0.0f64;
            for a in 0..d {
                acc += (f64::from(row[a]) - mean[a]) * comp[a];
            }
            out.set(i, k, acc as f32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Three well-separated Gaussian blobs in 10-D.
    fn blobs(per_cluster: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for _ in 0..per_cluster {
                let mut row = vec![0.0f32; 10];
                for (k, x) in row.iter_mut().enumerate() {
                    let centre = if k % 3 == c { 8.0 } else { 0.0 };
                    *x = centre + rng.gen_range(-0.5..0.5);
                }
                rows.push(row);
                labels.push(c);
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        (Tensor::from_rows(&refs), labels)
    }

    #[test]
    fn tsne_preserves_blob_structure() {
        let (data, labels) = blobs(20, 1);
        let config = TsneConfig {
            iterations: 250,
            ..TsneConfig::default()
        };
        let y = tsne(&data, &config);
        assert_eq!(y.shape(), (60, 2));
        assert!(y.all_finite());
        // The 2-D embedding should keep the clusters separable.
        let s = crate::silhouette_score(&y, &labels);
        assert!(s > 0.5, "silhouette of t-SNE output = {s}");
    }

    #[test]
    fn tsne_is_deterministic_for_fixed_seed() {
        let (data, _) = blobs(8, 2);
        let config = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        let a = tsne(&data, &config);
        let b = tsne(&data, &config);
        assert!(a.max_abs_diff(&b) == 0.0);
    }

    #[test]
    fn calibration_hits_target_perplexity() {
        let (data, _) = blobs(10, 3);
        let d2 = pairwise_sq_dists(&data);
        let perp = 10.0;
        let p = calibrate(&d2, perp);
        let n = data.rows();
        for i in 0..n.min(5) {
            // Shannon entropy of row i should be ≈ ln(perplexity).
            let h: f64 = (0..n)
                .filter(|&j| j != i && p[i * n + j] > 0.0)
                .map(|j| -p[i * n + j] * p[i * n + j].ln())
                .sum();
            assert!((h - perp.ln()).abs() < 0.05, "row {i}: H = {h}");
        }
    }

    #[test]
    fn pca_separates_blobs_linearly() {
        let (data, labels) = blobs(15, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let y = pca_2d(&data, &mut rng);
        let s = crate::silhouette_score(&y, &labels);
        assert!(s > 0.4, "silhouette of PCA projection = {s}");
    }

    #[test]
    #[should_panic(expected = "at least 4 points")]
    fn too_few_points_rejected() {
        let data = Tensor::zeros(3, 2);
        let _ = tsne(&data, &TsneConfig::default());
    }
}
