//! Kullback–Leibler divergence between attention distributions — the
//! downsampling trigger of Eq. 9.

/// `KL(p ‖ q) = Σ p_i ln(p_i / q_i)`.
///
/// Matches Eq. 9's convention: `p` is the *previous* epoch's attention
/// distribution, `q` the current one. Terms with `p_i = 0` contribute zero;
/// a `q_i = 0` against `p_i > 0` yields `+∞` (no overlap ⇒ maximal
/// information gain ⇒ never triggers downsampling), which is also the value
/// Eq. 9 assigns when the neighbour sets differ.
///
/// # Panics
/// Panics if the distributions have different lengths.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let mut total = 0.0f64;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        total += f64::from(pi) * (f64::from(pi) / f64::from(qi)).ln();
    }
    total.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_kl() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let kl = kl_divergence(&p, &q);
        assert!(kl > 0.0);
        // Hand computation: 0.9 ln(1.8) + 0.1 ln(0.2) ≈ 0.368.
        assert!((kl - 0.3680).abs() < 1e-3);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-3);
    }

    #[test]
    fn zero_q_support_gives_infinity() {
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn zero_p_terms_are_skipped() {
        let kl = kl_divergence(&[0.0, 1.0], &[0.5, 0.5]);
        assert!((kl - std::f64::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn near_identical_distributions_small_kl() {
        // The trigger regime: after the model stabilises, consecutive-epoch
        // attention barely moves and KL drops below r = 1e-3.
        let p = [0.30, 0.30, 0.40];
        let q = [0.301, 0.299, 0.40];
        assert!(kl_divergence(&p, &q) < 1e-3);
    }
}
