//! Kullback–Leibler divergence between attention distributions — the
//! downsampling trigger of Eq. 9.

/// Additive smoothing mass applied to every slot before renormalisation.
///
/// Chosen so that a vanished slot (`q_i = 0` against `p_i > 0`) yields a
/// *large but finite* divergence (≈ `p_i · ln(p_i/ε)` ≈ 13·p_i), orders of
/// magnitude above any realistic Eq. 9 threshold `r` (the paper uses
/// `1e-3`) — the "no overlap ⇒ never downsample" semantics survive without
/// ever producing `inf`/`NaN`.
pub const KL_SMOOTHING_EPS: f64 = 1e-6;

/// `KL(p ‖ q) = Σ p̃_i ln(p̃_i / q̃_i)` over ε-smoothed, renormalised
/// copies of the inputs.
///
/// Matches Eq. 9's convention: `p` is the *previous* epoch's attention
/// distribution, `q` the current one. Robustness contract (the Eq. 9
/// trigger compares the result against a threshold every epoch, so it must
/// never be poisoned):
///
/// * **always finite** — every slot gets [`KL_SMOOTHING_EPS`] added before
///   renormalising, so `q_i = 0` no longer divides by zero; it just
///   contributes a large positive term,
/// * **never negative** — both sides are renormalised to proper
///   distributions first (unnormalised inputs used to be able to drive the
///   sum below zero), and the result is clamped at `0` against f32
///   round-off,
/// * **tolerant of garbage** — negative, `NaN` or infinite entries are
///   treated as empty slots (mass 0) rather than propagating.
///
/// Two all-zero inputs smooth to uniform and give `KL = 0`.
///
/// # Panics
/// Panics if the distributions have different lengths.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    if p.is_empty() {
        return 0.0;
    }
    let clamp = |x: f32| {
        let v = f64::from(x);
        if v.is_finite() && v > 0.0 {
            v
        } else {
            0.0
        }
    };
    let n = p.len() as f64;
    let p_norm: f64 = p.iter().map(|&x| clamp(x)).sum::<f64>() + KL_SMOOTHING_EPS * n;
    let q_norm: f64 = q.iter().map(|&x| clamp(x)).sum::<f64>() + KL_SMOOTHING_EPS * n;
    let mut total = 0.0f64;
    for (&pi, &qi) in p.iter().zip(q) {
        let ps = (clamp(pi) + KL_SMOOTHING_EPS) / p_norm;
        let qs = (clamp(qi) + KL_SMOOTHING_EPS) / q_norm;
        total += ps * (ps / qs).ln();
    }
    total.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_kl() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let kl = kl_divergence(&p, &q);
        assert!(kl > 0.0);
        // Hand computation: 0.9 ln(1.8) + 0.1 ln(0.2) ≈ 0.368.
        assert!((kl - 0.3680).abs() < 1e-3);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-3);
    }

    #[test]
    fn zero_q_support_is_large_but_finite() {
        // Regression: this used to return +∞, which poisoned every
        // downstream mean/min aggregate. The smoothed value must stay far
        // above any plausible Eq. 9 threshold so the trigger still never
        // fires on disjoint support.
        let kl = kl_divergence(&[0.5, 0.5], &[1.0, 0.0]);
        assert!(kl.is_finite());
        assert!(kl > 1.0, "smoothed no-overlap KL should be large, got {kl}");
    }

    #[test]
    fn one_hot_distributions_are_finite_both_ways() {
        // Regression: p one-hot vs q one-hot on a different slot has zero
        // overlap in both directions.
        let p = [1.0, 0.0, 0.0];
        let q = [0.0, 0.0, 1.0];
        let ab = kl_divergence(&p, &q);
        let ba = kl_divergence(&q, &p);
        assert!(ab.is_finite() && ab > 1.0);
        assert!(ba.is_finite() && ba > 1.0);
        assert_eq!(kl_divergence(&p, &p), 0.0);
    }

    #[test]
    fn zero_mass_distributions_give_zero_kl() {
        // Regression: all-zero attention (a fully masked or degenerate
        // slot) used to hit 0/0 = NaN paths; both sides smooth to uniform.
        let z = [0.0, 0.0, 0.0];
        assert_eq!(kl_divergence(&z, &z), 0.0);
        assert!(kl_divergence(&z, &[0.2, 0.3, 0.5]).is_finite());
        assert!(kl_divergence(&[0.2, 0.3, 0.5], &z).is_finite());
    }

    #[test]
    fn unnormalised_inputs_never_go_negative() {
        // Regression: KL computed on raw (unnormalised) inputs could come
        // out negative, silently satisfying `kl < r` and mis-triggering
        // downsampling. Renormalisation restores Gibbs' inequality.
        let p = [2.0, 2.0];
        let q = [1.0, 3.0];
        let kl = kl_divergence(&p, &q);
        assert!(kl >= 0.0);
        assert!(kl.is_finite());
        // Scale invariance up to smoothing: 10× inputs agree closely.
        let scaled = kl_divergence(&[20.0, 20.0], &[10.0, 30.0]);
        assert!((kl - scaled).abs() < 1e-4);
    }

    #[test]
    fn garbage_entries_are_treated_as_empty_slots() {
        let kl = kl_divergence(&[f32::NAN, 1.0], &[0.5, f32::INFINITY]);
        assert!(kl.is_finite());
        assert!(kl >= 0.0);
        let kl = kl_divergence(&[-3.0, 1.0], &[0.5, 0.5]);
        assert!(kl.is_finite() && kl >= 0.0);
    }

    #[test]
    fn empty_distributions_have_zero_kl() {
        assert_eq!(kl_divergence(&[], &[]), 0.0);
    }

    #[test]
    fn zero_p_terms_are_harmless() {
        let kl = kl_divergence(&[0.0, 1.0], &[0.5, 0.5]);
        assert!((kl - std::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn near_identical_distributions_small_kl() {
        // The trigger regime: after the model stabilises, consecutive-epoch
        // attention barely moves and KL drops below r = 1e-3.
        let p = [0.30, 0.30, 0.40];
        let q = [0.301, 0.299, 0.40];
        assert!(kl_divergence(&p, &q) < 1e-3);
    }
}
