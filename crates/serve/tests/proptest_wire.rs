//! Property tests of the serving wire protocol: frame encode/decode
//! roundtrips survive arbitrary split-read boundaries, oversized length
//! prefixes are rejected at the prefix, and mutated bodies never panic
//! the decoder.

use proptest::prelude::*;
use widen_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, FrameReader, MAX_FRAME_LEN,
};
use widen_serve::{Request, Response, WireError};

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        1u32..9,
        prop::collection::vec(any::<u32>(), 0..40),
    )
        .prop_map(|(id, seed, embed, rounds, nodes)| {
            if embed {
                Request::Embed { id, seed, nodes }
            } else {
                Request::Classify {
                    id,
                    seed,
                    rounds,
                    nodes,
                }
            }
        })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (
        any::<u64>(),
        0usize..3,
        1u32..7,
        prop::collection::vec(-10.0f32..10.0, 0..36),
        prop::collection::vec(any::<u32>(), 0..12),
    )
        .prop_map(|(id, kind, dim, values, labels)| match kind {
            0 => {
                // Trim the flat values to a whole number of `dim`-wide rows.
                let rows = values.len() / dim as usize;
                Response::Embeddings {
                    id,
                    dim,
                    values: values[..rows * dim as usize].to_vec(),
                }
            }
            1 => Response::Classes { id, labels },
            _ => Response::Error {
                id,
                code: (dim % 5) as u8 + 1,
                message: format!("error detail {id}"),
            },
        })
}

/// Feeds `wire` into a FrameReader in chunks whose sizes cycle through
/// `cuts`, draining every completed frame along the way.
fn reassemble(wire: &[u8], cuts: &[usize]) -> Result<Vec<Vec<u8>>, WireError> {
    let mut fr = FrameReader::new();
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let mut k = 0usize;
    while pos < wire.len() {
        let step = cuts[k % cuts.len()].min(wire.len() - pos);
        k += 1;
        fr.push(&wire[pos..pos + step]);
        pos += step;
        while let Some(body) = fr.next_frame()? {
            frames.push(body);
        }
    }
    assert_eq!(fr.pending(), 0, "no partial frame may remain");
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_roundtrip_across_arbitrary_split_reads(
        reqs in prop::collection::vec(request_strategy(), 1..5),
        cuts in prop::collection::vec(1usize..17, 1..8),
    ) {
        let wire: Vec<u8> = reqs.iter().flat_map(encode_request).collect();
        let frames = reassemble(&wire, &cuts).expect("well-formed stream");
        prop_assert_eq!(frames.len(), reqs.len());
        for (body, req) in frames.iter().zip(&reqs) {
            prop_assert_eq!(&decode_request(body).expect("body decodes"), req);
        }
    }

    #[test]
    fn responses_roundtrip_bit_exactly(
        resps in prop::collection::vec(response_strategy(), 1..5),
        cuts in prop::collection::vec(1usize..17, 1..8),
    ) {
        let wire: Vec<u8> = resps.iter().flat_map(encode_response).collect();
        let frames = reassemble(&wire, &cuts).expect("well-formed stream");
        prop_assert_eq!(frames.len(), resps.len());
        for (body, resp) in frames.iter().zip(&resps) {
            let decoded = decode_response(body).expect("body decodes");
            if let (
                Response::Embeddings { values: a, .. },
                Response::Embeddings { values: b, .. },
            ) = (&decoded, resp)
            {
                // f32 payloads must survive the wire bit-for-bit.
                let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
                let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(a_bits, b_bits);
            }
            prop_assert_eq!(&decoded, resp);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_at_the_prefix(
        excess in 1u32..100_000,
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut fr = FrameReader::new();
        fr.push(&(MAX_FRAME_LEN as u32 + excess).to_le_bytes());
        fr.push(&garbage);
        prop_assert!(matches!(fr.next_frame(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn mutated_bodies_never_panic_the_decoders(
        req in request_strategy(),
        raw_offset in 0usize..1_000_000,
        mask in 1usize..256,
        raw_cut in 0usize..1_000_000,
    ) {
        let wire = encode_request(&req);
        let body = &wire[4..];
        // Single-byte flip: may still decode (payload bytes are free-form,
        // and a type flip can land on the other valid discriminant), but
        // must never panic; magic/version flips are always errors.
        let mut flipped = body.to_vec();
        let offset = raw_offset % flipped.len();
        flipped[offset] ^= mask as u8;
        let outcome = decode_request(&flipped);
        if offset < 6 {
            prop_assert!(outcome.is_err(), "header flip at {offset} must not decode");
        }
        // Truncation at every possible boundary is an error, never a panic.
        let cut = raw_cut % body.len();
        prop_assert!(decode_request(&body[..cut]).is_err());
        prop_assert!(decode_response(&body[..cut]).is_err());
    }
}
