//! Deterministic end-to-end exercises of the server's error and cache
//! paths: bad nodes, empty requests, backpressure, deadlines, malformed
//! frames, and repeat-request cache hits.

use std::io::{Read, Write};
use std::net::TcpStream;

use widen_core::{WidenConfig, WidenModel};
use widen_data::{acm_like, Scale};
use widen_serve::protocol::{decode_response, encode_request, FrameReader};
use widen_serve::{
    Client, ClientError, ModelRegistry, Request, Response, ServeConfig, ServeError, Server,
};

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 8;
    c.n_w = 4;
    c.n_d = 4;
    c.phi = 1;
    c
}

fn tiny_registry(seed: u64) -> ModelRegistry {
    let dataset = acm_like(Scale::Smoke, seed);
    let model = WidenModel::for_graph(&dataset.graph, tiny_config());
    ModelRegistry::from_model(dataset.graph, model)
}

#[test]
fn unknown_node_is_a_bad_request() {
    let handle = Server::bind(tiny_registry(50), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let err = client.classify(&[u32::MAX], 1, 2).unwrap_err();
    assert!(
        matches!(err, ClientError::Server(ServeError::BadRequest(_))),
        "got {err:?}"
    );
    // The connection stays usable after a request-level error.
    let labels = client.classify(&[0, 1], 1, 2).unwrap();
    assert_eq!(labels.len(), 2);
    handle.shutdown();
}

#[test]
fn empty_requests_answer_immediately() {
    let handle = Server::bind(tiny_registry(51), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert!(client.embed(&[], 1).unwrap().is_empty());
    assert!(client.classify(&[], 1, 2).unwrap().is_empty());
    handle.shutdown();
}

#[test]
fn full_queue_answers_overloaded() {
    // A zero-depth queue can never accept a job, so every non-empty
    // request deterministically hits the backpressure path.
    let config = ServeConfig {
        queue_depth: 0,
        ..ServeConfig::default()
    };
    let handle = Server::bind(tiny_registry(52), config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let err = client.classify(&[0, 1], 1, 2).unwrap_err();
    assert!(
        matches!(err, ClientError::Server(ServeError::Overloaded)),
        "got {err:?}"
    );
    handle.shutdown();
}

#[test]
fn expired_deadline_answers_deadline_exceeded() {
    // A zero-millisecond budget has always elapsed by the time a worker
    // dequeues the job, so the deadline path fires deterministically.
    let config = ServeConfig {
        request_timeout_ms: 0,
        ..ServeConfig::default()
    };
    let handle = Server::bind(tiny_registry(53), config, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let err = client.classify(&[0, 1, 2], 1, 2).unwrap_err();
    assert!(
        matches!(err, ClientError::Server(ServeError::DeadlineExceeded)),
        "got {err:?}"
    );
    let stats = handle.shutdown();
    assert!(stats.deadline_drops >= 1);
}

#[test]
fn malformed_frame_gets_an_error_then_close() {
    let handle = Server::bind(tiny_registry(54), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    // Valid length prefix, garbage body (wrong magic).
    let body = b"NOPE-this-is-not-a-frame";
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(body).unwrap();

    let mut reader = FrameReader::new();
    let mut buf = [0u8; 4096];
    let response = loop {
        if let Some(frame) = reader.next_frame().unwrap() {
            break decode_response(&frame).unwrap();
        }
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0, "server must answer before closing");
        reader.push(&buf[..n]);
    };
    match response {
        Response::Error { id, code, .. } => {
            assert_eq!(id, 0, "undecodable request ids echo as 0");
            assert_eq!(code, ServeError::BadRequest(String::new()).code());
        }
        other => panic!("expected an error response, got {other:?}"),
    }
    // The server then drops the connection: EOF.
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) => panic!("expected clean EOF, got {e}"),
        }
    }
    handle.shutdown();
}

#[test]
fn repeated_embeds_hit_the_cache_bit_identically() {
    let handle = Server::bind(tiny_registry(55), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let nodes = [0u32, 1, 2, 3];

    let first = client.embed(&nodes, 9).unwrap();
    let after_first = handle.stats();
    assert_eq!(after_first.cache_hits, 0);
    assert_eq!(after_first.cache_misses, nodes.len() as u64);

    let second = client.embed(&nodes, 9).unwrap();
    let after_second = handle.stats();
    assert_eq!(after_second.cache_hits, nodes.len() as u64);
    for (a, b) in first.iter().zip(&second) {
        let a_bits: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
        let b_bits: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "cached rows must be bit-identical");
    }

    // A different seed is a different cache key, not a stale hit.
    let other_seed = client.embed(&nodes, 10).unwrap();
    assert_ne!(first, other_seed, "different seed should resample");
    handle.shutdown();
}

#[test]
fn oversized_frame_closes_the_connection() {
    let handle = Server::bind(tiny_registry(56), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
    stream.write_all(&[0u8; 64]).unwrap();
    // The server answers with a BadRequest error frame and/or closes; it
    // must not hang. Read until EOF.
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    handle.shutdown();
}

#[test]
fn requests_after_shutdown_are_refused() {
    let handle = Server::bind(tiny_registry(57), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(client.classify(&[0], 1, 1).unwrap().len(), 1);
    let stats = handle.shutdown();
    assert_eq!(stats.requests, 1);
    // The connection died with the server: the next call must error, not
    // hang or fabricate an answer.
    assert!(client.classify(&[0], 1, 1).is_err());
}

#[test]
fn valid_requests_roundtrip_raw_frames() {
    // Drive the wire protocol by hand (no Client) to pin the framing.
    let handle = Server::bind(tiny_registry(58), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let request = Request::Classify {
        id: 77,
        seed: 3,
        rounds: 2,
        nodes: vec![0, 1],
    };
    stream.write_all(&encode_request(&request)).unwrap();
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 4096];
    let response = loop {
        if let Some(frame) = reader.next_frame().unwrap() {
            break decode_response(&frame).unwrap();
        }
        let n = stream.read(&mut buf).unwrap();
        assert!(n > 0);
        reader.push(&buf[..n]);
    };
    match response {
        Response::Classes { id, labels } => {
            assert_eq!(id, 77);
            assert_eq!(labels.len(), 2);
        }
        other => panic!("expected classes, got {other:?}"),
    }
    handle.shutdown();
}
