//! # widen-serve
//!
//! A concurrent, micro-batched inference service over the WIDEN batched
//! execution engine — the paper's inductive-inference story (RQ2) turned
//! into an online system: a request names unseen nodes and a sampling
//! seed, the server embeds or classifies them from freshly sampled
//! neighbourhoods and the trained weights.
//!
//! Pieces:
//!
//! * [`ModelRegistry`] — checkpoint-backed model bundle loaded through the
//!   fallible `try_load_weights` path; its checkpoint digest doubles as
//!   the cache generation id.
//! * micro-batching queue ([`ServeConfig::max_batch`] /
//!   [`ServeConfig::max_wait_us`]) — concurrent requests from different
//!   clients coalesce into one fused `forward_batch` /
//!   ensemble-logits call, so server throughput inherits the batched
//!   engine's win. Batch-composition invariance (a per-node output is
//!   bit-identical regardless of its chunk neighbours) makes this purely a
//!   throughput knob.
//! * [`protocol`] — a length-prefixed binary wire protocol (magic,
//!   version, request id, node ids, seed) with a defensive incremental
//!   [`protocol::FrameReader`].
//! * [`EmbedCache`] — bounded LRU keyed
//!   `(node, checkpoint_hash, graph_version, seed)`.
//! * [`Server`] / [`Client`] — an event-driven front end: one reactor
//!   thread owns every client socket nonblocking in a `poll(2)` set, so
//!   an idle connection costs a registered fd, not an OS thread. Requests
//!   pipelined on one socket are correlated by id and may complete out of
//!   order server-side; admission control caps open connections
//!   ([`ServeConfig::max_connections`]) and queue-depth shedding answers
//!   `Overloaded` before enqueue. Per-request deadlines
//!   (`DeadlineExceeded`) and graceful drain-on-shutdown (every accepted
//!   request is answered before threads exit) are preserved from the
//!   thread-per-connection front end this replaced.
//! * trace-context extension — version-2 frames carry a client trace id
//!   ([`Client::set_tracing`]); the server opens a request span, records
//!   queue-wait / coalesce / cache-lookup / forward-batch child spans,
//!   and returns the span tree on the response
//!   ([`Client::last_trace`]). Requests slower than
//!   [`ServeConfig::slow_request_ms`] are counted and logged with their
//!   span tree. Version-1 peers interoperate unchanged.
//! * observability — the reactor and the batch workers stamp every
//!   request's lifecycle into always-on histograms; the `Telemetry` wire
//!   op ([`Client::telemetry`]) returns the merged SLO view (interpolated
//!   p50/p90/p99 per histogram), and a fixed-size flight recorder
//!   ([`ServeConfig::flight_recorder_capacity`]) keeps recent request
//!   timelines, frozen as a JSONL post-mortem
//!   ([`ServerHandle::postmortem_dump`]) whenever a shed, deadline drop,
//!   admission reject, or slow request fires.
//!
//! ## Quickstart
//!
//! ```no_run
//! use widen_core::{WidenConfig, WidenModel};
//! use widen_serve::{Client, ModelRegistry, ServeConfig, Server};
//! # fn demo(graph: widen_graph::HeteroGraph, checkpoint: &[u8]) -> Result<(), Box<dyn std::error::Error>> {
//! let registry = ModelRegistry::from_checkpoint(graph, WidenConfig::paper(), checkpoint)?;
//! let handle = Server::bind(registry, ServeConfig::default(), "127.0.0.1:0")?;
//! let mut client = Client::connect(handle.local_addr())?;
//! let labels = client.classify(&[42, 7], /*seed=*/ 1, /*rounds=*/ 3)?;
//! let rows = client.embed(&[42], 1)?;
//! # let _ = (labels, rows);
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod batcher;
pub mod cache;
pub mod client;
pub mod error;
mod poll;
pub mod protocol;
mod reactor;
pub mod registry;
pub mod server;

pub use cache::{CacheStats, EmbedCache, EmbedKey};
pub use client::{Client, ClientError};
pub use error::ServeError;
pub use protocol::{Request, Response, SpanSummary, TraceContext, WireError, WireSpan};
pub use registry::{IngestOutcome, ModelRegistry, ServingState, ShardMap, ShardSnapshot};
pub use server::{ServeConfig, ServeStats, Server, ServerHandle};
