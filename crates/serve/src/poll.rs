//! A minimal, std-only wrapper over `poll(2)` and a self-pipe wake token.
//!
//! The serving front end is a single-threaded reactor: every client
//! socket (and the listener) is registered in one `poll` set, so the cost
//! of an idle connection is a file descriptor in the kernel's interest
//! list — not an OS thread and its stack. The repo vendors no `libc`
//! crate, so the three syscalls the reactor needs (`poll`, `pipe`,
//! `fcntl`) are declared here directly; std already links libc on every
//! unix target, making this a zero-dependency binding.
//!
//! The [`WakePipe`] is the reactor's cross-thread wake token: batcher
//! workers and the shutdown path write one byte to the pipe's write end,
//! which makes the read end readable and pops the reactor out of `poll`.
//! This replaces the old `TcpStream::connect(self.addr)` shutdown wake,
//! which could itself fail under fd exhaustion or an unconnectable bind
//! address and leave the acceptor blocked forever — writing to an
//! already-open pipe allocates nothing and cannot fail that way.

#![allow(non_camel_case_types)]

use std::io;
use std::os::fd::RawFd;

/// `poll(2)` interest/result record, matching the C ABI layout.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct pollfd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel).
    pub fd: RawFd,
    /// Requested events (`POLL_IN` / `POLL_OUT`).
    pub events: i16,
    /// Returned events; includes error conditions regardless of
    /// `events`.
    pub revents: i16,
}

/// Readable (or a pending connection on a listener).
pub const POLL_IN: i16 = 0x001;
/// Writable without blocking.
pub const POLL_OUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLL_ERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLL_HUP: i16 = 0x010;
/// The fd is not open (always reported, never requested).
pub const POLL_NVAL: i16 = 0x020;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

extern "C" {
    fn poll(fds: *mut pollfd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    fn pipe(fds: *mut RawFd) -> i32;
    fn fcntl(fd: RawFd, cmd: i32, arg: i32) -> i32;
    fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
    fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
    fn close(fd: RawFd) -> i32;
}

/// Blocks until any registered fd has events, the timeout elapses, or a
/// signal interrupts. `timeout_ms < 0` blocks indefinitely. Returns the
/// number of entries with non-zero `revents` (0 on timeout); `EINTR` is
/// swallowed and reported as 0 so callers simply re-loop.
///
/// # Errors
/// Propagates any other `poll(2)` failure.
pub fn poll_fds(fds: &mut [pollfd], timeout_ms: i32) -> io::Result<usize> {
    let n = unsafe {
        poll(
            fds.as_mut_ptr(),
            fds.len() as std::os::raw::c_ulong,
            timeout_ms,
        )
    };
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(n as usize)
}

/// A nonblocking self-pipe: `wake()` from any thread makes `read_fd()`
/// readable in the reactor's poll set. Waking an already-woken pipe is a
/// no-op (the pipe buffer holding a byte is the "wake pending" state), so
/// arbitrarily many wakes between two poll rounds cost at most one
/// syscall each and coalesce into one readable event.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

// RawFds are just integers; the syscalls used on them are thread-safe.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl WakePipe {
    /// Creates the pipe with both ends nonblocking.
    ///
    /// # Errors
    /// Propagates `pipe(2)`/`fcntl(2)` failures (e.g. fd exhaustion at
    /// server construction time).
    pub fn new() -> io::Result<Self> {
        let mut fds: [RawFd; 2] = [-1, -1];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let this = Self {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        for fd in fds {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(this)
    }

    /// The end the reactor registers for `POLL_IN`.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Makes the read end readable. Infallible by design: `EAGAIN` (pipe
    /// buffer full) means a wake is already pending, which is exactly the
    /// state this call wants to reach.
    pub fn wake(&self) {
        let byte = [1u8];
        let _ = unsafe { write(self.write_fd, byte.as_ptr(), 1) };
    }

    /// Consumes every pending wake byte so the next `poll` blocks again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_makes_the_read_end_pollable_and_drain_clears_it() {
        let pipe = WakePipe::new().expect("pipe");
        let mut fds = [pollfd {
            fd: pipe.read_fd(),
            events: POLL_IN,
            revents: 0,
        }];
        // Nothing pending: an immediate poll times out.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        pipe.wake();
        pipe.wake(); // coalesces, never errors
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].revents & POLL_IN != 0);
        pipe.drain();
        fds[0].revents = 0;
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
    }

    #[test]
    fn wake_from_another_thread_pops_a_blocking_poll() {
        let pipe = std::sync::Arc::new(WakePipe::new().expect("pipe"));
        let waker = pipe.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            waker.wake();
        });
        let mut fds = [pollfd {
            fd: pipe.read_fd(),
            events: POLL_IN,
            revents: 0,
        }];
        let start = std::time::Instant::now();
        let n = poll_fds(&mut fds, 10_000).unwrap();
        assert_eq!(n, 1);
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        t.join().unwrap();
    }
}
