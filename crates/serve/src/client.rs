//! Blocking client for the WIDEN serving protocol, with an optional
//! pipelined mode: `send_embed`/`send_classify` put multiple requests in
//! flight on one socket and `recv_embed(id)`/`recv_classify(id)` collect
//! them in any order — responses that arrive for a different id are
//! stashed until their own `recv_*` call asks for them. The server may
//! complete pipelined requests out of order (batches finish when they
//! finish); correlation by request id makes that invisible here.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use widen_obs::Tracer;

use crate::error::ServeError;
use crate::protocol::{
    decode_response_ext, encode_request, encode_request_traced, FrameReader, Request, Response,
    SpanSummary, TraceContext, WireError,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode.
    Wire(WireError),
    /// The server answered with an error response.
    Server(ServeError),
    /// The server answered with the wrong response shape or id.
    Mismatch(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Mismatch(what) => write!(f, "response mismatch: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a serving instance. One request is in flight
/// at a time; responses are matched back by request id.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
    /// When set, every request carries a trace context (version-2 frames)
    /// and the server's span summary lands in `last_trace`.
    tracing: bool,
    /// Deterministic trace-id source; disabled so it records nothing
    /// client-side, it only mints ids.
    tracer: Tracer,
    last_trace: Option<SpanSummary>,
    /// Responses received while waiting for a different id (pipelining).
    stash: Vec<(Response, Option<SpanSummary>)>,
    /// Node counts of in-flight pipelined requests, for shape validation
    /// at `recv_*` time.
    expected_nodes: HashMap<u64, usize>,
}

impl Client {
    /// Connects to a server, e.g. `Client::connect(handle.local_addr())`.
    ///
    /// # Errors
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Far beyond any server deadline; guards against a hung peer.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            next_id: 1,
            tracing: false,
            tracer: Tracer::disabled(0x5EED_7ACE),
            last_trace: None,
            stash: Vec::new(),
            expected_nodes: HashMap::new(),
        })
    }

    /// Toggles request tracing. While on, each call sends a version-2
    /// frame with a fresh trace id and [`Client::last_trace`] holds the
    /// span summary the server returned for the most recent call.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if !on {
            self.last_trace = None;
        }
    }

    /// The server-side span summary of the most recent traced call, if
    /// the server returned one.
    pub fn last_trace(&self) -> Option<&SpanSummary> {
        self.last_trace.as_ref()
    }

    /// Requests embeddings for `nodes` sampled with `seed`; returns one
    /// `d`-dimensional row per node, in request order.
    ///
    /// # Errors
    /// Returns a [`ClientError`] on transport failure or a server-reported
    /// error (overload, deadline, bad request, shutdown).
    pub fn embed(&mut self, nodes: &[u32], seed: u64) -> Result<Vec<Vec<f32>>, ClientError> {
        let id = self.send_embed(nodes, seed)?;
        self.recv_embed(id)
    }

    /// Puts an embed request in flight without waiting for its answer;
    /// returns the request id for [`Client::recv_embed`]. Any number of
    /// requests may be pipelined on the connection, and they may be
    /// received in any order.
    ///
    /// # Errors
    /// Returns a [`ClientError`] on transport failure.
    pub fn send_embed(&mut self, nodes: &[u32], seed: u64) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send_request(&Request::Embed {
            id,
            seed,
            nodes: nodes.to_vec(),
        })?;
        self.expected_nodes.insert(id, nodes.len());
        Ok(id)
    }

    /// Collects the answer to a pipelined [`Client::send_embed`]. Order
    /// is free: responses for other in-flight ids encountered on the way
    /// are stashed and handed to their own `recv_*` calls later.
    ///
    /// # Errors
    /// Returns a [`ClientError`] on transport failure, a server-reported
    /// error, or an `id` that was never sent (or already received).
    pub fn recv_embed(&mut self, id: u64) -> Result<Vec<Vec<f32>>, ClientError> {
        let Some(node_count) = self.expected_nodes.remove(&id) else {
            return Err(ClientError::Mismatch("unknown request id"));
        };
        match self.recv_for(id)? {
            Response::Embeddings { dim, values, .. } => {
                let dim = dim as usize;
                if dim == 0 || values.len() != node_count * dim {
                    if node_count == 0 && values.is_empty() {
                        return Ok(Vec::new());
                    }
                    return Err(ClientError::Mismatch("embedding shape"));
                }
                Ok(values.chunks_exact(dim).map(<[f32]>::to_vec).collect())
            }
            Response::Error { code, message, .. } => {
                Err(ClientError::Server(ServeError::from_code(code, message)))
            }
            _ => Err(ClientError::Mismatch("expected embeddings")),
        }
    }

    /// Requests ensemble-classified labels for `nodes`; equals the serial
    /// `predict_ensemble(graph, nodes, seed, rounds)` answer.
    ///
    /// # Errors
    /// Returns a [`ClientError`] on transport failure or a server-reported
    /// error.
    pub fn classify(
        &mut self,
        nodes: &[u32],
        seed: u64,
        rounds: u32,
    ) -> Result<Vec<u32>, ClientError> {
        let id = self.send_classify(nodes, seed, rounds)?;
        self.recv_classify(id)
    }

    /// Puts a classify request in flight without waiting for its answer;
    /// returns the request id for [`Client::recv_classify`].
    ///
    /// # Errors
    /// Returns a [`ClientError`] on transport failure.
    pub fn send_classify(
        &mut self,
        nodes: &[u32],
        seed: u64,
        rounds: u32,
    ) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send_request(&Request::Classify {
            id,
            seed,
            rounds,
            nodes: nodes.to_vec(),
        })?;
        self.expected_nodes.insert(id, nodes.len());
        Ok(id)
    }

    /// Collects the answer to a pipelined [`Client::send_classify`], in
    /// any order relative to other in-flight requests.
    ///
    /// # Errors
    /// Returns a [`ClientError`] on transport failure, a server-reported
    /// error, or an `id` that was never sent (or already received).
    pub fn recv_classify(&mut self, id: u64) -> Result<Vec<u32>, ClientError> {
        let Some(node_count) = self.expected_nodes.remove(&id) else {
            return Err(ClientError::Mismatch("unknown request id"));
        };
        match self.recv_for(id)? {
            Response::Classes { labels, .. } => {
                if labels.len() != node_count {
                    return Err(ClientError::Mismatch("label count"));
                }
                Ok(labels)
            }
            Response::Error { code, message, .. } => {
                Err(ClientError::Server(ServeError::from_code(code, message)))
            }
            _ => Err(ClientError::Mismatch("expected classes")),
        }
    }

    /// Streams one never-seen node into the served graph: node type,
    /// feature row, optional label, and typed edges `(peer, edge_type)`
    /// to existing nodes. Returns the assigned node id and the node's
    /// embedding sampled with `seed` — bit-identical to what
    /// [`Client::embed`] for that id would return afterwards under the
    /// same seed and model generation, in one round trip.
    ///
    /// # Errors
    /// Returns a [`ClientError`] on transport failure or a server-reported
    /// error (invalid node/edge type, feature-dimension mismatch,
    /// out-of-range peer, shutdown).
    pub fn ingest(
        &mut self,
        node_type: u16,
        features: &[f32],
        label: Option<u16>,
        edges: &[(u32, u16)],
        seed: u64,
    ) -> Result<(u32, Vec<f32>), ClientError> {
        let id = self.fresh_id();
        self.send_request(&Request::Ingest {
            id,
            seed,
            node_type,
            label,
            features: features.to_vec(),
            edges: edges.to_vec(),
        })?;
        match self.recv_for(id)? {
            Response::Ingested {
                id: rid,
                node,
                dim,
                values,
            } => {
                if rid != id {
                    return Err(ClientError::Mismatch("response id"));
                }
                if dim == 0 || values.len() != dim as usize {
                    return Err(ClientError::Mismatch("embedding shape"));
                }
                Ok((node, values))
            }
            Response::Error { code, message, .. } => {
                Err(ClientError::Server(ServeError::from_code(code, message)))
            }
            _ => Err(ClientError::Mismatch("expected ingested")),
        }
    }

    /// Requests the server's live metrics snapshot: a JSON object with a
    /// `server` section (request/job/batch/cache counters, batch-size and
    /// wait histograms) and a `process` section (ambient sampling and
    /// packaging instruments).
    ///
    /// # Errors
    /// Returns a [`ClientError`] on transport failure or a server-reported
    /// error.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let id = self.fresh_id();
        self.send_request(&Request::Stats { id })?;
        match self.recv_for(id)? {
            Response::Stats { id: rid, text } => {
                if rid != id {
                    return Err(ClientError::Mismatch("response id"));
                }
                Ok(text)
            }
            Response::Error { code, message, .. } => {
                Err(ClientError::Server(ServeError::from_code(code, message)))
            }
            _ => Err(ClientError::Mismatch("expected stats")),
        }
    }

    /// Requests the merged process-wide telemetry view: counters and
    /// gauges summed across the server's own registry and the ambient
    /// global one, plus a per-histogram SLO report (`p50`/`p90`/`p99`/
    /// `max`/`count`) under the `slo` key — the percentile-grade
    /// counterpart to [`Client::stats`].
    ///
    /// # Errors
    /// Returns a [`ClientError`] on transport failure or a server-reported
    /// error.
    pub fn telemetry(&mut self) -> Result<String, ClientError> {
        let id = self.fresh_id();
        self.send_request(&Request::Telemetry { id })?;
        match self.recv_for(id)? {
            Response::Telemetry { id: rid, text } => {
                if rid != id {
                    return Err(ClientError::Mismatch("response id"));
                }
                Ok(text)
            }
            Response::Error { code, message, .. } => {
                Err(ClientError::Server(ServeError::from_code(code, message)))
            }
            _ => Err(ClientError::Mismatch("expected telemetry")),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Encodes and writes one request frame (traced when tracing is on).
    fn send_request(&mut self, request: &Request) -> Result<(), ClientError> {
        let wire = if self.tracing {
            let trace = TraceContext {
                trace_id: self.tracer.start_trace().0,
            };
            encode_request_traced(request, &trace)
        } else {
            encode_request(request)
        };
        self.stream.write_all(&wire)?;
        Ok(())
    }

    /// Blocks until the response for `id` arrives. Responses for other
    /// in-flight ids are stashed for their own `recv_*` calls. An error
    /// frame with id 0 — the server could not attribute it to a request
    /// (malformed frame, admission rejection before any request was
    /// read) — is delivered to whoever is currently waiting.
    fn recv_for(&mut self, id: u64) -> Result<Response, ClientError> {
        if let Some(i) = self
            .stash
            .iter()
            .position(|(r, _)| r.id() == id || (r.id() == 0 && matches!(r, Response::Error { .. })))
        {
            let (response, summary) = self.stash.remove(i);
            if self.tracing {
                self.last_trace = summary;
            }
            return Ok(response);
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(body) = self.reader.next_frame().map_err(ClientError::Wire)? {
                let (response, summary) = decode_response_ext(&body).map_err(ClientError::Wire)?;
                let rid = response.id();
                if rid == id || (rid == 0 && matches!(response, Response::Error { .. })) {
                    if self.tracing {
                        self.last_trace = summary;
                    }
                    return Ok(response);
                }
                self.stash.push((response, summary));
                continue;
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                )));
            }
            self.reader.push(&buf[..n]);
        }
    }
}
