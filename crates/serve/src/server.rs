//! Server lifecycle: bind, spawn, observe, shut down.
//!
//! Threading model (all std threads, no async runtime, no thread per
//! connection):
//!
//! ```text
//!                  ┌────────────────────────────────────────────┐
//!   clients ──TCP──▶ reactor (one thread, poll(2) over all fds) │
//!                  └───────┬──────────────────────────▲─────────┘
//!                    jobs  │                          │ completions
//!                          ▼                          │ (+ self-pipe wake)
//!                   bounded MPMC queue ──▶ batcher workers (×W)
//!                          │                          ▲
//!                          └── ingest ──▶ ingest executor (×1)
//! ```
//!
//! The reactor (see [`crate::reactor`]) owns every client socket in
//! nonblocking mode; batcher workers and the ingest executor send results
//! back over one completion channel and ring the reactor's self-pipe.
//! Thread count is `2 + workers` regardless of how many connections are
//! open.
//!
//! Shutdown is graceful by construction and never depends on connecting
//! to the server's own address: the flag is set, the self-pipe is rung,
//! the reactor answers and flushes everything pending and exits; dropping
//! its job sender lets the workers drain the queue and exit, and dropping
//! its ingest sender stops the ingest executor. An accepted request is
//! never dropped without a response.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::bounded;
use parking_lot::Mutex;
use widen_obs::{Counter, FlightRecorder, Gauge, JsonlSink, Registry as MetricsRegistry};

use widen_graph::{EdgeTypeId, NodeTypeId};

use crate::batcher::{run_worker, BatchPolicy, Completion, Job, ReplySink, WorkerStats};
use crate::cache::{EmbedCache, EmbedKey};
use crate::error::ServeError;
use crate::poll::WakePipe;
use crate::protocol::Response;
use crate::reactor::{IngestWork, Reactor};
use crate::registry::ModelRegistry;

/// Tunables for one server instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Batcher worker threads pulling from the shared queue.
    pub workers: usize,
    /// Maximum jobs coalesced into one fused forward pass. `1` disables
    /// micro-batching (the baseline the throughput bench compares against).
    pub max_batch: usize,
    /// How long the first job in a window waits for company, in µs.
    pub max_wait_us: u64,
    /// Bounded job-queue depth; a request that does not fit in the
    /// remaining budget is shed with `Overloaded` before any of its jobs
    /// enqueue (backpressure) instead of buffering without limit.
    pub queue_depth: usize,
    /// Per-request deadline in ms; jobs not answered in time get
    /// `DeadlineExceeded`.
    pub request_timeout_ms: u64,
    /// LRU embedding-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Requests slower than this many milliseconds are counted in
    /// `serve_slow_requests_total` and logged with their span tree.
    /// `0` disables slow-request logging entirely.
    pub slow_request_ms: u64,
    /// Where slow-request records go as JSONL; `None` falls back to
    /// stderr. Ignored while `slow_request_ms` is 0.
    pub slow_log_path: Option<PathBuf>,
    /// Admission-control cap on concurrently open connections.
    /// Connections beyond the cap are accepted, answered with a typed
    /// `Overloaded` error frame, and closed — never silently parked in
    /// the kernel backlog. Counted in `serve_conns_rejected_total`.
    pub max_connections: usize,
    /// Flight-recorder window: how many recent request timelines the
    /// always-on ring buffer keeps for anomaly post-mortems. `0` disables
    /// the recorder entirely (no ring writes, no dumps).
    pub flight_recorder_capacity: usize,
    /// Where anomaly post-mortem dumps (JSONL, one request timeline per
    /// line) are written; `None` keeps the latest dump in memory only
    /// (readable via [`ServerHandle::postmortem_dump`]). Each new anomaly
    /// overwrites the previous dump — the latest window wins.
    pub postmortem_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 32,
            max_wait_us: 500,
            queue_depth: 1024,
            request_timeout_ms: 5_000,
            cache_capacity: 4096,
            slow_request_ms: 0,
            slow_log_path: None,
            max_connections: 8192,
            flight_recorder_capacity: 256,
            postmortem_path: None,
        }
    }
}

/// Counter snapshot returned by [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests fully answered (success or error).
    pub requests: u64,
    /// Per-node jobs processed by the batchers.
    pub jobs: u64,
    /// Fused batches executed; `jobs / batches` is the achieved mean
    /// batch size.
    pub batches: u64,
    /// Jobs answered with `DeadlineExceeded` instead of being computed.
    pub deadline_drops: u64,
    /// Jobs answered by an identical job's computation in the same window
    /// (singleflight dedup).
    pub dedup_hits: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
    /// Nodes streamed into the served graph over the wire (`Ingest` ops
    /// that succeeded).
    pub ingests: u64,
    /// Requests shed with `Overloaded` before any of their jobs enqueued
    /// (queue-depth load shedding).
    pub shed: u64,
    /// Connections rejected by the `max_connections` admission cap.
    pub conns_rejected: u64,
    /// `accept(2)` failures (e.g. `EMFILE` under fd exhaustion) — each
    /// one also starts a short accept backoff instead of a busy spin.
    pub accept_errors: u64,
}

pub(crate) struct Shared {
    pub(crate) shutdown: AtomicBool,
    /// This server's own metric registry (isolated per instance, see the
    /// scoping convention in `widen-obs`); the `Stats` wire op renders it.
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// `serve_requests_total` — requests fully answered, success or error.
    pub(crate) requests: Arc<Counter>,
    /// `serve_slow_requests_total` — requests slower than the configured
    /// threshold.
    pub(crate) slow_requests: Arc<Counter>,
    /// `serve_ingests_total` — successful `Ingest` ops (graph mutations).
    pub(crate) ingests: Arc<Counter>,
    /// `serve_shed_total` — requests shed before enqueue.
    pub(crate) shed: Arc<Counter>,
    /// `serve_accept_errors_total` — accept failures (each starts a
    /// backoff window rather than a spin).
    pub(crate) accept_errors: Arc<Counter>,
    /// `serve_conns_rejected_total` — admission-cap rejections.
    pub(crate) conns_rejected: Arc<Counter>,
    /// `serve_connections_total` — connections ever accepted (including
    /// rejected ones).
    pub(crate) connections_total: Arc<Counter>,
    /// `serve_open_connections` — currently registered connections.
    pub(crate) open_connections: Arc<Gauge>,
    pub(crate) cache: Arc<EmbedCache>,
    pub(crate) worker_stats: Arc<WorkerStats>,
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) request_timeout: Duration,
    /// Slow-request threshold; `None` disables detection and logging.
    pub(crate) slow_threshold: Option<Duration>,
    /// Slow-request JSONL sink; `None` with a threshold set means stderr.
    pub(crate) slow_sink: Option<JsonlSink>,
    /// Always-on ring of recent request timelines.
    pub(crate) recorder: FlightRecorder,
    /// `serve_postmortem_dumps_total` — anomaly-triggered dumps taken.
    pub(crate) postmortem_dumps: Arc<Counter>,
    /// Latest anomaly dump (JSONL); each new anomaly overwrites it.
    pub(crate) postmortem: Mutex<Option<String>>,
    /// Optional on-disk destination for anomaly dumps.
    pub(crate) postmortem_path: Option<PathBuf>,
}

impl Shared {
    /// Freezes the flight-recorder window as a JSONL post-mortem: stores
    /// it for [`ServerHandle::postmortem_dump`], writes it to the
    /// configured path (best-effort), and counts the dump. Called on
    /// anomaly triggers — shed, admission reject, deadline drop, slow
    /// request. No-op while the recorder is disabled.
    pub(crate) fn anomaly_dump(&self) {
        if self.recorder.is_disabled() {
            return;
        }
        let dump = self.recorder.dump_jsonl();
        if dump.is_empty() {
            return;
        }
        if let Some(path) = &self.postmortem_path {
            let _ = std::fs::write(path, &dump);
        }
        *self.postmortem.lock() = Some(dump);
        self.postmortem_dumps.inc();
    }
}

/// The in-process inference server.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// reactor, the ingest executor, and `config.workers` batcher
    /// threads, and returns a handle for stats and shutdown.
    ///
    /// # Errors
    /// Propagates socket-binding failures (and self-pipe creation under
    /// fd exhaustion).
    pub fn bind(
        registry: ModelRegistry,
        config: ServeConfig,
        addr: &str,
    ) -> std::io::Result<ServerHandle> {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be ≥ 1");
        assert!(config.max_connections >= 1, "max_connections must be ≥ 1");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let wake = Arc::new(WakePipe::new()?);

        let registry = Arc::new(registry);
        let metrics = Arc::new(MetricsRegistry::new());
        let slow_threshold =
            (config.slow_request_ms > 0).then(|| Duration::from_millis(config.slow_request_ms));
        let slow_sink = match (&slow_threshold, &config.slow_log_path) {
            (Some(_), Some(path)) => Some(JsonlSink::create(path)?),
            _ => None,
        };
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            requests: metrics.counter("serve_requests_total"),
            slow_requests: metrics.counter("serve_slow_requests_total"),
            ingests: metrics.counter("serve_ingests_total"),
            shed: metrics.counter("serve_shed_total"),
            accept_errors: metrics.counter("serve_accept_errors_total"),
            conns_rejected: metrics.counter("serve_conns_rejected_total"),
            connections_total: metrics.counter("serve_connections_total"),
            open_connections: metrics.gauge("serve_open_connections"),
            cache: Arc::new(EmbedCache::with_metrics(config.cache_capacity, &metrics)),
            worker_stats: Arc::new(WorkerStats::new(&metrics)),
            registry: registry.clone(),
            request_timeout: Duration::from_millis(config.request_timeout_ms),
            slow_threshold,
            slow_sink,
            recorder: FlightRecorder::new(config.flight_recorder_capacity),
            postmortem_dumps: metrics.counter("serve_postmortem_dumps_total"),
            postmortem: Mutex::new(None),
            postmortem_path: config.postmortem_path.clone(),
            metrics,
        });

        let (job_tx, job_rx) = bounded::<Job>(config.queue_depth);
        let policy = BatchPolicy {
            max_batch: config.max_batch,
            max_wait: Duration::from_micros(config.max_wait_us),
        };
        let workers: Vec<JoinHandle<()>> = (0..config.workers)
            .map(|i| {
                let registry = registry.clone();
                let cache = shared.cache.clone();
                let rx = job_rx.clone();
                let stats = shared.worker_stats.clone();
                std::thread::Builder::new()
                    .name(format!("widen-batcher-{i}"))
                    .spawn(move || run_worker(registry, cache, rx, policy, stats))
                    .expect("spawn worker")
            })
            .collect();
        drop(job_rx);

        // One completion channel back from every producer (batcher
        // workers, ingest executor); each delivery rings the self-pipe so
        // the reactor leaves poll and writes the response.
        let (completion_tx, completion_rx) = mpsc::channel::<Completion>();
        let sink = ReplySink {
            tx: completion_tx,
            wake: Some(wake.clone()),
        };

        // Ingest mutates the graph under the registry write lock, which
        // can wait up to the request timeout — far too long for the event
        // loop. A dedicated executor runs those and completes them like
        // any other job.
        let (ingest_tx, ingest_rx) = mpsc::channel::<IngestWork>();
        let ingest_worker = {
            let shared = shared.clone();
            let sink = sink.clone();
            std::thread::Builder::new()
                .name("widen-ingest".into())
                .spawn(move || run_ingest_executor(ingest_rx, shared, sink))
                .expect("spawn ingest executor")
        };

        let reactor = {
            let shared = shared.clone();
            let wake = wake.clone();
            let max_connections = config.max_connections;
            let queue_depth = config.queue_depth;
            std::thread::Builder::new()
                .name("widen-reactor".into())
                .spawn(move || {
                    Reactor::new(
                        listener,
                        shared,
                        job_tx,
                        ingest_tx,
                        completion_rx,
                        sink,
                        wake,
                        max_connections,
                        queue_depth,
                    )
                    .run()
                })
                .expect("spawn reactor")
        };

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            reactor: Some(reactor),
            ingest_worker: Some(ingest_worker),
            workers,
            wake,
        })
    }
}

/// Running-server handle: address, live stats, graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    ingest_worker: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    wake: Arc<WakePipe>,
}

impl ServerHandle {
    /// The bound address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the throughput, cache, and admission counters.
    pub fn stats(&self) -> ServeStats {
        let cache = self.shared.cache.stats();
        ServeStats {
            requests: self.shared.requests.get(),
            jobs: self.shared.worker_stats.jobs.get(),
            batches: self.shared.worker_stats.batches.get(),
            deadline_drops: self.shared.worker_stats.deadline_drops.get(),
            dedup_hits: self.shared.worker_stats.dedup_hits.get(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            ingests: self.shared.ingests.get(),
            shed: self.shared.shed.get(),
            conns_rejected: self.shared.conns_rejected.get(),
            accept_errors: self.shared.accept_errors.get(),
        }
    }

    /// Replaces the serving weights with `checkpoint` without restarting:
    /// validates and swaps the model generation in the registry, then
    /// flushes the embedding cache so no row keyed by the old digest can
    /// ever be served again. In-flight batches finish on the generation
    /// they started under. Returns the new checkpoint digest.
    ///
    /// # Errors
    /// Returns the [`CheckpointError`](widen_tensor::CheckpointError) and
    /// keeps serving the old weights (cache untouched) when the checkpoint
    /// is corrupt or mismatched.
    pub fn hot_swap(&self, checkpoint: &[u8]) -> Result<u64, widen_tensor::CheckpointError> {
        let digest = self.shared.registry.hot_swap(checkpoint)?;
        self.shared.cache.clear();
        Ok(digest)
    }

    /// The server's metric registry — every `serve_*` instrument,
    /// including the histograms the scalar [`ServeStats`] cannot carry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// The latest anomaly post-mortem: the flight-recorder window frozen
    /// as JSONL (one request timeline per line) when a shed, admission
    /// reject, deadline drop, or slow request last fired. `None` until
    /// the first anomaly, or while the recorder is disabled.
    pub fn postmortem_dump(&self) -> Option<String> {
        self.shared.postmortem.lock().clone()
    }

    /// Stops accepting, drains every in-flight request to a response, and
    /// joins all threads. Idempotent via [`Drop`].
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        let Some(reactor) = self.reactor.take() else {
            return;
        };
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
        // Ring the self-pipe: pops the reactor out of poll without
        // opening any socket — immune to fd exhaustion, unlike the old
        // connect-to-self wake.
        self.wake.wake();
        let _ = reactor.join();
        // The reactor dropped its job sender on exit; workers drain
        // whatever is queued, answer it, then see the disconnect and
        // exit. Same for the ingest executor via its work channel.
        if let Some(ingest) = self.ingest_worker.take() {
            let _ = ingest.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Runs ingest requests off the reactor thread: graph mutation + embed
/// inside one registry critical section, bounded by the request deadline,
/// completed back to the reactor like any batcher job.
fn run_ingest_executor(rx: mpsc::Receiver<IngestWork>, shared: Arc<Shared>, sink: ReplySink) {
    while let Ok(work) = rx.recv() {
        let response = execute_ingest(&shared, &work);
        sink.send(Completion::Direct {
            req: work.req,
            response,
        });
    }
}

fn execute_ingest(shared: &Shared, work: &IngestWork) -> Response {
    let budget = work.deadline.saturating_duration_since(Instant::now());
    if budget.is_zero() {
        return Response::from_error(work.id, &ServeError::DeadlineExceeded);
    }
    let typed: Vec<(u32, EdgeTypeId)> = work
        .edges
        .iter()
        .map(|&(peer, et)| (peer, EdgeTypeId(et)))
        .collect();
    let attempt = shared.registry.try_ingest_for(
        NodeTypeId(work.node_type),
        work.features.clone(),
        work.label,
        &typed,
        work.seed,
        budget,
    );
    match attempt {
        None => Response::from_error(work.id, &ServeError::DeadlineExceeded),
        Some(Ok(outcome)) => {
            // The mutation bumped the registry's graph version, which is
            // part of every cache key: all rows computed on the
            // pre-mutation graph — anywhere in the walk radius of the
            // touched peers, not just the peers themselves — are already
            // unreachable. Flush them eagerly so dead rows don't occupy
            // LRU capacity until eviction.
            shared.cache.clear();
            // Warm the cache: a follow-up Embed for (node, seed) under
            // the same generation is answered without a forward pass. The
            // row is keyed by the graph version it was computed under, so
            // even if another ingest lands between our write guard's
            // release and this insert, the row can never answer a lookup
            // under the newer version — it is merely a dead entry, not a
            // stale serve.
            shared.cache.insert(
                EmbedKey {
                    node: outcome.node,
                    checkpoint_hash: outcome.checkpoint_hash,
                    graph_version: outcome.graph_version,
                    seed: work.seed,
                },
                outcome.embedding.clone(),
            );
            shared.ingests.inc();
            Response::Ingested {
                id: work.id,
                node: outcome.node,
                dim: outcome.embedding.len() as u32,
                values: outcome.embedding,
            }
        }
        Some(Err(err)) => Response::from_error(work.id, &ServeError::BadRequest(err.to_string())),
    }
}
