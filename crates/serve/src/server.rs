//! The TCP front-end: accepts connections, decodes request frames, fans
//! each request out into per-node jobs on the shared micro-batch queue,
//! and writes back one response frame per request.
//!
//! Threading model (all std threads, no async runtime):
//!
//! ```text
//! acceptor ──spawns──▶ one handler per connection ──jobs──▶ bounded MPMC queue
//!                                                              │
//!                      handler ◀─── per-request mpsc ─── batcher workers (×W)
//! ```
//!
//! Shutdown is graceful by construction: the acceptor stops first, handlers
//! finish the request they are on and answer anything still buffered, and
//! the workers keep draining the job queue until it is empty before
//! exiting — an accepted request is never dropped without a response.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use widen_obs::{Counter, Event, JsonlSink, Registry as MetricsRegistry};

use widen_graph::{EdgeTypeId, NodeTypeId};

use crate::batcher::{run_worker, BatchPolicy, Job, JobKind, JobOutput, RequestTrace, WorkerStats};
use crate::cache::{EmbedCache, EmbedKey};
use crate::error::ServeError;
use crate::protocol::{
    decode_request_ext, encode_response, encode_response_traced, FrameReader, Request, Response,
    SpanSummary, WireSpan,
};
use crate::registry::ModelRegistry;

/// Tunables for one server instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Batcher worker threads pulling from the shared queue.
    pub workers: usize,
    /// Maximum jobs coalesced into one fused forward pass. `1` disables
    /// micro-batching (the baseline the throughput bench compares against).
    pub max_batch: usize,
    /// How long the first job in a window waits for company, in µs.
    pub max_wait_us: u64,
    /// Bounded job-queue depth; a full queue answers `Overloaded`
    /// (backpressure) instead of buffering without limit.
    pub queue_depth: usize,
    /// Per-request deadline in ms; jobs not answered in time get
    /// `DeadlineExceeded`.
    pub request_timeout_ms: u64,
    /// LRU embedding-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// Requests slower than this many milliseconds are counted in
    /// `serve_slow_requests_total` and logged with their span tree.
    /// `0` disables slow-request logging entirely.
    pub slow_request_ms: u64,
    /// Where slow-request records go as JSONL; `None` falls back to
    /// stderr. Ignored while `slow_request_ms` is 0.
    pub slow_log_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 32,
            max_wait_us: 500,
            queue_depth: 1024,
            request_timeout_ms: 5_000,
            cache_capacity: 4096,
            slow_request_ms: 0,
            slow_log_path: None,
        }
    }
}

/// Counter snapshot returned by [`ServerHandle::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests fully answered (success or error).
    pub requests: u64,
    /// Per-node jobs processed by the batchers.
    pub jobs: u64,
    /// Fused batches executed; `jobs / batches` is the achieved mean
    /// batch size.
    pub batches: u64,
    /// Jobs answered with `DeadlineExceeded` instead of being computed.
    pub deadline_drops: u64,
    /// Jobs answered by an identical job's computation in the same window
    /// (singleflight dedup).
    pub dedup_hits: u64,
    /// Embedding-cache hits.
    pub cache_hits: u64,
    /// Embedding-cache misses.
    pub cache_misses: u64,
    /// Nodes streamed into the served graph over the wire (`Ingest` ops
    /// that succeeded).
    pub ingests: u64,
}

struct Shared {
    shutdown: AtomicBool,
    /// This server's own metric registry (isolated per instance, see the
    /// scoping convention in `widen-obs`); the `Stats` wire op renders it.
    metrics: Arc<MetricsRegistry>,
    /// `serve_requests_total` — requests fully answered, success or error.
    requests: Arc<Counter>,
    /// `serve_slow_requests_total` — requests slower than the configured
    /// threshold.
    slow_requests: Arc<Counter>,
    /// `serve_ingests_total` — successful `Ingest` ops (graph mutations).
    ingests: Arc<Counter>,
    conns: Mutex<Vec<JoinHandle<()>>>,
    cache: Arc<EmbedCache>,
    worker_stats: Arc<WorkerStats>,
    registry: Arc<ModelRegistry>,
    request_timeout: Duration,
    /// Slow-request threshold; `None` disables detection and logging.
    slow_threshold: Option<Duration>,
    /// Slow-request JSONL sink; `None` with a threshold set means stderr.
    slow_sink: Option<JsonlSink>,
}

/// The in-process inference server.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// acceptor and `config.workers` batcher threads, and returns a handle
    /// for stats and shutdown.
    ///
    /// # Errors
    /// Propagates socket-binding failures.
    pub fn bind(
        registry: ModelRegistry,
        config: ServeConfig,
        addr: &str,
    ) -> std::io::Result<ServerHandle> {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be ≥ 1");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;

        let registry = Arc::new(registry);
        let metrics = Arc::new(MetricsRegistry::new());
        let slow_threshold =
            (config.slow_request_ms > 0).then(|| Duration::from_millis(config.slow_request_ms));
        let slow_sink = match (&slow_threshold, &config.slow_log_path) {
            (Some(_), Some(path)) => Some(JsonlSink::create(path)?),
            _ => None,
        };
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            requests: metrics.counter("serve_requests_total"),
            slow_requests: metrics.counter("serve_slow_requests_total"),
            ingests: metrics.counter("serve_ingests_total"),
            conns: Mutex::new(Vec::new()),
            cache: Arc::new(EmbedCache::with_metrics(config.cache_capacity, &metrics)),
            worker_stats: Arc::new(WorkerStats::new(&metrics)),
            registry: registry.clone(),
            request_timeout: Duration::from_millis(config.request_timeout_ms),
            slow_threshold,
            slow_sink,
            metrics,
        });

        let (job_tx, job_rx) = bounded::<Job>(config.queue_depth);
        let policy = BatchPolicy {
            max_batch: config.max_batch,
            max_wait: Duration::from_micros(config.max_wait_us),
        };
        let workers: Vec<JoinHandle<()>> = (0..config.workers)
            .map(|i| {
                let registry = registry.clone();
                let cache = shared.cache.clone();
                let rx = job_rx.clone();
                let stats = shared.worker_stats.clone();
                std::thread::Builder::new()
                    .name(format!("widen-batcher-{i}"))
                    .spawn(move || run_worker(registry, cache, rx, policy, stats))
                    .expect("spawn worker")
            })
            .collect();
        drop(job_rx);

        let acceptor = {
            let shared = shared.clone();
            let job_tx = job_tx.clone();
            std::thread::Builder::new()
                .name("widen-acceptor".into())
                .spawn(move || accept_loop(listener, shared, job_tx))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
            job_tx: Some(job_tx),
        })
    }
}

/// Running-server handle: address, live stats, graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Option<Sender<Job>>,
}

impl ServerHandle {
    /// The bound address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the throughput and cache counters.
    pub fn stats(&self) -> ServeStats {
        let cache = self.shared.cache.stats();
        ServeStats {
            requests: self.shared.requests.get(),
            jobs: self.shared.worker_stats.jobs.get(),
            batches: self.shared.worker_stats.batches.get(),
            deadline_drops: self.shared.worker_stats.deadline_drops.get(),
            dedup_hits: self.shared.worker_stats.dedup_hits.get(),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            ingests: self.shared.ingests.get(),
        }
    }

    /// Replaces the serving weights with `checkpoint` without restarting:
    /// validates and swaps the model generation in the registry, then
    /// flushes the embedding cache so no row keyed by the old digest can
    /// ever be served again. In-flight batches finish on the generation
    /// they started under. Returns the new checkpoint digest.
    ///
    /// # Errors
    /// Returns the [`CheckpointError`](widen_tensor::CheckpointError) and
    /// keeps serving the old weights (cache untouched) when the checkpoint
    /// is corrupt or mismatched.
    pub fn hot_swap(&self, checkpoint: &[u8]) -> Result<u64, widen_tensor::CheckpointError> {
        let digest = self.shared.registry.hot_swap(checkpoint)?;
        self.shared.cache.clear();
        Ok(digest)
    }

    /// The server's metric registry — every `serve_*` instrument,
    /// including the histograms the scalar [`ServeStats`] cannot carry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// Stops accepting, drains every in-flight request to a response, and
    /// joins all threads. Idempotent via [`Drop`].
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        // No new handlers can appear now; join the existing ones. They
        // finish whatever requests they have outstanding first (workers
        // are still running and draining).
        let conns: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.conns.lock());
        for conn in conns {
            let _ = conn.join();
        }
        // All handler-side senders are gone; dropping ours disconnects the
        // queue. Workers drain what is left, answer it, then exit.
        drop(self.job_tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, job_tx: Sender<Job>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let handler = {
            let shared = shared.clone();
            let job_tx = job_tx.clone();
            std::thread::Builder::new()
                .name("widen-conn".into())
                .spawn(move || handle_connection(stream, shared, job_tx))
                .expect("spawn handler")
        };
        shared.conns.lock().push(handler);
    }
}

/// Reads frames off one connection until EOF, error, or drain-complete
/// shutdown. Every fully received request is answered, shutdown or not.
fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>, job_tx: Sender<Job>) {
    let _ = stream.set_nodelay(true);
    // Short read timeout so the loop can notice the shutdown flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    let mut draining = false;
    loop {
        // Answer everything already buffered before reading more.
        loop {
            match reader.next_frame() {
                Ok(Some(body)) => {
                    if !handle_frame(&body, &mut stream, &shared, &job_tx) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing is no longer trustworthy: best-effort error
                    // reply, then drop the connection.
                    let resp = Response::from_error(0, &ServeError::BadRequest(err.to_string()));
                    let _ = stream.write_all(&encode_response(&resp));
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // client hung up
            Ok(n) => reader.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    if draining {
                        return;
                    }
                    // One more read pass to catch bytes that raced the
                    // shutdown flag, then exit on the next quiet timeout.
                    draining = true;
                }
            }
            Err(_) => return,
        }
    }
}

/// Decodes and fully answers one request frame. Returns `false` when the
/// connection should close.
///
/// A version-2 frame with a trace context opens a request span
/// (`serve.server.request`); the batcher records queue-wait / coalesce /
/// cache-lookup / forward-batch child spans into it, and the assembled
/// summary rides back on the response. The response-write interval can
/// only be measured *after* the summary is encoded, so it appears in the
/// slow-request log but never on the wire.
fn handle_frame(
    body: &[u8],
    stream: &mut TcpStream,
    shared: &Shared,
    job_tx: &Sender<Job>,
) -> bool {
    let started = Instant::now();
    let (request, trace_ctx) = match decode_request_ext(body) {
        Ok(pair) => pair,
        Err(err) => {
            let resp = Response::from_error(0, &ServeError::BadRequest(err.to_string()));
            let _ = stream.write_all(&encode_response(&resp));
            return false;
        }
    };
    let trace = trace_ctx.map(|ctx| Arc::new(RequestTrace::new(ctx.trace_id)));
    let response = answer_request(&request, shared, job_tx, trace.as_ref());
    shared.requests.inc();
    let summary = trace.as_ref().map(|t| build_summary(t));
    let wire = match &summary {
        Some(s) => encode_response_traced(&response, s),
        None => encode_response(&response),
    };
    let write_start = Instant::now();
    let ok = stream.write_all(&wire).is_ok();
    log_slow_request(shared, &request, started, write_start, summary.as_ref());
    ok
}

/// Assembles the wire summary: the request root span at index 0, then
/// every child the batcher recorded (all parented to index 0).
fn build_summary(trace: &RequestTrace) -> SpanSummary {
    let children = trace.spans.lock().clone();
    let mut spans = Vec::with_capacity(1 + children.len());
    spans.push(WireSpan {
        name: "serve.server.request".into(),
        parent: WireSpan::ROOT,
        start_ns: 0,
        dur_ns: trace.start.elapsed().as_nanos() as u64,
    });
    spans.extend(children);
    SpanSummary {
        trace_id: trace.trace_id,
        spans,
    }
}

/// Counts and logs the request if it exceeded the slow threshold. The log
/// record carries the span tree (when the request was traced) plus the
/// response-write interval measured here.
fn log_slow_request(
    shared: &Shared,
    request: &Request,
    started: Instant,
    write_start: Instant,
    summary: Option<&SpanSummary>,
) {
    let Some(threshold) = shared.slow_threshold else {
        return;
    };
    let total = started.elapsed();
    if total < threshold {
        return;
    }
    shared.slow_requests.inc();
    let mut tree = String::new();
    if let Some(summary) = summary {
        for span in &summary.spans {
            if !tree.is_empty() {
                tree.push_str(" | ");
            }
            if span.parent != WireSpan::ROOT {
                tree.push_str("> ");
            }
            tree.push_str(&format!(
                "{} @{:.3}ms {:.3}ms",
                span.name,
                span.start_ns as f64 / 1e6,
                span.dur_ns as f64 / 1e6
            ));
        }
        tree.push_str(&format!(
            " | > serve.server.write_response @{:.3}ms {:.3}ms",
            write_start.saturating_duration_since(started).as_nanos() as f64 / 1e6,
            write_start.elapsed().as_nanos() as f64 / 1e6
        ));
    }
    let kind = match request {
        Request::Embed { .. } => "embed",
        Request::Classify { .. } => "classify",
        Request::Stats { .. } => "stats",
        Request::Ingest { .. } => "ingest",
    };
    let mut event = Event::new("slow_request")
        .u64("request_id", request.id())
        .str("kind", kind)
        .u64("nodes", request.nodes().len() as u64)
        .f64("total_ms", total.as_nanos() as f64 / 1e6)
        .u64("threshold_ms", threshold.as_millis() as u64);
    if let Some(summary) = summary {
        event = event
            .str("trace", &format!("{:016x}", summary.trace_id))
            .str("spans", &tree);
    }
    match &shared.slow_sink {
        Some(sink) => {
            let _ = sink.emit(&event);
        }
        None => eprintln!("[widen-serve] {}", event.to_json()),
    }
}

fn answer_request(
    request: &Request,
    shared: &Shared,
    job_tx: &Sender<Job>,
    trace: Option<&Arc<RequestTrace>>,
) -> Response {
    let id = request.id();
    if let Request::Stats { .. } = request {
        return Response::Stats {
            id,
            text: stats_text(shared),
        };
    }
    // Ingest mutates the graph and embeds inside one registry critical
    // section, so it is answered on the handler thread rather than queued:
    // batching cannot help a write, and the embedding must come from the
    // exact graph version the mutation produced. The write lock is taken
    // with the same deadline the batcher enforces on queued jobs — an
    // ingest stuck behind long read-guarded batches answers
    // `DeadlineExceeded` instead of hanging the connection.
    if let Request::Ingest {
        seed,
        node_type,
        label,
        features,
        edges,
        ..
    } = request
    {
        let typed: Vec<(u32, EdgeTypeId)> = edges
            .iter()
            .map(|&(peer, et)| (peer, EdgeTypeId(et)))
            .collect();
        let attempt = shared.registry.try_ingest_for(
            NodeTypeId(*node_type),
            features.clone(),
            *label,
            &typed,
            *seed,
            shared.request_timeout,
        );
        return match attempt {
            None => Response::from_error(id, &ServeError::DeadlineExceeded),
            Some(Ok(outcome)) => {
                // The mutation bumped the registry's graph version, which
                // is part of every cache key: all rows computed on the
                // pre-mutation graph — anywhere in the walk radius of the
                // touched peers, not just the peers themselves — are
                // already unreachable. Flush them eagerly so dead rows
                // don't occupy LRU capacity until eviction.
                shared.cache.clear();
                // Warm the cache: a follow-up Embed for (node, seed) under
                // the same generation is answered without a forward pass.
                // The row is keyed by the graph version it was computed
                // under, so even if another ingest lands between our write
                // guard's release and this insert, the row can never
                // answer a lookup under the newer version — it is merely a
                // dead entry, not a stale serve.
                shared.cache.insert(
                    EmbedKey {
                        node: outcome.node,
                        checkpoint_hash: outcome.checkpoint_hash,
                        graph_version: outcome.graph_version,
                        seed: *seed,
                    },
                    outcome.embedding.clone(),
                );
                shared.ingests.inc();
                Response::Ingested {
                    id,
                    node: outcome.node,
                    dim: outcome.embedding.len() as u32,
                    values: outcome.embedding,
                }
            }
            Some(Err(err)) => Response::from_error(id, &ServeError::BadRequest(err.to_string())),
        };
    }
    if let Some(&bad) = request
        .nodes()
        .iter()
        .find(|&&n| !shared.registry.contains_node(n))
    {
        return Response::from_error(
            id,
            &ServeError::BadRequest(format!("node {bad} outside the served graph")),
        );
    }
    let d = shared.registry.read().model().config.d as u32;
    if request.nodes().is_empty() {
        return match request {
            Request::Embed { .. } => Response::Embeddings {
                id,
                dim: d,
                values: Vec::new(),
            },
            Request::Classify { .. } => Response::Classes {
                id,
                labels: Vec::new(),
            },
            Request::Stats { .. } | Request::Ingest { .. } => {
                unreachable!("answered above")
            }
        };
    }

    let (kind, seed) = match request {
        Request::Embed { seed, .. } => (JobKind::Embed, *seed),
        Request::Classify { seed, rounds, .. } => (JobKind::Classify { rounds: *rounds }, *seed),
        Request::Stats { .. } | Request::Ingest { .. } => unreachable!("answered above"),
    };
    let deadline = Instant::now() + shared.request_timeout;
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut enqueued = 0usize;
    let mut enqueue_failure: Option<ServeError> = None;
    for (slot, &node) in request.nodes().iter().enumerate() {
        let job = Job {
            kind,
            node,
            seed,
            deadline,
            slot,
            reply: reply_tx.clone(),
            enqueued_at: Instant::now(),
            trace: trace.cloned(),
        };
        match job_tx.try_send(job) {
            Ok(()) => enqueued += 1,
            Err(TrySendError::Full(_)) => {
                enqueue_failure = Some(ServeError::Overloaded);
                break;
            }
            Err(TrySendError::Disconnected(_)) => {
                enqueue_failure = Some(ServeError::ShuttingDown);
                break;
            }
        }
    }
    drop(reply_tx);

    // Collect every enqueued job's answer — even when part of the request
    // failed to enqueue, the queued jobs still compute and must be reaped.
    let mut results: Vec<Option<Result<JobOutput, ServeError>>> = vec![None; request.nodes().len()];
    let reap_deadline = deadline + Duration::from_millis(250);
    for _ in 0..enqueued {
        let remaining = reap_deadline.saturating_duration_since(Instant::now());
        match reply_rx.recv_timeout(remaining) {
            Ok((slot, result)) => results[slot] = Some(result),
            Err(_) => {
                return Response::from_error(id, &ServeError::DeadlineExceeded);
            }
        }
    }
    if let Some(err) = enqueue_failure {
        return Response::from_error(id, &err);
    }
    if let Some(err) = results
        .iter()
        .filter_map(|r| r.as_ref().and_then(|r| r.as_ref().err()))
        .next()
    {
        return Response::from_error(id, err);
    }

    match request {
        Request::Embed { .. } => {
            let mut values = Vec::with_capacity(request.nodes().len() * d as usize);
            for result in results {
                match result {
                    Some(Ok(JobOutput::Embedding(row))) => values.extend_from_slice(&row),
                    _ => {
                        return Response::from_error(
                            id,
                            &ServeError::Internal("job answered with wrong output kind".into()),
                        )
                    }
                }
            }
            Response::Embeddings { id, dim: d, values }
        }
        Request::Classify { .. } => {
            let mut labels = Vec::with_capacity(request.nodes().len());
            for result in results {
                match result {
                    Some(Ok(JobOutput::Label(label))) => labels.push(label),
                    _ => {
                        return Response::from_error(
                            id,
                            &ServeError::Internal("job answered with wrong output kind".into()),
                        )
                    }
                }
            }
            Response::Classes { id, labels }
        }
        Request::Stats { .. } | Request::Ingest { .. } => unreachable!("answered above"),
    }
}

/// Renders the `Stats` payload: the server's own registry plus the
/// process-global ambient registry (sampling, packaging) as one JSON
/// object — `{"server":{...},"process":{...}}`.
fn stats_text(shared: &Shared) -> String {
    format!(
        "{{\"server\":{},\"process\":{}}}",
        shared.metrics.snapshot().to_json(),
        MetricsRegistry::global().snapshot().to_json()
    )
}
