//! The event-driven serve front end: one thread, one `poll(2)` set, every
//! client socket nonblocking.
//!
//! The reactor owns the listener and all client connections. Each
//! connection is a [`FrameReader`] state machine plus a write buffer; the
//! reactor reads whatever bytes are available, decodes complete frames
//! into requests, fans their per-node jobs onto the shared batcher queue,
//! and — when the last job of a request completes — assembles the
//! response and flushes it back. Requests are correlated by a
//! reactor-internal sequence number (`req`), *not* connection identity or
//! arrival order, so a client may pipeline many requests on one socket
//! and batches may complete out of order: every response still reaches
//! the right request slot, and the wire id echoes the client's choice.
//!
//! Cost per idle connection is one `pollfd` entry — no thread, no stack.
//! That is what lets the soak test hold thousands of open connections
//! with a thread count that does not move.
//!
//! ## Admission control and load shedding
//!
//! Two gates, both answered with a typed `Overloaded` error frame rather
//! than a silent drop or an accept backlog:
//!
//! * **Connection cap** ([`ServeConfig::max_connections`]): connections
//!   beyond the cap are accepted, told `Overloaded` (wire id 0 — no
//!   request was read), and closed. Accept-then-reject keeps the kernel
//!   backlog from silently queueing peers that would never be served.
//!   Counted in `serve_conns_rejected_total`.
//! * **Queue shedding**: before enqueueing *any* of a request's jobs the
//!   reactor checks that the whole request fits in the remaining queue
//!   budget; if not it sheds the request immediately — no partial
//!   enqueue, no waiting for the deadline to expire. Counted in
//!   `serve_shed_total`.
//!
//! Accept errors (`EMFILE` under fd exhaustion being the canonical one)
//! neither panic nor busy-spin: the listener's poll interest is simply
//! suppressed for a short backoff window ([`ACCEPT_ERROR_BACKOFF`]) while
//! established connections keep being served, and each error bumps
//! `serve_accept_errors_total`.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crossbeam_channel::{Sender, TrySendError};
use rustc_hash::FxHashMap;
use widen_obs::{buckets, Event, FlightRecord, Gauge, Histogram, TelemetrySnapshot};

use crate::batcher::{Completion, Job, JobKind, JobOutput, JobStamps, ReplySink, RequestTrace};
use crate::error::ServeError;
use crate::poll::{poll_fds, pollfd, WakePipe, POLL_ERR, POLL_HUP, POLL_IN, POLL_NVAL, POLL_OUT};
use crate::protocol::{
    decode_request_ext, encode_response, encode_response_traced, FrameReader, Request, Response,
    SpanSummary, WireSpan,
};
use crate::server::Shared;

/// How long accept stays suppressed after an accept error. Long enough to
/// stop an `EMFILE` spin from pegging a core, short enough that recovery
/// (fds released) is picked up promptly.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(50);

/// Grace period past a request's deadline before the reactor reaps it
/// unanswered (matches the old handler-side reap margin): the batcher
/// normally answers expired jobs with `DeadlineExceeded` itself; the reap
/// is the backstop for jobs that never come back at all.
const REAP_GRACE: Duration = Duration::from_millis(250);

/// Per-connection read budget per poll round. A connection with an
/// endless stream of buffered bytes gets at most this much before the
/// reactor moves on to its neighbours — fairness against firehoses, and
/// the reason a slow-loris peer dribbling partial frames cannot starve
/// anyone (it just parks bytes in its own `FrameReader`).
const READ_CHUNK: usize = 16 * 1024;
const READ_CHUNKS_PER_ROUND: usize = 4;

/// An ingest handed off to the dedicated ingest executor thread. Graph
/// mutation can block on the registry write lock for up to the request
/// timeout, which must never stall the event loop — so the reactor ships
/// the work out and the result comes back as a [`Completion::Direct`].
pub(crate) struct IngestWork {
    /// Reactor-internal request key.
    pub req: u64,
    /// Client-chosen wire id.
    pub id: u64,
    /// Sampling seed for the returned embedding.
    pub seed: u64,
    /// The new node's type id.
    pub node_type: u16,
    /// Optional class label.
    pub label: Option<u16>,
    /// Dense feature row.
    pub features: Vec<f32>,
    /// Typed edges to existing nodes.
    pub edges: Vec<(u32, u16)>,
    /// Absolute deadline — bounds the write-lock wait.
    pub deadline: Instant,
}

/// One open client connection: frame assembly in, buffered bytes out.
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// Encoded-but-unflushed response bytes.
    out: Vec<u8>,
    /// Flushed prefix of `out`.
    out_pos: usize,
    /// Requests from this connection still pending.
    inflight: usize,
    /// Stop reading and close once `out` flushes (protocol errors).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            out_pos: 0,
            inflight: 0,
            close_after_flush: false,
        }
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// What a pending request assembles into once its last completion lands.
enum PendingKind {
    /// Concatenate embedding rows in slot order.
    Embed,
    /// Collect labels in slot order.
    Classify,
    /// The completion carries a ready-made response (ingest).
    Direct,
}

/// One decoded request waiting on its completions.
struct Pending {
    /// Owning connection key.
    conn: u64,
    kind: PendingKind,
    /// Client-chosen wire id, echoed in the response.
    id: u64,
    /// Per-slot job outputs (empty for `Direct`).
    results: Vec<Option<JobOutput>>,
    /// Completions still outstanding.
    remaining: usize,
    /// First error seen (job failure or partial-enqueue failure); wins
    /// over any successful slots.
    failure: Option<ServeError>,
    /// Backstop reap time (`deadline + REAP_GRACE`).
    reap_at: Instant,
    /// When the frame was decoded — slow-request accounting origin.
    started: Instant,
    trace: Option<Arc<RequestTrace>>,
    /// Request kind label for the slow log.
    kind_name: &'static str,
    /// Node count for the slow log.
    nodes: u64,
    /// Embedding dimensionality (embed responses).
    dim: u32,
    /// Lifecycle stamps from the batcher (last completion wins); inline
    /// answers and direct completions never carry any.
    stamps: Option<JobStamps>,
}

/// What a poll-set entry refers back to.
enum Token {
    Wake,
    Listener,
    Conn(u64),
}

/// The reactor's own instrument handles, resolved once at construction so
/// the hot path never takes the registry lock.
struct ReactorMetrics {
    /// `serve_reactor_tick_us` — event-loop work per tick, poll wait
    /// excluded (drain + dispatch + reap).
    tick_us: Arc<Histogram>,
    /// `serve_reactor_ready_fds` — descriptors ready per non-empty poll
    /// return.
    ready_fds: Arc<Histogram>,
    /// `serve_reactor_dispatch_us` — time spent dispatching one tick's
    /// ready events.
    dispatch_us: Arc<Histogram>,
    /// `serve_request_decode_us` — frame-complete → request decoded.
    decode_us: Arc<Histogram>,
    /// `serve_request_latency_us` — frame decoded → response buffered and
    /// flush attempted, for every request (inline or batched).
    request_latency_us: Arc<Histogram>,
    /// `serve_write_flush_us` — one non-empty socket flush pass.
    write_flush_us: Arc<Histogram>,
    /// `serve_inflight_requests` — decoded requests awaiting completions.
    inflight: Arc<Gauge>,
    /// `serve_write_buffer_hwm_bytes` — largest unflushed write buffer
    /// ever observed on any connection (monotone high-water mark).
    write_buffer_hwm: Arc<Gauge>,
}

impl ReactorMetrics {
    fn new(registry: &widen_obs::Registry) -> Self {
        Self {
            tick_us: registry.histogram("serve_reactor_tick_us", buckets::LATENCY_US_FINE),
            ready_fds: registry.histogram("serve_reactor_ready_fds", buckets::SMALL_COUNTS),
            dispatch_us: registry.histogram("serve_reactor_dispatch_us", buckets::LATENCY_US_FINE),
            decode_us: registry.histogram("serve_request_decode_us", buckets::LATENCY_US_FINE),
            request_latency_us: registry
                .histogram("serve_request_latency_us", buckets::LATENCY_US_FINE),
            write_flush_us: registry.histogram("serve_write_flush_us", buckets::LATENCY_US_FINE),
            inflight: registry.gauge("serve_inflight_requests"),
            write_buffer_hwm: registry.gauge("serve_write_buffer_hwm_bytes"),
        }
    }
}

pub(crate) struct Reactor {
    listener: TcpListener,
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
    ingest_tx: mpsc::Sender<IngestWork>,
    completion_rx: mpsc::Receiver<Completion>,
    /// Cloned into every job so workers can deliver-and-wake.
    sink: ReplySink,
    wake: Arc<WakePipe>,
    max_connections: usize,
    queue_depth: usize,
    conns: FxHashMap<u64, Conn>,
    pending: FxHashMap<u64, Pending>,
    next_conn: u64,
    next_req: u64,
    /// Listener interest suppressed until here after an accept error.
    accept_backoff_until: Option<Instant>,
    /// Set once the shutdown flag is observed; no more reads or accepts.
    draining: bool,
    /// Hard exit time once draining (covers unflushable peers).
    drain_deadline: Option<Instant>,
    /// Pre-resolved instrument handles (see [`ReactorMetrics`]).
    m: ReactorMetrics,
    /// Local shadow of the write-buffer high-water gauge, so the hot path
    /// compares against a plain integer instead of an atomic.
    write_hwm: usize,
}

impl Reactor {
    /// Builds the reactor. `sink` must be the sending half of
    /// `completion_rx`, with `wake` attached.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        job_tx: Sender<Job>,
        ingest_tx: mpsc::Sender<IngestWork>,
        completion_rx: mpsc::Receiver<Completion>,
        sink: ReplySink,
        wake: Arc<WakePipe>,
        max_connections: usize,
        queue_depth: usize,
    ) -> Self {
        let m = ReactorMetrics::new(&shared.metrics);
        Self {
            listener,
            shared,
            job_tx,
            ingest_tx,
            completion_rx,
            sink,
            wake,
            max_connections,
            queue_depth,
            conns: FxHashMap::default(),
            pending: FxHashMap::default(),
            next_conn: 1,
            next_req: 1,
            accept_backoff_until: None,
            draining: false,
            drain_deadline: None,
            m,
            write_hwm: 0,
        }
    }

    /// Runs the event loop until shutdown completes: flag observed, every
    /// pending request answered, every answer flushed (or the drain
    /// deadline passed).
    pub fn run(mut self) {
        loop {
            let tick_start = Instant::now();
            self.drain_completions();
            self.observe_shutdown();
            if self.draining && self.pending.is_empty() && self.all_flushed() {
                return;
            }
            if let Some(deadline) = self.drain_deadline {
                if Instant::now() >= deadline {
                    return;
                }
            }

            let (mut fds, tokens) = self.build_poll_set();
            let timeout = self.poll_timeout();
            // The blocking poll wait is excluded from the tick histogram:
            // the metric is event-loop *work* per tick, not idle time.
            let pre_poll_us = tick_start.elapsed().as_micros() as u64;
            let n = match poll_fds(&mut fds, timeout) {
                Ok(n) => n,
                Err(_) => {
                    // A broken poll set would spin; rebuild after a beat.
                    std::thread::sleep(Duration::from_millis(10));
                    0
                }
            };
            let dispatch_start = Instant::now();
            if n > 0 {
                self.m.ready_fds.observe(n as f64);
                let mut dead: Vec<u64> = Vec::new();
                for (fd, token) in fds.iter().zip(&tokens) {
                    if fd.revents == 0 {
                        continue;
                    }
                    match token {
                        Token::Wake => self.wake.drain(),
                        Token::Listener => self.accept_ready(),
                        Token::Conn(key) => {
                            if fd.revents & POLL_NVAL != 0 {
                                dead.push(*key);
                                continue;
                            }
                            if !self.handle_conn_event(*key, fd.revents) {
                                dead.push(*key);
                            }
                        }
                    }
                }
                for key in dead {
                    self.close_conn(key);
                }
            }
            self.reap_expired();
            let dispatch_us = dispatch_start.elapsed().as_micros() as u64;
            self.m.dispatch_us.observe(dispatch_us as f64);
            self.m.tick_us.observe((pre_poll_us + dispatch_us) as f64);
        }
    }

    fn all_flushed(&self) -> bool {
        self.conns.values().all(|c| !c.has_output())
    }

    /// Notices the shutdown flag: stop accepting, take one last read pass
    /// over every connection (bytes that raced the flag still get
    /// answered), then drain what is pending.
    fn observe_shutdown(&mut self) {
        if self.draining || !self.shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        self.draining = true;
        self.drain_deadline =
            Some(Instant::now() + self.shared.request_timeout + Duration::from_secs(1));
        let keys: Vec<u64> = self.conns.keys().copied().collect();
        let mut dead = Vec::new();
        for key in keys {
            if !self.read_conn(key) {
                dead.push(key);
            }
        }
        for key in dead {
            self.close_conn(key);
        }
    }

    fn build_poll_set(&self) -> (Vec<pollfd>, Vec<Token>) {
        let mut fds = Vec::with_capacity(2 + self.conns.len());
        let mut tokens = Vec::with_capacity(2 + self.conns.len());
        fds.push(pollfd {
            fd: self.wake.read_fd(),
            events: POLL_IN,
            revents: 0,
        });
        tokens.push(Token::Wake);
        if !self.draining && !self.in_accept_backoff() {
            fds.push(pollfd {
                fd: self.listener.as_raw_fd(),
                events: POLL_IN,
                revents: 0,
            });
            tokens.push(Token::Listener);
        }
        for (&key, conn) in &self.conns {
            // A connection with no interest bits is still registered:
            // POLLHUP / POLLERR are reported regardless of the mask, so
            // hangups on write-only or draining connections surface.
            let mut events = 0i16;
            if !self.draining && !conn.close_after_flush {
                events |= POLL_IN;
            }
            if conn.has_output() {
                events |= POLL_OUT;
            }
            fds.push(pollfd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            tokens.push(Token::Conn(key));
        }
        (fds, tokens)
    }

    fn in_accept_backoff(&self) -> bool {
        self.accept_backoff_until
            .is_some_and(|until| Instant::now() < until)
    }

    /// Milliseconds until the nearest timed obligation: a pending reap,
    /// the accept backoff expiring, or the drain deadline. `-1` (block
    /// forever) when none exist — every other transition arrives as an fd
    /// event or a wake.
    fn poll_timeout(&self) -> i32 {
        let mut next: Option<Instant> = None;
        let mut consider = |t: Instant| match next {
            Some(cur) if cur <= t => {}
            _ => next = Some(t),
        };
        for p in self.pending.values() {
            consider(p.reap_at);
        }
        if let Some(until) = self.accept_backoff_until {
            if Instant::now() < until {
                consider(until);
            }
        }
        if let Some(deadline) = self.drain_deadline {
            consider(deadline);
        }
        match next {
            None => -1,
            Some(t) => {
                let ms = t.saturating_duration_since(Instant::now()).as_millis();
                // +1 rounds up so we never wake a hair early and re-loop.
                (ms.min(i32::MAX as u128 - 1) as i32) + 1
            }
        }
    }

    /// Accepts until the backlog is empty. Over-cap connections are told
    /// `Overloaded` and closed; accept errors start the backoff window.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.shared.connections_total.inc();
                    if self.conns.len() >= self.max_connections {
                        self.shared.conns_rejected.inc();
                        self.reject_connection(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let key = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(key, Conn::new(stream));
                    self.shared.open_connections.set(self.conns.len() as i64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // EMFILE and friends: count it, suppress accept for a
                    // beat, keep serving everyone already connected. The
                    // old front end spun on `continue` here at 100% CPU.
                    self.shared.accept_errors.inc();
                    self.accept_backoff_until = Some(Instant::now() + ACCEPT_ERROR_BACKOFF);
                    return;
                }
            }
        }
    }

    /// Best-effort `Overloaded` frame to a rejected connection. The frame
    /// is a few dozen bytes — far below any socket send buffer — so the
    /// blocking write cannot wedge the reactor.
    fn reject_connection(&self, mut stream: TcpStream) {
        let resp = Response::from_error(0, &ServeError::Overloaded);
        let _ = stream.write_all(&encode_response(&resp));
        if !self.shared.recorder.is_disabled() {
            let mut rec = FlightRecord::new(0, "conn");
            rec.outcome = "rejected";
            self.shared.recorder.record(rec);
            self.shared.anomaly_dump();
        }
    }

    /// Dispatches one connection's poll events. Returns `false` when the
    /// connection is finished and should be closed.
    fn handle_conn_event(&mut self, key: u64, revents: i16) -> bool {
        if revents & POLL_OUT != 0 && !self.flush_conn(key) {
            return false;
        }
        if revents & (POLL_IN | POLL_HUP | POLL_ERR) != 0 {
            let may_read = self
                .conns
                .get(&key)
                .is_some_and(|c| !self.draining && !c.close_after_flush);
            if may_read {
                if !self.read_conn(key) {
                    return false;
                }
            } else if revents & (POLL_HUP | POLL_ERR) != 0 {
                // Not reading anymore and the peer is gone: if nothing is
                // left to flush, close now instead of polling a corpse.
                if let Some(conn) = self.conns.get(&key) {
                    if !conn.has_output() {
                        return false;
                    }
                }
            }
        }
        // A close-after-flush connection with an empty buffer is done.
        if let Some(conn) = self.conns.get(&key) {
            if conn.close_after_flush && !conn.has_output() && conn.inflight == 0 {
                return false;
            }
        }
        true
    }

    /// Reads up to the per-round budget and processes every complete
    /// frame. Returns `false` on EOF or a fatal transport error.
    fn read_conn(&mut self, key: u64) -> bool {
        let mut buf = [0u8; READ_CHUNK];
        for _ in 0..READ_CHUNKS_PER_ROUND {
            let Some(conn) = self.conns.get_mut(&key) else {
                return true;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.reader.push(&buf[..n]);
                    if !self.process_frames(key) {
                        return false;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        true
    }

    /// Decodes and dispatches every complete frame buffered on `key`.
    fn process_frames(&mut self, key: u64) -> bool {
        loop {
            let frame = {
                let Some(conn) = self.conns.get_mut(&key) else {
                    return true;
                };
                if conn.close_after_flush {
                    return true;
                }
                match conn.reader.next_frame() {
                    Ok(Some(body)) => body,
                    Ok(None) => return true,
                    Err(err) => {
                        // Framing is untrustworthy: answer once, flush,
                        // close.
                        let resp =
                            Response::from_error(0, &ServeError::BadRequest(err.to_string()));
                        let wire = encode_response(&resp);
                        conn.out.extend_from_slice(&wire);
                        conn.close_after_flush = true;
                        return self.flush_conn(key);
                    }
                }
            };
            if !self.handle_request_frame(key, &frame) {
                return false;
            }
        }
    }

    /// Decodes one request body and either answers it inline (stats,
    /// validation errors, shed) or registers a [`Pending`] and dispatches
    /// its work. Returns `false` when the connection should close.
    fn handle_request_frame(&mut self, key: u64, body: &[u8]) -> bool {
        let started = Instant::now();
        let (request, trace_ctx) = match decode_request_ext(body) {
            Ok(pair) => pair,
            Err(err) => {
                let resp = Response::from_error(0, &ServeError::BadRequest(err.to_string()));
                let wire = encode_response(&resp);
                if let Some(conn) = self.conns.get_mut(&key) {
                    conn.out.extend_from_slice(&wire);
                    conn.close_after_flush = true;
                }
                return self.flush_conn(key);
            }
        };
        let trace = trace_ctx.map(|ctx| Arc::new(RequestTrace::new(ctx.trace_id)));
        self.m
            .decode_us
            .observe(started.elapsed().as_micros() as f64);
        let id = request.id();
        let deadline = started + self.shared.request_timeout;

        match request {
            // Stats and Telemetry are answered inline: a metrics snapshot
            // allocates a string but never blocks.
            Request::Stats { .. } => {
                let response = Response::Stats {
                    id,
                    text: stats_text(&self.shared),
                };
                self.respond(key, &response, started, trace.as_ref(), "stats", 0)
            }
            Request::Telemetry { .. } => {
                let response = Response::Telemetry {
                    id,
                    text: telemetry_text(&self.shared),
                };
                self.respond(key, &response, started, trace.as_ref(), "telemetry", 0)
            }
            Request::Ingest {
                seed,
                node_type,
                label,
                features,
                edges,
                ..
            } => {
                let req = self.fresh_req();
                let work = IngestWork {
                    req,
                    id,
                    seed,
                    node_type,
                    label,
                    features,
                    edges,
                    deadline,
                };
                if self.ingest_tx.send(work).is_err() {
                    let resp = Response::from_error(id, &ServeError::ShuttingDown);
                    return self.respond(key, &resp, started, trace.as_ref(), "ingest", 0);
                }
                self.pending.insert(
                    req,
                    Pending {
                        conn: key,
                        kind: PendingKind::Direct,
                        id,
                        results: Vec::new(),
                        remaining: 1,
                        failure: None,
                        reap_at: deadline + REAP_GRACE,
                        started,
                        trace,
                        kind_name: "ingest",
                        nodes: 0,
                        dim: 0,
                        stamps: None,
                    },
                );
                self.m.inflight.set(self.pending.len() as i64);
                if let Some(conn) = self.conns.get_mut(&key) {
                    conn.inflight += 1;
                }
                true
            }
            Request::Embed { seed, nodes, .. } => self.dispatch_jobs(
                key,
                id,
                JobKind::Embed,
                seed,
                nodes,
                deadline,
                started,
                trace,
                "embed",
            ),
            Request::Classify {
                seed,
                rounds,
                nodes,
                ..
            } => self.dispatch_jobs(
                key,
                id,
                JobKind::Classify { rounds },
                seed,
                nodes,
                deadline,
                started,
                trace,
                "classify",
            ),
        }
    }

    /// Validates an embed/classify request, then either answers it inline
    /// (bad node, empty, shed) or enqueues its per-node jobs and registers
    /// the pending entry. Returns `false` when the connection should
    /// close.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_jobs(
        &mut self,
        key: u64,
        id: u64,
        kind: JobKind,
        seed: u64,
        nodes: Vec<u32>,
        deadline: Instant,
        started: Instant,
        trace: Option<Arc<RequestTrace>>,
        kind_name: &'static str,
    ) -> bool {
        if let Some(&bad) = nodes
            .iter()
            .find(|&&n| !self.shared.registry.contains_node(n))
        {
            let resp = Response::from_error(
                id,
                &ServeError::BadRequest(format!("node {bad} outside the served graph")),
            );
            return self.respond(
                key,
                &resp,
                started,
                trace.as_ref(),
                kind_name,
                nodes.len() as u64,
            );
        }
        let d = self.shared.registry.read().model().config.d as u32;
        if nodes.is_empty() {
            let resp = match kind {
                JobKind::Embed => Response::Embeddings {
                    id,
                    dim: d,
                    values: Vec::new(),
                },
                JobKind::Classify { .. } => Response::Classes {
                    id,
                    labels: Vec::new(),
                },
            };
            return self.respond(key, &resp, started, trace.as_ref(), kind_name, 0);
        }

        // Shed before enqueue: either the whole request fits in the queue
        // budget right now or none of it goes in. The reactor is the only
        // enqueuer, so a passed check cannot race into a partial enqueue.
        if self.job_tx.len() + nodes.len() > self.queue_depth {
            self.shared.shed.inc();
            let resp = Response::from_error(id, &ServeError::Overloaded);
            return self.respond(
                key,
                &resp,
                started,
                trace.as_ref(),
                kind_name,
                nodes.len() as u64,
            );
        }

        let req = self.fresh_req();
        let mut enqueued = 0usize;
        let mut failure: Option<ServeError> = None;
        for (slot, &node) in nodes.iter().enumerate() {
            let job = Job {
                kind,
                node,
                seed,
                deadline,
                req,
                slot,
                reply: self.sink.clone(),
                enqueued_at: Instant::now(),
                pulled_at: Instant::now(),
                trace: trace.clone(),
            };
            match self.job_tx.try_send(job) {
                Ok(()) => enqueued += 1,
                Err(TrySendError::Full(_)) => {
                    self.shared.shed.inc();
                    failure = Some(ServeError::Overloaded);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => {
                    failure = Some(ServeError::ShuttingDown);
                    break;
                }
            }
        }
        if enqueued == 0 {
            let err = failure.unwrap_or(ServeError::Internal("no jobs enqueued".into()));
            let resp = Response::from_error(id, &err);
            return self.respond(
                key,
                &resp,
                started,
                trace.as_ref(),
                kind_name,
                nodes.len() as u64,
            );
        }
        self.pending.insert(
            req,
            Pending {
                conn: key,
                kind: match kind {
                    JobKind::Embed => PendingKind::Embed,
                    JobKind::Classify { .. } => PendingKind::Classify,
                },
                id,
                results: vec![None; nodes.len()],
                remaining: enqueued,
                failure,
                reap_at: deadline + REAP_GRACE,
                started,
                trace,
                kind_name,
                nodes: nodes.len() as u64,
                dim: d,
                stamps: None,
            },
        );
        self.m.inflight.set(self.pending.len() as i64);
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.inflight += 1;
        }
        true
    }

    fn fresh_req(&mut self) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        req
    }

    /// Applies every queued completion. Late completions whose request
    /// was already reaped (or whose connection died) have no pending
    /// entry and are dropped silently.
    fn drain_completions(&mut self) {
        while let Ok(completion) = self.completion_rx.try_recv() {
            match completion {
                Completion::Job {
                    req,
                    slot,
                    result,
                    stamps,
                } => {
                    let Some(p) = self.pending.get_mut(&req) else {
                        continue;
                    };
                    // Last completion wins: the request's recorded
                    // timeline is the slot that finished it.
                    p.stamps = Some(stamps);
                    match result {
                        Ok(output) => {
                            if let Some(cell) = p.results.get_mut(slot) {
                                *cell = Some(output);
                            }
                        }
                        Err(err) => {
                            if p.failure.is_none() {
                                p.failure = Some(err);
                            }
                        }
                    }
                    p.remaining = p.remaining.saturating_sub(1);
                    if p.remaining == 0 {
                        let p = self.pending.remove(&req).expect("present");
                        self.m.inflight.set(self.pending.len() as i64);
                        let response = assemble(&p);
                        self.finish_pending(p, response);
                    }
                }
                Completion::Direct { req, response } => {
                    let Some(p) = self.pending.remove(&req) else {
                        continue;
                    };
                    self.m.inflight.set(self.pending.len() as i64);
                    self.finish_pending(p, response);
                }
            }
        }
    }

    /// Writes a completed request's response onto its connection and
    /// closes the accounting: latency histogram, flight record, anomaly
    /// dump when the outcome warrants one.
    fn finish_pending(&mut self, p: Pending, response: Response) {
        let summary = p.trace.as_ref().map(|t| build_summary(t));
        self.shared.requests.inc();
        let wire = match &summary {
            Some(s) => encode_response_traced(&response, s),
            None => encode_response(&response),
        };
        let write_start = Instant::now();
        if let Some(conn) = self.conns.get_mut(&p.conn) {
            conn.out.extend_from_slice(&wire);
            conn.inflight = conn.inflight.saturating_sub(1);
            let _ = self.flush_conn(p.conn);
        }
        let total = p.started.elapsed();
        self.m.request_latency_us.observe(total.as_micros() as f64);
        self.record_request(
            p.id,
            p.kind_name,
            p.nodes,
            &response,
            p.started,
            total,
            p.stamps.as_ref(),
            write_start,
        );
        log_slow_request(
            &self.shared,
            p.kind_name,
            p.id,
            p.nodes,
            p.started,
            write_start,
            summary.as_ref(),
        );
    }

    /// Writes one request timeline into the flight recorder and fires the
    /// anomaly dump on a bad outcome (shed/overload, deadline drop) or a
    /// slow-threshold breach. Steady-state cost is one ring write.
    #[allow(clippy::too_many_arguments)]
    fn record_request(
        &self,
        id: u64,
        kind: &'static str,
        nodes: u64,
        response: &Response,
        started: Instant,
        total: Duration,
        stamps: Option<&JobStamps>,
        write_start: Instant,
    ) {
        if self.shared.recorder.is_disabled() {
            return;
        }
        let slow = self
            .shared
            .slow_threshold
            .is_some_and(|threshold| total >= threshold);
        let outcome = match outcome_of(response) {
            "ok" if slow => "slow",
            other => other,
        };
        let mut rec = FlightRecord::new(id, kind);
        rec.nodes = nodes.min(u32::MAX as u64) as u32;
        rec.outcome = outcome;
        rec.total_us = total.as_micros() as u64;
        if let Some(s) = stamps {
            let off = |t: Instant| t.saturating_duration_since(started).as_micros() as u64;
            let span = |a: Instant, b: Instant| b.saturating_duration_since(a).as_micros() as u64;
            rec.push_phase("queue_wait", off(s.enqueued), span(s.enqueued, s.pulled));
            rec.push_phase("coalesce", off(s.pulled), span(s.pulled, s.batch_start));
            rec.push_phase(
                "forward",
                off(s.forward_start),
                span(s.forward_start, s.forward_end),
            );
        }
        rec.push_phase(
            "write",
            write_start.saturating_duration_since(started).as_micros() as u64,
            write_start.elapsed().as_micros() as u64,
        );
        self.shared.recorder.record(rec);
        let anomalous = slow || matches!(outcome, "overloaded" | "deadline");
        if anomalous {
            self.shared.anomaly_dump();
        }
    }

    /// Answers one request inline (no pending entry): encode, buffer,
    /// count, flush. Returns `false` when the connection should close.
    fn respond(
        &mut self,
        key: u64,
        response: &Response,
        started: Instant,
        trace: Option<&Arc<RequestTrace>>,
        kind_name: &'static str,
        nodes: u64,
    ) -> bool {
        let summary = trace.map(|t| build_summary(t));
        self.shared.requests.inc();
        let wire = match &summary {
            Some(s) => encode_response_traced(response, s),
            None => encode_response(response),
        };
        let write_start = Instant::now();
        let alive = match self.conns.get_mut(&key) {
            Some(conn) => {
                conn.out.extend_from_slice(&wire);
                self.flush_conn(key)
            }
            None => false,
        };
        let total = started.elapsed();
        self.m.request_latency_us.observe(total.as_micros() as f64);
        self.record_request(
            response.id(),
            kind_name,
            nodes,
            response,
            started,
            total,
            None,
            write_start,
        );
        log_slow_request(
            &self.shared,
            kind_name,
            response.id(),
            nodes,
            started,
            write_start,
            summary.as_ref(),
        );
        alive
    }

    /// Writes as much buffered output as the socket will take. Returns
    /// `false` on a fatal write error (connection should close).
    fn flush_conn(&mut self, key: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&key) else {
            return false;
        };
        let backlog = conn.out.len() - conn.out_pos;
        if backlog == 0 {
            return true;
        }
        if backlog > self.write_hwm {
            self.write_hwm = backlog;
            self.m.write_buffer_hwm.set(backlog as i64);
        }
        let flush_start = Instant::now();
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if conn.out_pos == conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        }
        self.m
            .write_flush_us
            .observe(flush_start.elapsed().as_micros() as f64);
        true
    }

    /// Reaps pending requests whose backstop time passed: answers
    /// `DeadlineExceeded` and forgets the request — any completion that
    /// still arrives finds no entry and is dropped.
    fn reap_expired(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.reap_at <= now)
            .map(|(&req, _)| req)
            .collect();
        for req in expired {
            let p = self.pending.remove(&req).expect("present");
            self.m.inflight.set(self.pending.len() as i64);
            let response = Response::from_error(p.id, &ServeError::DeadlineExceeded);
            self.finish_pending(p, response);
        }
    }

    /// Removes a connection and every pending request it owns (their
    /// in-queue jobs still compute; the completions will be dropped).
    fn close_conn(&mut self, key: u64) {
        if self.conns.remove(&key).is_some() {
            self.shared.open_connections.set(self.conns.len() as i64);
        }
        let orphaned: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.conn == key)
            .map(|(&req, _)| req)
            .collect();
        for req in orphaned {
            self.pending.remove(&req);
        }
        self.m.inflight.set(self.pending.len() as i64);
    }
}

/// The flight-record outcome tag for a finished response, derived from
/// the stable [`ServeError`] code.
fn outcome_of(response: &Response) -> &'static str {
    match response {
        Response::Error { code, .. } => match *code {
            1 => "overloaded",
            2 => "deadline",
            3 => "shutdown",
            4 => "bad_request",
            _ => "error",
        },
        _ => "ok",
    }
}

/// Concatenates a finished request's slot results into its response, or
/// its recorded failure into an error.
fn assemble(p: &Pending) -> Response {
    if let Some(err) = &p.failure {
        return Response::from_error(p.id, err);
    }
    match p.kind {
        PendingKind::Embed => {
            let mut values = Vec::with_capacity(p.results.len() * p.dim as usize);
            for r in &p.results {
                match r {
                    Some(JobOutput::Embedding(row)) => values.extend_from_slice(row),
                    _ => {
                        return Response::from_error(
                            p.id,
                            &ServeError::Internal("job answered with wrong output kind".into()),
                        )
                    }
                }
            }
            Response::Embeddings {
                id: p.id,
                dim: p.dim,
                values,
            }
        }
        PendingKind::Classify => {
            let mut labels = Vec::with_capacity(p.results.len());
            for r in &p.results {
                match r {
                    Some(JobOutput::Label(label)) => labels.push(*label),
                    _ => {
                        return Response::from_error(
                            p.id,
                            &ServeError::Internal("job answered with wrong output kind".into()),
                        )
                    }
                }
            }
            Response::Classes { id: p.id, labels }
        }
        PendingKind::Direct => Response::from_error(
            p.id,
            &ServeError::Internal("direct request assembled from slots".into()),
        ),
    }
}

/// Assembles the wire summary: the request root span at index 0, then
/// every child the batcher recorded (all parented to index 0).
fn build_summary(trace: &RequestTrace) -> SpanSummary {
    let children = trace.spans.lock().clone();
    let mut spans = Vec::with_capacity(1 + children.len());
    spans.push(WireSpan {
        name: "serve.server.request".into(),
        parent: WireSpan::ROOT,
        start_ns: 0,
        dur_ns: trace.start.elapsed().as_nanos() as u64,
    });
    spans.extend(children);
    SpanSummary {
        trace_id: trace.trace_id,
        spans,
    }
}

/// Counts and logs the request if it exceeded the slow threshold. The log
/// record carries the span tree (when the request was traced) plus the
/// response-write interval measured by the caller.
pub(crate) fn log_slow_request(
    shared: &Shared,
    kind: &'static str,
    id: u64,
    nodes: u64,
    started: Instant,
    write_start: Instant,
    summary: Option<&SpanSummary>,
) {
    let Some(threshold) = shared.slow_threshold else {
        return;
    };
    let total = started.elapsed();
    if total < threshold {
        return;
    }
    shared.slow_requests.inc();
    let mut tree = String::new();
    if let Some(summary) = summary {
        for span in &summary.spans {
            if !tree.is_empty() {
                tree.push_str(" | ");
            }
            if span.parent != WireSpan::ROOT {
                tree.push_str("> ");
            }
            tree.push_str(&format!(
                "{} @{:.3}ms {:.3}ms",
                span.name,
                span.start_ns as f64 / 1e6,
                span.dur_ns as f64 / 1e6
            ));
        }
        tree.push_str(&format!(
            " | > serve.server.write_response @{:.3}ms {:.3}ms",
            write_start.saturating_duration_since(started).as_nanos() as f64 / 1e6,
            write_start.elapsed().as_nanos() as f64 / 1e6
        ));
    }
    let mut event = Event::new("slow_request")
        .u64("request_id", id)
        .str("kind", kind)
        .u64("nodes", nodes)
        .f64("total_ms", total.as_nanos() as f64 / 1e6)
        .u64("threshold_ms", threshold.as_millis() as u64);
    if let Some(summary) = summary {
        event = event
            .str("trace", &format!("{:016x}", summary.trace_id))
            .str("spans", &tree);
    }
    match &shared.slow_sink {
        Some(sink) => {
            let _ = sink.emit(&event);
        }
        None => eprintln!("[widen-serve] {}", event.to_json()),
    }
}

/// Renders the `Stats` payload: the server's own registry plus the
/// process-global ambient registry (sampling, packaging) as one JSON
/// object — `{"server":...,"process":...}`.
pub(crate) fn stats_text(shared: &Shared) -> String {
    format!(
        "{{\"server\":{},\"process\":{}}}",
        shared.metrics.snapshot().to_json(),
        widen_obs::Registry::global().snapshot().to_json()
    )
}

/// Renders the `Telemetry` payload: the server's own registry merged with
/// the process-global ambient registry into one [`TelemetrySnapshot`] —
/// counters and gauges summed, every histogram summarised as an SLO
/// report (p50/p90/p99/max).
pub(crate) fn telemetry_text(shared: &Shared) -> String {
    TelemetrySnapshot::merge(&[
        shared.metrics.snapshot(),
        widen_obs::Registry::global().snapshot(),
    ])
    .to_json()
}
