//! Service-level error taxonomy, shared by the server (which encodes the
//! codes onto the wire) and the client (which decodes them back).

/// Why a request failed. The numeric codes are part of the wire protocol
/// and must stay stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server shed load — either the request did not fit in the job
    /// queue's remaining budget (queue-depth shedding, answered before
    /// any of its jobs enqueue) or the connection itself was rejected by
    /// the `max_connections` admission cap (wire id 0, since no request
    /// was read). Retry with backoff, ideally against another replica.
    Overloaded,
    /// The request's deadline elapsed before an answer was computed.
    DeadlineExceeded,
    /// The server is draining and no longer accepts new requests.
    ShuttingDown,
    /// The request was structurally valid but semantically wrong (e.g. a
    /// node id outside the graph).
    BadRequest(String),
    /// An unexpected server-side failure.
    Internal(String),
}

impl ServeError {
    /// Stable wire code for this error.
    pub fn code(&self) -> u8 {
        match self {
            ServeError::Overloaded => 1,
            ServeError::DeadlineExceeded => 2,
            ServeError::ShuttingDown => 3,
            ServeError::BadRequest(_) => 4,
            ServeError::Internal(_) => 5,
        }
    }

    /// Reconstructs the error from its wire code and message.
    pub fn from_code(code: u8, message: String) -> Self {
        match code {
            1 => ServeError::Overloaded,
            2 => ServeError::DeadlineExceeded,
            3 => ServeError::ShuttingDown,
            4 => ServeError::BadRequest(message),
            _ => ServeError::Internal(message),
        }
    }

    /// Human-readable detail carried alongside the code.
    pub fn message(&self) -> &str {
        match self {
            ServeError::Overloaded => "request queue full",
            ServeError::DeadlineExceeded => "deadline exceeded",
            ServeError::ShuttingDown => "server shutting down",
            ServeError::BadRequest(m) | ServeError::Internal(m) => m,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "server overloaded: request queue full"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Internal(m) => write!(f, "internal server error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for err in [
            ServeError::Overloaded,
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::BadRequest("node 7 out of range".into()),
            ServeError::Internal("boom".into()),
        ] {
            let back = ServeError::from_code(err.code(), err.message().to_string());
            assert_eq!(back.code(), err.code());
        }
    }
}
