//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*:
//!
//! ```text
//! len   u32 LE            body length (excluding this prefix), ≤ MAX_FRAME_LEN
//! body:
//!   magic   "WSV1"        4 bytes
//!   version u16 LE        protocol version (1)
//!   type    u8            message discriminant
//!   id      u64 LE        request id, echoed in the response
//!   ...                   type-specific payload, see below
//! ```
//!
//! | type | message  | payload |
//! |---|---|---|
//! | 1 | Embed request    | `seed u64, count u32, count × node u32` |
//! | 2 | Classify request | `seed u64, rounds u32, count u32, count × node u32` |
//! | 3 | Embeddings       | `rows u32, cols u32, rows·cols × f32` |
//! | 4 | Classes          | `count u32, count × label u32` |
//! | 5 | Error            | `code u8, msg_len u32, msg utf-8` |
//! | 6 | Stats request    | (header only) |
//! | 7 | Stats            | `msg_len u32, JSON snapshot utf-8` |
//! | 8 | Ingest request   | `seed u64, node_type u16, label_flag u8 [, label u16], feat_count u32, feat_count × f32, edge_count u32, edge_count × (peer u32, edge_type u16)` |
//! | 9 | Ingested         | `node u32, dim u32, dim × f32` |
//! | 10 | Telemetry request | (header only) |
//! | 11 | Telemetry        | `msg_len u32, JSON telemetry utf-8` |
//!
//! `Ingest` (type 8) is the streaming-graph op: the client ships a
//! never-seen node — type, optional label, dense features and typed edges
//! to existing nodes — and receives `Ingested` (type 9) with the node's
//! assigned id plus its embedding, computed on the mutated graph in the
//! same round trip. `label_flag` is 0 (unlabelled, no label bytes follow)
//! or 1; any other value is malformed.
//!
//! Decoding is fully defensive: declared lengths are validated against the
//! remaining bytes *before* any allocation, oversized frames are rejected
//! at the length prefix, and trailing bytes inside a body are an error —
//! a malformed peer can never panic the other side.
//!
//! ## Trace-context extension (version 2)
//!
//! Plain frames carry version 1 and are bit-identical to the original
//! protocol. A peer that wants distributed tracing emits version 2: the
//! same body as version 1 followed by a trailing extension block:
//!
//! ```text
//! ext_flags u8              bit 0 = trace extension present; other bits
//!                           are reserved and rejected as malformed
//! -- request trace ext (flag bit 0) --
//! trace_id  u64 LE          client-chosen trace id
//! -- response trace ext (flag bit 0) --
//! trace_id  u64 LE          echoed trace id
//! count     u16 LE          spans (≤ MAX_SPANS_PER_SUMMARY); span 0 is
//!                           the request root
//! count × { name_len u8, name utf-8, parent u16 LE (0xFFFF = root),
//!           start_ns u64 LE, dur_ns u64 LE }
//! ```
//!
//! Version-1 peers never see version-2 frames (the server only answers in
//! kind), and both decoders here accept either version, so old and new
//! binaries interoperate on the same port.

use bytes::{BufMut, BytesMut};

use crate::error::ServeError;

/// Frame body magic.
pub const MAGIC: [u8; 4] = *b"WSV1";
/// Current protocol version.
pub const VERSION: u16 = 1;
/// Version carried by frames with a trailing trace-context extension.
pub const VERSION_TRACED: u16 = 2;
/// Upper bound on spans in one response summary.
pub const MAX_SPANS_PER_SUMMARY: usize = 1024;
/// Extension flag: trace context present.
const EXT_TRACE: u8 = 1;
/// Hard upper bound on a frame body; larger length prefixes are rejected
/// without buffering.
pub const MAX_FRAME_LEN: usize = 1 << 22;
/// Upper bound on node ids per request — keeps one request from occupying
/// a whole batch window forever.
pub const MAX_NODES_PER_REQUEST: usize = 4096;
/// Upper bound on feature scalars in one `Ingest` request.
pub const MAX_FEATURES_PER_INGEST: usize = 65536;

const TYPE_EMBED: u8 = 1;
const TYPE_CLASSIFY: u8 = 2;
const TYPE_EMBEDDINGS: u8 = 3;
const TYPE_CLASSES: u8 = 4;
const TYPE_ERROR: u8 = 5;
const TYPE_STATS: u8 = 6;
const TYPE_STATS_TEXT: u8 = 7;
const TYPE_INGEST: u8 = 8;
const TYPE_INGESTED: u8 = 9;
const TYPE_TELEMETRY: u8 = 10;
const TYPE_TELEMETRY_TEXT: u8 = 11;

/// Wire-level decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared body length.
        declared: usize,
    },
    /// The body does not start with [`MAGIC`].
    BadMagic,
    /// The body's version is not [`VERSION`].
    BadVersion(u16),
    /// Unknown message type discriminant.
    BadType(u8),
    /// The body ended before the declared content, declared counts exceed
    /// limits, or trailing bytes remain.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { declared } => {
                write!(f, "frame of {declared} bytes exceeds {MAX_FRAME_LEN}")
            }
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadType(t) => write!(f, "unknown message type {t}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Embed each node from a neighbourhood sampled with `seed`.
    Embed {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Sampling seed (determinism contract: same node + seed + weights
        /// → bit-identical embedding).
        seed: u64,
        /// Nodes to embed.
        nodes: Vec<u32>,
    },
    /// Classify each node by `rounds`-fold ensemble logits.
    Classify {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Sampling seed.
        seed: u64,
        /// Ensemble rounds (≥ 1).
        rounds: u32,
        /// Nodes to classify.
        nodes: Vec<u32>,
    },
    /// Fetch the server's live metrics snapshot.
    Stats {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Fetch the merged process-wide telemetry view (counters, gauges and
    /// per-histogram SLO reports across the server and global registries).
    Telemetry {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
    /// Ship a never-seen node (type, features, optional label, typed edges
    /// to existing nodes) and get its embedding back in one round trip.
    Ingest {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Sampling seed for the returned embedding.
        seed: u64,
        /// The new node's type id.
        node_type: u16,
        /// Optional class label.
        label: Option<u16>,
        /// Dense feature row (must match the served graph's `d₀`).
        features: Vec<f32>,
        /// Typed edges `(existing peer, edge type)` to wire the node up.
        edges: Vec<(u32, u16)>,
    },
}

impl Request {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Embed { id, .. }
            | Request::Classify { id, .. }
            | Request::Stats { id }
            | Request::Telemetry { id }
            | Request::Ingest { id, .. } => *id,
        }
    }

    /// The nodes the request touches (empty for `Stats` and `Telemetry`;
    /// `Ingest` peers are validated by the graph mutation itself, not
    /// here).
    pub fn nodes(&self) -> &[u32] {
        match self {
            Request::Embed { nodes, .. } | Request::Classify { nodes, .. } => nodes,
            Request::Stats { .. } | Request::Telemetry { .. } | Request::Ingest { .. } => &[],
        }
    }
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One embedding row per requested node, in request order.
    Embeddings {
        /// Echoed request id.
        id: u64,
        /// Embedding dimensionality.
        dim: u32,
        /// Row-major `rows × dim` values.
        values: Vec<f32>,
    },
    /// One class label per requested node, in request order.
    Classes {
        /// Echoed request id.
        id: u64,
        /// Predicted labels.
        labels: Vec<u32>,
    },
    /// The request failed.
    Error {
        /// Echoed request id (0 when the id could not be decoded).
        id: u64,
        /// Stable [`ServeError`] code.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Live metrics snapshot, as the registry's JSON rendering.
    Stats {
        /// Echoed request id.
        id: u64,
        /// JSON text (see `widen_obs::Snapshot::to_json`).
        text: String,
    },
    /// Merged telemetry view with per-histogram SLO reports.
    Telemetry {
        /// Echoed request id.
        id: u64,
        /// JSON text (see `widen_obs::TelemetrySnapshot::to_json`).
        text: String,
    },
    /// Acknowledges an `Ingest`: the assigned node id plus the new node's
    /// embedding on the mutated graph.
    Ingested {
        /// Echoed request id.
        id: u64,
        /// The node id the server assigned.
        node: u32,
        /// Embedding dimensionality.
        dim: u32,
        /// The embedding row.
        values: Vec<f32>,
    },
}

impl Response {
    /// The echoed request id — the correlation key that lets a pipelined
    /// client match responses to in-flight requests regardless of
    /// completion order. `0` on errors whose request id never decoded.
    pub fn id(&self) -> u64 {
        match self {
            Response::Embeddings { id, .. }
            | Response::Classes { id, .. }
            | Response::Error { id, .. }
            | Response::Stats { id, .. }
            | Response::Telemetry { id, .. }
            | Response::Ingested { id, .. } => *id,
        }
    }

    /// Builds an error response from a [`ServeError`].
    pub fn from_error(id: u64, err: &ServeError) -> Self {
        Response::Error {
            id,
            code: err.code(),
            message: err.message().to_string(),
        }
    }
}

/// Client-chosen trace context attached to a version-2 request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id the server's spans will be filed under.
    pub trace_id: u64,
}

/// One server-side span, relative to the summary it travels in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpan {
    /// Span name (`layer.component.op`), ≤ 255 bytes on the wire.
    pub name: String,
    /// Index of the parent span within the summary; `u16::MAX` for roots.
    pub parent: u16,
    /// Start offset in nanoseconds since the request span opened.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl WireSpan {
    /// Sentinel parent index marking a root span.
    pub const ROOT: u16 = u16::MAX;
}

/// Server-side span tree attached to a version-2 response. Span 0 is the
/// request root (`serve.server.request`); children reference parents by
/// index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Echoed trace id from the request's [`TraceContext`].
    pub trace_id: u64,
    /// Spans, root first.
    pub spans: Vec<WireSpan>,
}

fn frame(body: BytesMut) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(4 + body.len());
    out.put_u32_le(body.len() as u32);
    out.put_slice(&body);
    out.freeze().to_vec()
}

fn body_header(version: u16, msg_type: u8, id: u64, payload_hint: usize) -> BytesMut {
    let mut b = BytesMut::with_capacity(15 + payload_hint);
    b.put_slice(&MAGIC);
    b.put_u16_le(version);
    b.put_slice(&[msg_type]);
    b.put_u64_le(id);
    b
}

fn request_body(req: &Request, version: u16) -> BytesMut {
    match req {
        Request::Embed { id, seed, nodes } => {
            let mut b = body_header(version, TYPE_EMBED, *id, 12 + nodes.len() * 4);
            b.put_u64_le(*seed);
            b.put_u32_le(nodes.len() as u32);
            for &n in nodes {
                b.put_u32_le(n);
            }
            b
        }
        Request::Classify {
            id,
            seed,
            rounds,
            nodes,
        } => {
            let mut b = body_header(version, TYPE_CLASSIFY, *id, 16 + nodes.len() * 4);
            b.put_u64_le(*seed);
            b.put_u32_le(*rounds);
            b.put_u32_le(nodes.len() as u32);
            for &n in nodes {
                b.put_u32_le(n);
            }
            b
        }
        Request::Stats { id } => body_header(version, TYPE_STATS, *id, 0),
        Request::Telemetry { id } => body_header(version, TYPE_TELEMETRY, *id, 0),
        Request::Ingest {
            id,
            seed,
            node_type,
            label,
            features,
            edges,
        } => {
            let hint = 8 + 3 + 2 + 4 + features.len() * 4 + 4 + edges.len() * 6;
            let mut b = body_header(version, TYPE_INGEST, *id, hint);
            b.put_u64_le(*seed);
            b.put_u16_le(*node_type);
            match label {
                Some(l) => {
                    b.put_slice(&[1]);
                    b.put_u16_le(*l);
                }
                None => b.put_slice(&[0]),
            }
            b.put_u32_le(features.len() as u32);
            for &f in features {
                b.put_f32_le(f);
            }
            b.put_u32_le(edges.len() as u32);
            for &(peer, t) in edges {
                b.put_u32_le(peer);
                b.put_u16_le(t);
            }
            b
        }
    }
}

/// Encodes a request into a complete frame (length prefix included).
/// Bit-identical to the pre-extension protocol (version 1).
pub fn encode_request(req: &Request) -> Vec<u8> {
    frame(request_body(req, VERSION))
}

/// Encodes a version-2 request frame carrying a trace context. Servers
/// that understand the extension answer with a span summary; the response
/// is otherwise identical to the plain one.
pub fn encode_request_traced(req: &Request, trace: &TraceContext) -> Vec<u8> {
    let mut b = request_body(req, VERSION_TRACED);
    b.put_slice(&[EXT_TRACE]);
    b.put_u64_le(trace.trace_id);
    frame(b)
}

/// Encodes a response into a complete frame (length prefix included).
/// Bit-identical to the pre-extension protocol (version 1).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    frame(response_body(resp, VERSION))
}

/// Encodes a version-2 response frame with the server's span summary
/// appended. Spans beyond [`MAX_SPANS_PER_SUMMARY`] are dropped, names
/// are truncated to 255 bytes at a char boundary, and if the extension
/// would push the body over [`MAX_FRAME_LEN`] the whole summary is
/// dropped and a plain version-1 frame is emitted instead — the frame is
/// always sendable.
pub fn encode_response_traced(resp: &Response, summary: &SpanSummary) -> Vec<u8> {
    let mut b = response_body(resp, VERSION_TRACED);
    let count = summary.spans.len().min(MAX_SPANS_PER_SUMMARY);
    let ext_max = 1 + 8 + 2 + count * (1 + 255 + 2 + 8 + 8);
    if b.len() + ext_max > MAX_FRAME_LEN {
        return frame(response_body(resp, VERSION));
    }
    b.put_slice(&[EXT_TRACE]);
    b.put_u64_le(summary.trace_id);
    b.put_u16_le(count as u16);
    for span in &summary.spans[..count] {
        let mut name = span.name.as_str();
        if name.len() > 255 {
            let mut cut = 255;
            while !name.is_char_boundary(cut) {
                cut -= 1;
            }
            name = &name[..cut];
        }
        b.put_slice(&[name.len() as u8]);
        b.put_slice(name.as_bytes());
        b.put_u16_le(span.parent);
        b.put_u64_le(span.start_ns);
        b.put_u64_le(span.dur_ns);
    }
    frame(b)
}

fn response_body(resp: &Response, version: u16) -> BytesMut {
    match resp {
        Response::Embeddings { id, dim, values } => {
            let mut b = body_header(version, TYPE_EMBEDDINGS, *id, 8 + values.len() * 4);
            let rows = if *dim == 0 {
                0
            } else {
                values.len() as u32 / dim
            };
            b.put_u32_le(rows);
            b.put_u32_le(*dim);
            for &v in values {
                b.put_f32_le(v);
            }
            b
        }
        Response::Classes { id, labels } => {
            let mut b = body_header(version, TYPE_CLASSES, *id, 4 + labels.len() * 4);
            b.put_u32_le(labels.len() as u32);
            for &l in labels {
                b.put_u32_le(l);
            }
            b
        }
        Response::Error { id, code, message } => {
            let mut b = body_header(version, TYPE_ERROR, *id, 5 + message.len());
            b.put_slice(&[*code]);
            b.put_u32_le(message.len() as u32);
            b.put_slice(message.as_bytes());
            b
        }
        Response::Stats { id, text } => text_body(version, TYPE_STATS_TEXT, *id, text),
        Response::Telemetry { id, text } => text_body(version, TYPE_TELEMETRY_TEXT, *id, text),
        Response::Ingested {
            id,
            node,
            dim,
            values,
        } => {
            let mut b = body_header(version, TYPE_INGESTED, *id, 8 + values.len() * 4);
            b.put_u32_le(*node);
            b.put_u32_le(*dim);
            for &v in values {
                b.put_f32_le(v);
            }
            b
        }
    }
}

/// Length-prefixed UTF-8 text payload (`Stats` and `Telemetry` share the
/// shape). Snapshots are bounded by the (small, fixed) metric population,
/// but the frame cap is the wire contract — truncate at a char boundary
/// rather than emit an unsendable frame.
fn text_body(version: u16, msg_type: u8, id: u64, text: &str) -> BytesMut {
    let budget = MAX_FRAME_LEN - 19 - 4;
    let mut text = text;
    if text.len() > budget {
        let mut cut = budget;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text = &text[..cut];
    }
    let mut b = body_header(version, msg_type, id, 4 + text.len());
    b.put_u32_le(text.len() as u32);
    b.put_slice(text.as_bytes());
    b
}

/// Bounds-checked sequential reader over a frame body.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.data.len() < n {
            return Err(WireError::Malformed(what));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn u32_vec(&mut self, count: usize, what: &'static str) -> Result<Vec<u32>, WireError> {
        let raw = self.take(
            count.checked_mul(4).ok_or(WireError::Malformed(what))?,
            what,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

fn decode_header<'a>(body: &'a [u8]) -> Result<(u16, u8, u64, Reader<'a>), WireError> {
    let mut r = Reader { data: body };
    if r.take(4, "magic")? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u16("version")?;
    if version != VERSION && version != VERSION_TRACED {
        return Err(WireError::BadVersion(version));
    }
    let msg_type = r.u8("type")?;
    let id = r.u64("id")?;
    Ok((version, msg_type, id, r))
}

fn decode_nodes(r: &mut Reader<'_>) -> Result<Vec<u32>, WireError> {
    let count = r.u32("node count")? as usize;
    if count > MAX_NODES_PER_REQUEST {
        return Err(WireError::Malformed("too many nodes in one request"));
    }
    r.u32_vec(count, "node ids")
}

/// Reads the version-2 extension flags byte; version-1 bodies have none.
/// Returns whether the trace extension follows.
fn ext_flags(version: u16, r: &mut Reader<'_>) -> Result<bool, WireError> {
    if version == VERSION {
        return Ok(false);
    }
    let flags = r.u8("ext flags")?;
    if flags & !EXT_TRACE != 0 {
        return Err(WireError::Malformed("unknown extension flags"));
    }
    Ok(flags & EXT_TRACE != 0)
}

/// Decodes a request body (the frame *without* its length prefix),
/// dropping any trace context. Accepts versions 1 and 2.
///
/// # Errors
/// Returns a [`WireError`] on any malformation; never panics.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    decode_request_ext(body).map(|(req, _)| req)
}

/// Decodes a request body along with its optional trace context.
/// Version-1 bodies and version-2 bodies without the trace flag yield
/// `None`.
///
/// # Errors
/// Returns a [`WireError`] on any malformation; never panics.
pub fn decode_request_ext(body: &[u8]) -> Result<(Request, Option<TraceContext>), WireError> {
    let (version, msg_type, id, mut r) = decode_header(body)?;
    let req = match msg_type {
        TYPE_EMBED => {
            let seed = r.u64("seed")?;
            let nodes = decode_nodes(&mut r)?;
            Request::Embed { id, seed, nodes }
        }
        TYPE_CLASSIFY => {
            let seed = r.u64("seed")?;
            let rounds = r.u32("rounds")?;
            if rounds == 0 {
                return Err(WireError::Malformed("zero ensemble rounds"));
            }
            let nodes = decode_nodes(&mut r)?;
            Request::Classify {
                id,
                seed,
                rounds,
                nodes,
            }
        }
        TYPE_STATS => Request::Stats { id },
        TYPE_TELEMETRY => Request::Telemetry { id },
        TYPE_INGEST => {
            let seed = r.u64("seed")?;
            let node_type = r.u16("node type")?;
            let label = match r.u8("label flag")? {
                0 => None,
                1 => Some(r.u16("label")?),
                _ => return Err(WireError::Malformed("bad label flag")),
            };
            let feat_count = r.u32("feature count")? as usize;
            if feat_count > MAX_FEATURES_PER_INGEST {
                return Err(WireError::Malformed("too many features in one ingest"));
            }
            let raw = r.take(
                feat_count
                    .checked_mul(4)
                    .ok_or(WireError::Malformed("feature size"))?,
                "feature values",
            )?;
            let features = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let edge_count = r.u32("edge count")? as usize;
            if edge_count > MAX_NODES_PER_REQUEST {
                return Err(WireError::Malformed("too many edges in one ingest"));
            }
            let mut edges = Vec::with_capacity(edge_count);
            for _ in 0..edge_count {
                let peer = r.u32("edge peer")?;
                let t = r.u16("edge type")?;
                edges.push((peer, t));
            }
            Request::Ingest {
                id,
                seed,
                node_type,
                label,
                features,
                edges,
            }
        }
        other => return Err(WireError::BadType(other)),
    };
    let trace = if ext_flags(version, &mut r)? {
        Some(TraceContext {
            trace_id: r.u64("trace id")?,
        })
    } else {
        None
    };
    r.finish()?;
    Ok((req, trace))
}

/// Decodes a response body (the frame *without* its length prefix),
/// dropping any span summary. Accepts versions 1 and 2.
///
/// # Errors
/// Returns a [`WireError`] on any malformation; never panics.
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    decode_response_ext(body).map(|(resp, _)| resp)
}

/// Decodes a response body along with its optional span summary.
/// Version-1 bodies and version-2 bodies without the trace flag yield
/// `None`.
///
/// # Errors
/// Returns a [`WireError`] on any malformation; never panics.
pub fn decode_response_ext(body: &[u8]) -> Result<(Response, Option<SpanSummary>), WireError> {
    let (version, msg_type, id, mut r) = decode_header(body)?;
    let resp = match msg_type {
        TYPE_EMBEDDINGS => {
            let rows = r.u32("rows")? as usize;
            let cols = r.u32("cols")? as usize;
            let scalars = rows.checked_mul(cols).ok_or(WireError::Malformed("size"))?;
            let raw = r.take(
                scalars.checked_mul(4).ok_or(WireError::Malformed("size"))?,
                "embedding values",
            )?;
            let values = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Response::Embeddings {
                id,
                dim: cols as u32,
                values,
            }
        }
        TYPE_CLASSES => {
            let count = r.u32("label count")? as usize;
            if count > MAX_NODES_PER_REQUEST {
                return Err(WireError::Malformed("too many labels"));
            }
            let labels = r.u32_vec(count, "labels")?;
            Response::Classes { id, labels }
        }
        TYPE_ERROR => {
            let code = r.u8("error code")?;
            let msg_len = r.u32("message length")? as usize;
            if msg_len > MAX_FRAME_LEN {
                return Err(WireError::Malformed("oversized error message"));
            }
            let raw = r.take(msg_len, "message")?;
            let message = std::str::from_utf8(raw)
                .map_err(|_| WireError::Malformed("non-utf8 message"))?
                .to_string();
            Response::Error { id, code, message }
        }
        TYPE_STATS_TEXT => {
            let msg_len = r.u32("stats length")? as usize;
            if msg_len > MAX_FRAME_LEN {
                return Err(WireError::Malformed("oversized stats text"));
            }
            let raw = r.take(msg_len, "stats text")?;
            let text = std::str::from_utf8(raw)
                .map_err(|_| WireError::Malformed("non-utf8 stats text"))?
                .to_string();
            Response::Stats { id, text }
        }
        TYPE_TELEMETRY_TEXT => {
            let msg_len = r.u32("telemetry length")? as usize;
            if msg_len > MAX_FRAME_LEN {
                return Err(WireError::Malformed("oversized telemetry text"));
            }
            let raw = r.take(msg_len, "telemetry text")?;
            let text = std::str::from_utf8(raw)
                .map_err(|_| WireError::Malformed("non-utf8 telemetry text"))?
                .to_string();
            Response::Telemetry { id, text }
        }
        TYPE_INGESTED => {
            let node = r.u32("node id")?;
            let dim = r.u32("dim")? as usize;
            if dim > MAX_FEATURES_PER_INGEST {
                return Err(WireError::Malformed("oversized embedding dim"));
            }
            let raw = r.take(
                dim.checked_mul(4).ok_or(WireError::Malformed("size"))?,
                "embedding values",
            )?;
            let values = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Response::Ingested {
                id,
                node,
                dim: dim as u32,
                values,
            }
        }
        other => return Err(WireError::BadType(other)),
    };
    let summary = if ext_flags(version, &mut r)? {
        Some(decode_summary(&mut r)?)
    } else {
        None
    };
    r.finish()?;
    Ok((resp, summary))
}

fn decode_summary(r: &mut Reader<'_>) -> Result<SpanSummary, WireError> {
    let trace_id = r.u64("trace id")?;
    let count = r.u16("span count")? as usize;
    if count > MAX_SPANS_PER_SUMMARY {
        return Err(WireError::Malformed("too many spans"));
    }
    let mut spans = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = r.u8("span name length")? as usize;
        let raw = r.take(name_len, "span name")?;
        let name = std::str::from_utf8(raw)
            .map_err(|_| WireError::Malformed("non-utf8 span name"))?
            .to_string();
        let parent = r.u16("span parent")?;
        if parent != WireSpan::ROOT && parent as usize >= count {
            return Err(WireError::Malformed("span parent out of range"));
        }
        let start_ns = r.u64("span start")?;
        let dur_ns = r.u64("span duration")?;
        spans.push(WireSpan {
            name,
            parent,
            start_ns,
            dur_ns,
        });
    }
    Ok(SpanSummary { trace_id, spans })
}

/// Incremental frame assembler: feed arbitrarily-split byte chunks in,
/// take whole frame bodies out. Used by both server and client to handle
/// TCP's stream semantics.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily to keep pushes O(n).
    pos: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact once the dead prefix dominates, amortising to O(1)/byte.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, if one is fully buffered.
    ///
    /// # Errors
    /// [`WireError::Oversized`] as soon as a length prefix exceeds
    /// [`MAX_FRAME_LEN`] — the connection should be dropped, since framing
    /// can no longer be trusted.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if declared > MAX_FRAME_LEN {
            return Err(WireError::Oversized { declared });
        }
        if avail.len() < 4 + declared {
            return Ok(None);
        }
        let body = avail[4..4 + declared].to_vec();
        self.pos += 4 + declared;
        Ok(Some(body))
    }

    /// Bytes buffered but not yet consumed (diagnostics).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let reqs = [
            Request::Embed {
                id: 42,
                seed: 7,
                nodes: vec![0, 1, 99],
            },
            Request::Classify {
                id: u64::MAX,
                seed: 0,
                rounds: 3,
                nodes: vec![5],
            },
            Request::Stats { id: 77 },
        ];
        for req in &reqs {
            let wire = encode_request(req);
            let mut fr = FrameReader::new();
            fr.push(&wire);
            let body = fr.next_frame().unwrap().expect("complete frame");
            assert_eq!(&decode_request(&body).unwrap(), req);
            assert!(fr.next_frame().unwrap().is_none());
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let resps = [
            Response::Embeddings {
                id: 1,
                dim: 2,
                values: vec![0.5, -1.25, 3.0, 0.0],
            },
            Response::Classes {
                id: 2,
                labels: vec![0, 1, 1],
            },
            Response::Error {
                id: 3,
                code: 2,
                message: "deadline exceeded".into(),
            },
            Response::Stats {
                id: 4,
                text: "{\"counters\":{\"serve_jobs_total\":12},\"gauges\":{},\"histograms\":{}}"
                    .into(),
            },
        ];
        for resp in &resps {
            let wire = encode_response(resp);
            let mut fr = FrameReader::new();
            fr.push(&wire);
            let body = fr.next_frame().unwrap().unwrap();
            assert_eq!(&decode_response(&body).unwrap(), resp);
        }
    }

    #[test]
    fn ingest_frames_round_trip() {
        let reqs = [
            Request::Ingest {
                id: 10,
                seed: 99,
                node_type: 2,
                label: Some(1),
                features: vec![0.25, -1.5, 0.0],
                edges: vec![(3, 0), (7, 1)],
            },
            Request::Ingest {
                id: 11,
                seed: 0,
                node_type: 0,
                label: None,
                features: vec![],
                edges: vec![],
            },
        ];
        for req in &reqs {
            let wire = encode_request(req);
            let mut fr = FrameReader::new();
            fr.push(&wire);
            let body = fr.next_frame().unwrap().expect("complete frame");
            assert_eq!(&decode_request(&body).unwrap(), req);
        }
        let resp = Response::Ingested {
            id: 10,
            node: 400,
            dim: 2,
            values: vec![1.5, -0.5],
        };
        let wire = encode_response(&resp);
        let mut fr = FrameReader::new();
        fr.push(&wire);
        let body = fr.next_frame().unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap(), resp);
    }

    #[test]
    fn ingest_malformations_rejected() {
        let req = Request::Ingest {
            id: 1,
            seed: 2,
            node_type: 0,
            label: Some(0),
            features: vec![1.0],
            edges: vec![(0, 0)],
        };
        let wire = encode_request(&req);
        let body = &wire[4..];
        // Truncations at every prefix error out rather than panic.
        for cut in 0..body.len() {
            assert!(decode_request(&body[..cut]).is_err(), "cut {cut}");
        }
        // A label flag other than 0/1 is malformed.
        let mut bad_flag = body.to_vec();
        let flag_off = 4 + 2 + 1 + 8 + 8 + 2;
        assert_eq!(bad_flag[flag_off], 1);
        bad_flag[flag_off] = 2;
        assert_eq!(
            decode_request(&bad_flag),
            Err(WireError::Malformed("bad label flag"))
        );
        // Declared feature count beyond the cap.
        let mut bad_count = body.to_vec();
        let count_off = flag_off + 1 + 2;
        bad_count[count_off..count_off + 4]
            .copy_from_slice(&(MAX_FEATURES_PER_INGEST as u32 + 1).to_le_bytes());
        assert_eq!(
            decode_request(&bad_count),
            Err(WireError::Malformed("too many features in one ingest"))
        );
    }

    #[test]
    fn traced_ingest_carries_the_extension() {
        let req = Request::Ingest {
            id: 21,
            seed: 5,
            node_type: 1,
            label: None,
            features: vec![2.0],
            edges: vec![(1, 0)],
        };
        let trace = TraceContext { trace_id: 77 };
        let wire = encode_request_traced(&req, &trace);
        let (back, ctx) = decode_request_ext(&wire[4..]).unwrap();
        assert_eq!(back, req);
        assert_eq!(ctx, Some(trace));
    }

    #[test]
    fn split_reads_reassemble() {
        let wire = encode_request(&Request::Embed {
            id: 9,
            seed: 3,
            nodes: (0..50).collect(),
        });
        let mut fr = FrameReader::new();
        for b in &wire {
            assert!(fr.next_frame().unwrap().is_none() || fr.pending() == 0);
            fr.push(std::slice::from_ref(b));
        }
        let body = fr.next_frame().unwrap().expect("assembled from bytes");
        assert!(matches!(
            decode_request(&body).unwrap(),
            Request::Embed { id: 9, .. }
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut fr = FrameReader::new();
        fr.push(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(fr.next_frame(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn malformed_bodies_error_not_panic() {
        // Truncations at every prefix of a valid body.
        let wire = encode_request(&Request::Classify {
            id: 1,
            seed: 2,
            rounds: 2,
            nodes: vec![1, 2, 3],
        });
        let body = &wire[4..];
        for cut in 0..body.len() {
            assert!(decode_request(&body[..cut]).is_err(), "cut {cut}");
        }
        // Declared node count far beyond the actual bytes.
        let mut b = body.to_vec();
        let count_off = 4 + 2 + 1 + 8 + 8 + 4;
        b[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&b).is_err());
    }

    #[test]
    fn stats_request_rejects_payload_bytes() {
        let wire = encode_request(&Request::Stats { id: 5 });
        let mut body = wire[4..].to_vec();
        body.push(0); // a Stats request is header-only
        assert_eq!(
            decode_request(&body),
            Err(WireError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn oversized_stats_text_is_truncated_to_fit_the_frame_cap() {
        let resp = Response::Stats {
            id: 1,
            text: "x".repeat(MAX_FRAME_LEN * 2),
        };
        let wire = encode_response(&resp);
        let declared = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert!(declared <= MAX_FRAME_LEN);
        let mut fr = FrameReader::new();
        fr.push(&wire);
        let body = fr.next_frame().unwrap().expect("frame fits the cap");
        assert!(matches!(
            decode_response(&body).unwrap(),
            Response::Stats { id: 1, .. }
        ));
    }

    #[test]
    fn telemetry_frames_round_trip() {
        let req = Request::Telemetry { id: 99 };
        let wire = encode_request(&req);
        // Telemetry rides the plain version-1 framing like every other op.
        assert_eq!(&wire[4..][4..6], &VERSION.to_le_bytes());
        let mut fr = FrameReader::new();
        fr.push(&wire);
        let body = fr.next_frame().unwrap().expect("complete frame");
        assert_eq!(decode_request(&body).unwrap(), req);

        let resp = Response::Telemetry {
            id: 99,
            text: "{\"counters\":{},\"gauges\":{},\"slo\":{\"serve_request_latency_us\":{\"p50\":1.0,\"p90\":2.0,\"p99\":3.0,\"max\":4.0,\"count\":5}}}".into(),
        };
        let wire = encode_response(&resp);
        let mut fr = FrameReader::new();
        fr.push(&wire);
        let body = fr.next_frame().unwrap().unwrap();
        assert_eq!(decode_response(&body).unwrap(), resp);
    }

    #[test]
    fn telemetry_request_rejects_payload_bytes() {
        let wire = encode_request(&Request::Telemetry { id: 5 });
        let mut body = wire[4..].to_vec();
        body.push(0); // a Telemetry request is header-only
        assert_eq!(
            decode_request(&body),
            Err(WireError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn oversized_telemetry_text_is_truncated_at_a_char_boundary() {
        // Multi-byte content: truncation must land between characters.
        let resp = Response::Telemetry {
            id: 1,
            text: "λ".repeat(MAX_FRAME_LEN),
        };
        let wire = encode_response(&resp);
        let declared = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert!(declared <= MAX_FRAME_LEN);
        let mut fr = FrameReader::new();
        fr.push(&wire);
        let body = fr.next_frame().unwrap().expect("frame fits the cap");
        match decode_response(&body).unwrap() {
            Response::Telemetry { id: 1, text } => {
                assert!(!text.is_empty());
                assert!(text.chars().all(|c| c == 'λ'));
            }
            other => panic!("expected telemetry, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_truncations_error_not_panic() {
        let wire = encode_response(&Response::Telemetry {
            id: 3,
            text: "{\"counters\":{}}".into(),
        });
        let body = &wire[4..];
        for cut in 0..body.len() {
            assert!(decode_response(&body[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn unknown_message_types_still_rejected() {
        // The two telemetry type codes are the newest; the next code up
        // must keep erroring out as unknown on both decode paths.
        let wire = encode_request(&Request::Stats { id: 1 });
        let mut body = wire[4..].to_vec();
        body[6] = 12;
        assert_eq!(decode_request(&body), Err(WireError::BadType(12)));
        let wire = encode_response(&Response::Stats {
            id: 1,
            text: "{}".into(),
        });
        let mut body = wire[4..].to_vec();
        body[6] = 12;
        assert!(matches!(
            decode_response(&body),
            Err(WireError::BadType(12))
        ));
    }

    #[test]
    fn traced_request_round_trips_and_plain_decoder_drops_the_context() {
        let req = Request::Embed {
            id: 8,
            seed: 5,
            nodes: vec![1, 2],
        };
        let trace = TraceContext {
            trace_id: 0xDEAD_BEEF_CAFE_F00D,
        };
        let wire = encode_request_traced(&req, &trace);
        let body = &wire[4..];
        assert_eq!(&body[4..6], &VERSION_TRACED.to_le_bytes());
        let (back, ctx) = decode_request_ext(body).unwrap();
        assert_eq!(back, req);
        assert_eq!(ctx, Some(trace));
        // The version-1 decoder path still accepts the frame, minus the ext.
        assert_eq!(decode_request(body).unwrap(), req);
    }

    #[test]
    fn traced_response_round_trips_span_summary() {
        let resp = Response::Classes {
            id: 3,
            labels: vec![1, 0],
        };
        let summary = SpanSummary {
            trace_id: 42,
            spans: vec![
                WireSpan {
                    name: "serve.server.request".into(),
                    parent: WireSpan::ROOT,
                    start_ns: 0,
                    dur_ns: 900,
                },
                WireSpan {
                    name: "serve.batcher.forward_batch".into(),
                    parent: 0,
                    start_ns: 100,
                    dur_ns: 700,
                },
            ],
        };
        let wire = encode_response_traced(&resp, &summary);
        let (back, got) = decode_response_ext(&wire[4..]).unwrap();
        assert_eq!(back, resp);
        assert_eq!(got, Some(summary));
        // Plain decoder interoperability.
        assert_eq!(decode_response(&wire[4..]).unwrap(), resp);
    }

    #[test]
    fn plain_frames_stay_bit_identical_version_one() {
        let wire = encode_request(&Request::Stats { id: 1 });
        assert_eq!(&wire[4..][4..6], &VERSION.to_le_bytes());
        let wire = encode_response(&Response::Classes {
            id: 1,
            labels: vec![2],
        });
        assert_eq!(&wire[4..][4..6], &VERSION.to_le_bytes());
        // And version-1 bodies pass through the ext decoders with no context.
        let (_, ctx) = decode_request_ext(&encode_request(&Request::Stats { id: 1 })[4..]).unwrap();
        assert!(ctx.is_none());
        let (_, summary) = decode_response_ext(&wire[4..]).unwrap();
        assert!(summary.is_none());
    }

    #[test]
    fn extension_malformations_rejected() {
        let req = Request::Stats { id: 9 };
        let trace = TraceContext { trace_id: 7 };
        let good = encode_request_traced(&req, &trace);
        let body = good[4..].to_vec();

        // Unknown extension flag bits.
        let mut bad_flags = body.clone();
        let flags_off = body.len() - 9;
        bad_flags[flags_off] |= 0x80;
        assert_eq!(
            decode_request_ext(&bad_flags),
            Err(WireError::Malformed("unknown extension flags"))
        );

        // Truncated trace id.
        assert!(decode_request_ext(&body[..body.len() - 1]).is_err());

        // Trailing bytes after a complete extension.
        let mut trailing = body.clone();
        trailing.push(0);
        assert_eq!(
            decode_request_ext(&trailing),
            Err(WireError::Malformed("trailing bytes"))
        );

        // Version 2 with no extension byte at all.
        let plain = encode_request(&req);
        let mut v2_no_ext = plain[4..].to_vec();
        v2_no_ext[4..6].copy_from_slice(&VERSION_TRACED.to_le_bytes());
        assert!(decode_request_ext(&v2_no_ext).is_err());

        // Response summary with an out-of-range parent index.
        let resp = Response::Classes {
            id: 1,
            labels: vec![0],
        };
        let summary = SpanSummary {
            trace_id: 1,
            spans: vec![WireSpan {
                name: "serve.server.request".into(),
                parent: 5,
                start_ns: 0,
                dur_ns: 1,
            }],
        };
        let wire = encode_response_traced(&resp, &summary);
        assert_eq!(
            decode_response_ext(&wire[4..]),
            Err(WireError::Malformed("span parent out of range"))
        );
    }

    #[test]
    fn oversized_summary_falls_back_to_a_plain_frame() {
        // A Stats payload near the frame cap leaves no room for the ext.
        let resp = Response::Stats {
            id: 6,
            text: "y".repeat(MAX_FRAME_LEN),
        };
        let summary = SpanSummary {
            trace_id: 3,
            spans: vec![WireSpan {
                name: "serve.server.request".into(),
                parent: WireSpan::ROOT,
                start_ns: 0,
                dur_ns: 10,
            }],
        };
        let wire = encode_response_traced(&resp, &summary);
        let declared = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert!(declared <= MAX_FRAME_LEN);
        assert_eq!(&wire[4..][4..6], &VERSION.to_le_bytes());
        let (_, got) = decode_response_ext(&wire[4..]).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn long_span_names_truncate_at_a_char_boundary() {
        let resp = Response::Classes {
            id: 2,
            labels: vec![0],
        };
        let summary = SpanSummary {
            trace_id: 9,
            spans: vec![WireSpan {
                name: "é".repeat(200), // 400 bytes of two-byte chars
                parent: WireSpan::ROOT,
                start_ns: 0,
                dur_ns: 5,
            }],
        };
        let wire = encode_response_traced(&resp, &summary);
        let (_, got) = decode_response_ext(&wire[4..]).unwrap();
        let got = got.unwrap();
        assert_eq!(got.spans[0].name, "é".repeat(127));
    }

    #[test]
    fn wrong_magic_version_type_rejected() {
        let wire = encode_request(&Request::Embed {
            id: 1,
            seed: 1,
            nodes: vec![],
        });
        let mut body = wire[4..].to_vec();
        let mut bad_magic = body.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_request(&bad_magic), Err(WireError::BadMagic));
        let mut bad_version = body.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            decode_request(&bad_version),
            Err(WireError::BadVersion(_))
        ));
        body[6] = 77;
        assert_eq!(decode_request(&body), Err(WireError::BadType(77)));
    }
}
