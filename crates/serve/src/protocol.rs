//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*:
//!
//! ```text
//! len   u32 LE            body length (excluding this prefix), ≤ MAX_FRAME_LEN
//! body:
//!   magic   "WSV1"        4 bytes
//!   version u16 LE        protocol version (1)
//!   type    u8            message discriminant
//!   id      u64 LE        request id, echoed in the response
//!   ...                   type-specific payload, see below
//! ```
//!
//! | type | message  | payload |
//! |---|---|---|
//! | 1 | Embed request    | `seed u64, count u32, count × node u32` |
//! | 2 | Classify request | `seed u64, rounds u32, count u32, count × node u32` |
//! | 3 | Embeddings       | `rows u32, cols u32, rows·cols × f32` |
//! | 4 | Classes          | `count u32, count × label u32` |
//! | 5 | Error            | `code u8, msg_len u32, msg utf-8` |
//! | 6 | Stats request    | (header only) |
//! | 7 | Stats            | `msg_len u32, JSON snapshot utf-8` |
//!
//! Decoding is fully defensive: declared lengths are validated against the
//! remaining bytes *before* any allocation, oversized frames are rejected
//! at the length prefix, and trailing bytes inside a body are an error —
//! a malformed peer can never panic the other side.

use bytes::{BufMut, BytesMut};

use crate::error::ServeError;

/// Frame body magic.
pub const MAGIC: [u8; 4] = *b"WSV1";
/// Current protocol version.
pub const VERSION: u16 = 1;
/// Hard upper bound on a frame body; larger length prefixes are rejected
/// without buffering.
pub const MAX_FRAME_LEN: usize = 1 << 22;
/// Upper bound on node ids per request — keeps one request from occupying
/// a whole batch window forever.
pub const MAX_NODES_PER_REQUEST: usize = 4096;

const TYPE_EMBED: u8 = 1;
const TYPE_CLASSIFY: u8 = 2;
const TYPE_EMBEDDINGS: u8 = 3;
const TYPE_CLASSES: u8 = 4;
const TYPE_ERROR: u8 = 5;
const TYPE_STATS: u8 = 6;
const TYPE_STATS_TEXT: u8 = 7;

/// Wire-level decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared body length.
        declared: usize,
    },
    /// The body does not start with [`MAGIC`].
    BadMagic,
    /// The body's version is not [`VERSION`].
    BadVersion(u16),
    /// Unknown message type discriminant.
    BadType(u8),
    /// The body ended before the declared content, declared counts exceed
    /// limits, or trailing bytes remain.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { declared } => {
                write!(f, "frame of {declared} bytes exceeds {MAX_FRAME_LEN}")
            }
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadType(t) => write!(f, "unknown message type {t}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Embed each node from a neighbourhood sampled with `seed`.
    Embed {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Sampling seed (determinism contract: same node + seed + weights
        /// → bit-identical embedding).
        seed: u64,
        /// Nodes to embed.
        nodes: Vec<u32>,
    },
    /// Classify each node by `rounds`-fold ensemble logits.
    Classify {
        /// Client-chosen id, echoed in the response.
        id: u64,
        /// Sampling seed.
        seed: u64,
        /// Ensemble rounds (≥ 1).
        rounds: u32,
        /// Nodes to classify.
        nodes: Vec<u32>,
    },
    /// Fetch the server's live metrics snapshot.
    Stats {
        /// Client-chosen id, echoed in the response.
        id: u64,
    },
}

impl Request {
    /// The request id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Embed { id, .. } | Request::Classify { id, .. } | Request::Stats { id } => *id,
        }
    }

    /// The nodes the request touches (empty for `Stats`).
    pub fn nodes(&self) -> &[u32] {
        match self {
            Request::Embed { nodes, .. } | Request::Classify { nodes, .. } => nodes,
            Request::Stats { .. } => &[],
        }
    }
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// One embedding row per requested node, in request order.
    Embeddings {
        /// Echoed request id.
        id: u64,
        /// Embedding dimensionality.
        dim: u32,
        /// Row-major `rows × dim` values.
        values: Vec<f32>,
    },
    /// One class label per requested node, in request order.
    Classes {
        /// Echoed request id.
        id: u64,
        /// Predicted labels.
        labels: Vec<u32>,
    },
    /// The request failed.
    Error {
        /// Echoed request id (0 when the id could not be decoded).
        id: u64,
        /// Stable [`ServeError`] code.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Live metrics snapshot, as the registry's JSON rendering.
    Stats {
        /// Echoed request id.
        id: u64,
        /// JSON text (see `widen_obs::Snapshot::to_json`).
        text: String,
    },
}

impl Response {
    /// Builds an error response from a [`ServeError`].
    pub fn from_error(id: u64, err: &ServeError) -> Self {
        Response::Error {
            id,
            code: err.code(),
            message: err.message().to_string(),
        }
    }
}

fn frame(body: BytesMut) -> Vec<u8> {
    let mut out = BytesMut::with_capacity(4 + body.len());
    out.put_u32_le(body.len() as u32);
    out.put_slice(&body);
    out.freeze().to_vec()
}

fn body_header(msg_type: u8, id: u64, payload_hint: usize) -> BytesMut {
    let mut b = BytesMut::with_capacity(15 + payload_hint);
    b.put_slice(&MAGIC);
    b.put_u16_le(VERSION);
    b.put_slice(&[msg_type]);
    b.put_u64_le(id);
    b
}

/// Encodes a request into a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Embed { id, seed, nodes } => {
            let mut b = body_header(TYPE_EMBED, *id, 12 + nodes.len() * 4);
            b.put_u64_le(*seed);
            b.put_u32_le(nodes.len() as u32);
            for &n in nodes {
                b.put_u32_le(n);
            }
            frame(b)
        }
        Request::Classify {
            id,
            seed,
            rounds,
            nodes,
        } => {
            let mut b = body_header(TYPE_CLASSIFY, *id, 16 + nodes.len() * 4);
            b.put_u64_le(*seed);
            b.put_u32_le(*rounds);
            b.put_u32_le(nodes.len() as u32);
            for &n in nodes {
                b.put_u32_le(n);
            }
            frame(b)
        }
        Request::Stats { id } => frame(body_header(TYPE_STATS, *id, 0)),
    }
}

/// Encodes a response into a complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Embeddings { id, dim, values } => {
            let mut b = body_header(TYPE_EMBEDDINGS, *id, 8 + values.len() * 4);
            let rows = if *dim == 0 {
                0
            } else {
                values.len() as u32 / dim
            };
            b.put_u32_le(rows);
            b.put_u32_le(*dim);
            for &v in values {
                b.put_f32_le(v);
            }
            frame(b)
        }
        Response::Classes { id, labels } => {
            let mut b = body_header(TYPE_CLASSES, *id, 4 + labels.len() * 4);
            b.put_u32_le(labels.len() as u32);
            for &l in labels {
                b.put_u32_le(l);
            }
            frame(b)
        }
        Response::Error { id, code, message } => {
            let mut b = body_header(TYPE_ERROR, *id, 5 + message.len());
            b.put_slice(&[*code]);
            b.put_u32_le(message.len() as u32);
            b.put_slice(message.as_bytes());
            frame(b)
        }
        Response::Stats { id, text } => {
            // Snapshots are bounded by the (small, fixed) metric population,
            // but the frame cap is the wire contract — truncate at a char
            // boundary rather than emit an unsendable frame.
            let budget = MAX_FRAME_LEN - 19 - 4;
            let mut text = text.as_str();
            if text.len() > budget {
                let mut cut = budget;
                while !text.is_char_boundary(cut) {
                    cut -= 1;
                }
                text = &text[..cut];
            }
            let mut b = body_header(TYPE_STATS_TEXT, *id, 4 + text.len());
            b.put_u32_le(text.len() as u32);
            b.put_slice(text.as_bytes());
            frame(b)
        }
    }
}

/// Bounds-checked sequential reader over a frame body.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.data.len() < n {
            return Err(WireError::Malformed(what));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn u32_vec(&mut self, count: usize, what: &'static str) -> Result<Vec<u32>, WireError> {
        let raw = self.take(
            count.checked_mul(4).ok_or(WireError::Malformed(what))?,
            what,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

fn decode_header<'a>(body: &'a [u8]) -> Result<(u8, u64, Reader<'a>), WireError> {
    let mut r = Reader { data: body };
    if r.take(4, "magic")? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u16("version")?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let msg_type = r.u8("type")?;
    let id = r.u64("id")?;
    Ok((msg_type, id, r))
}

fn decode_nodes(r: &mut Reader<'_>) -> Result<Vec<u32>, WireError> {
    let count = r.u32("node count")? as usize;
    if count > MAX_NODES_PER_REQUEST {
        return Err(WireError::Malformed("too many nodes in one request"));
    }
    r.u32_vec(count, "node ids")
}

/// Decodes a request body (the frame *without* its length prefix).
///
/// # Errors
/// Returns a [`WireError`] on any malformation; never panics.
pub fn decode_request(body: &[u8]) -> Result<Request, WireError> {
    let (msg_type, id, mut r) = decode_header(body)?;
    match msg_type {
        TYPE_EMBED => {
            let seed = r.u64("seed")?;
            let nodes = decode_nodes(&mut r)?;
            r.finish()?;
            Ok(Request::Embed { id, seed, nodes })
        }
        TYPE_CLASSIFY => {
            let seed = r.u64("seed")?;
            let rounds = r.u32("rounds")?;
            if rounds == 0 {
                return Err(WireError::Malformed("zero ensemble rounds"));
            }
            let nodes = decode_nodes(&mut r)?;
            r.finish()?;
            Ok(Request::Classify {
                id,
                seed,
                rounds,
                nodes,
            })
        }
        TYPE_STATS => {
            r.finish()?;
            Ok(Request::Stats { id })
        }
        other => Err(WireError::BadType(other)),
    }
}

/// Decodes a response body (the frame *without* its length prefix).
///
/// # Errors
/// Returns a [`WireError`] on any malformation; never panics.
pub fn decode_response(body: &[u8]) -> Result<Response, WireError> {
    let (msg_type, id, mut r) = decode_header(body)?;
    match msg_type {
        TYPE_EMBEDDINGS => {
            let rows = r.u32("rows")? as usize;
            let cols = r.u32("cols")? as usize;
            let scalars = rows.checked_mul(cols).ok_or(WireError::Malformed("size"))?;
            let raw = r.take(
                scalars.checked_mul(4).ok_or(WireError::Malformed("size"))?,
                "embedding values",
            )?;
            r.finish()?;
            let values = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(Response::Embeddings {
                id,
                dim: cols as u32,
                values,
            })
        }
        TYPE_CLASSES => {
            let count = r.u32("label count")? as usize;
            if count > MAX_NODES_PER_REQUEST {
                return Err(WireError::Malformed("too many labels"));
            }
            let labels = r.u32_vec(count, "labels")?;
            r.finish()?;
            Ok(Response::Classes { id, labels })
        }
        TYPE_ERROR => {
            let code = r.u8("error code")?;
            let msg_len = r.u32("message length")? as usize;
            if msg_len > MAX_FRAME_LEN {
                return Err(WireError::Malformed("oversized error message"));
            }
            let raw = r.take(msg_len, "message")?;
            r.finish()?;
            let message = std::str::from_utf8(raw)
                .map_err(|_| WireError::Malformed("non-utf8 message"))?
                .to_string();
            Ok(Response::Error { id, code, message })
        }
        TYPE_STATS_TEXT => {
            let msg_len = r.u32("stats length")? as usize;
            if msg_len > MAX_FRAME_LEN {
                return Err(WireError::Malformed("oversized stats text"));
            }
            let raw = r.take(msg_len, "stats text")?;
            r.finish()?;
            let text = std::str::from_utf8(raw)
                .map_err(|_| WireError::Malformed("non-utf8 stats text"))?
                .to_string();
            Ok(Response::Stats { id, text })
        }
        other => Err(WireError::BadType(other)),
    }
}

/// Incremental frame assembler: feed arbitrarily-split byte chunks in,
/// take whole frame bodies out. Used by both server and client to handle
/// TCP's stream semantics.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily to keep pushes O(n).
    pos: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact once the dead prefix dominates, amortising to O(1)/byte.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, if one is fully buffered.
    ///
    /// # Errors
    /// [`WireError::Oversized`] as soon as a length prefix exceeds
    /// [`MAX_FRAME_LEN`] — the connection should be dropped, since framing
    /// can no longer be trusted.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let declared = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if declared > MAX_FRAME_LEN {
            return Err(WireError::Oversized { declared });
        }
        if avail.len() < 4 + declared {
            return Ok(None);
        }
        let body = avail[4..4 + declared].to_vec();
        self.pos += 4 + declared;
        Ok(Some(body))
    }

    /// Bytes buffered but not yet consumed (diagnostics).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let reqs = [
            Request::Embed {
                id: 42,
                seed: 7,
                nodes: vec![0, 1, 99],
            },
            Request::Classify {
                id: u64::MAX,
                seed: 0,
                rounds: 3,
                nodes: vec![5],
            },
            Request::Stats { id: 77 },
        ];
        for req in &reqs {
            let wire = encode_request(req);
            let mut fr = FrameReader::new();
            fr.push(&wire);
            let body = fr.next_frame().unwrap().expect("complete frame");
            assert_eq!(&decode_request(&body).unwrap(), req);
            assert!(fr.next_frame().unwrap().is_none());
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let resps = [
            Response::Embeddings {
                id: 1,
                dim: 2,
                values: vec![0.5, -1.25, 3.0, 0.0],
            },
            Response::Classes {
                id: 2,
                labels: vec![0, 1, 1],
            },
            Response::Error {
                id: 3,
                code: 2,
                message: "deadline exceeded".into(),
            },
            Response::Stats {
                id: 4,
                text: "{\"counters\":{\"serve_jobs_total\":12},\"gauges\":{},\"histograms\":{}}"
                    .into(),
            },
        ];
        for resp in &resps {
            let wire = encode_response(resp);
            let mut fr = FrameReader::new();
            fr.push(&wire);
            let body = fr.next_frame().unwrap().unwrap();
            assert_eq!(&decode_response(&body).unwrap(), resp);
        }
    }

    #[test]
    fn split_reads_reassemble() {
        let wire = encode_request(&Request::Embed {
            id: 9,
            seed: 3,
            nodes: (0..50).collect(),
        });
        let mut fr = FrameReader::new();
        for b in &wire {
            assert!(fr.next_frame().unwrap().is_none() || fr.pending() == 0);
            fr.push(std::slice::from_ref(b));
        }
        let body = fr.next_frame().unwrap().expect("assembled from bytes");
        assert!(matches!(
            decode_request(&body).unwrap(),
            Request::Embed { id: 9, .. }
        ));
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut fr = FrameReader::new();
        fr.push(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(fr.next_frame(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn malformed_bodies_error_not_panic() {
        // Truncations at every prefix of a valid body.
        let wire = encode_request(&Request::Classify {
            id: 1,
            seed: 2,
            rounds: 2,
            nodes: vec![1, 2, 3],
        });
        let body = &wire[4..];
        for cut in 0..body.len() {
            assert!(decode_request(&body[..cut]).is_err(), "cut {cut}");
        }
        // Declared node count far beyond the actual bytes.
        let mut b = body.to_vec();
        let count_off = 4 + 2 + 1 + 8 + 8 + 4;
        b[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&b).is_err());
    }

    #[test]
    fn stats_request_rejects_payload_bytes() {
        let wire = encode_request(&Request::Stats { id: 5 });
        let mut body = wire[4..].to_vec();
        body.push(0); // a Stats request is header-only
        assert_eq!(
            decode_request(&body),
            Err(WireError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn oversized_stats_text_is_truncated_to_fit_the_frame_cap() {
        let resp = Response::Stats {
            id: 1,
            text: "x".repeat(MAX_FRAME_LEN * 2),
        };
        let wire = encode_response(&resp);
        let declared = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert!(declared <= MAX_FRAME_LEN);
        let mut fr = FrameReader::new();
        fr.push(&wire);
        let body = fr.next_frame().unwrap().expect("frame fits the cap");
        assert!(matches!(
            decode_response(&body).unwrap(),
            Response::Stats { id: 1, .. }
        ));
    }

    #[test]
    fn wrong_magic_version_type_rejected() {
        let wire = encode_request(&Request::Embed {
            id: 1,
            seed: 1,
            nodes: vec![],
        });
        let mut body = wire[4..].to_vec();
        let mut bad_magic = body.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_request(&bad_magic), Err(WireError::BadMagic));
        let mut bad_version = body.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            decode_request(&bad_version),
            Err(WireError::BadVersion(_))
        ));
        body[6] = 77;
        assert_eq!(decode_request(&body), Err(WireError::BadType(77)));
    }
}
