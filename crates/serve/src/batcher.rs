//! Micro-batching worker: pulls per-node jobs off the shared queue,
//! coalesces them into chunks (up to `max_batch` jobs or `max_wait_us`
//! after the first), and answers each chunk with one fused
//! [`widen_core::WidenModel::forward_batch`]-backed call.
//!
//! Correctness rests on the engine's batch-composition invariance (pinned
//! by a `widen-core` test): a node's output row is bit-identical no matter
//! which other jobs happen to share its chunk, so coalescing is purely a
//! throughput optimisation and responses equal serial single-request
//! answers exactly.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, RecvTimeoutError};
use widen_obs::{buckets, Counter, Gauge, Histogram, Registry};

use parking_lot::Mutex;

use crate::cache::{EmbedCache, EmbedKey};
use crate::error::ServeError;
use crate::poll::WakePipe;
use crate::protocol::{Response, WireSpan};
use crate::registry::ModelRegistry;

/// Per-request tracing state, shared between the connection handler (which
/// opens the request span and assembles the wire summary) and the batcher
/// workers (which record child spans as the request's jobs move through
/// the pipeline). Span times are nanosecond offsets from `start`, matching
/// the [`WireSpan`] encoding; every recorded span carries `parent == 0`,
/// the root's index in the final summary.
pub(crate) struct RequestTrace {
    /// When the request span opened (frame decoded).
    pub start: Instant,
    /// Client-chosen trace id, echoed in the summary.
    pub trace_id: u64,
    /// Child spans, in recording order.
    pub spans: Mutex<Vec<WireSpan>>,
}

impl RequestTrace {
    pub fn new(trace_id: u64) -> Self {
        Self {
            start: Instant::now(),
            trace_id,
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Records one child span covering `[from, to]`, clamped to the
    /// request span's own origin.
    pub fn record(&self, name: &str, from: Instant, to: Instant) {
        let start_ns = from.saturating_duration_since(self.start).as_nanos() as u64;
        let dur_ns = to.saturating_duration_since(from).as_nanos() as u64;
        self.spans.lock().push(WireSpan {
            name: name.to_string(),
            parent: 0,
            start_ns,
            dur_ns,
        });
    }
}

/// What one coalescable unit of work computes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) enum JobKind {
    /// One embedding row.
    Embed,
    /// One ensemble-classified label.
    Classify {
        /// Ensemble rounds.
        rounds: u32,
    },
}

/// The result a job sends back to its connection handler.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JobOutput {
    /// Embedding row (`d` values).
    Embedding(Vec<f32>),
    /// Predicted class label.
    Label(u32),
}

/// Monotonic lifecycle instants a job carries back to the reactor on its
/// completion — the always-on raw material for the request-lifecycle
/// histograms and the flight recorder. `Copy`, so the hot path moves a
/// few instants, never allocates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobStamps {
    /// When the job entered the shared queue.
    pub enqueued: Instant,
    /// When a worker pulled it off the queue.
    pub pulled: Instant,
    /// When its coalescing window closed (batch processing began).
    pub batch_start: Instant,
    /// When its fused forward pass started (== `batch_start` for cache
    /// hits and deadline drops, which never reach the model).
    pub forward_start: Instant,
    /// When its fused forward pass finished.
    pub forward_end: Instant,
}

impl JobStamps {
    /// Stamps for a job answered at `batch_start` without a forward pass.
    fn short_circuit(enqueued: Instant, pulled: Instant, batch_start: Instant) -> Self {
        Self {
            enqueued,
            pulled,
            batch_start,
            forward_start: batch_start,
            forward_end: batch_start,
        }
    }
}

/// What flows back to the reactor over the single completion channel.
/// The `req` correlation key (the reactor's internal request sequence
/// number, not the client-chosen wire id) routes each completion to its
/// pending request regardless of the order batches finish in — that is
/// what makes pipelined requests on one socket safe to answer out of
/// order.
#[derive(Debug)]
pub(crate) enum Completion {
    /// One per-node job of a queued request finished.
    Job {
        /// Reactor-internal request key.
        req: u64,
        /// Slot within the originating request's node list.
        slot: usize,
        /// The job's outcome.
        result: Result<JobOutput, ServeError>,
        /// Lifecycle instants for telemetry and the flight recorder.
        stamps: JobStamps,
    },
    /// A directly-executed request (ingest) finished with a complete
    /// response.
    Direct {
        /// Reactor-internal request key.
        req: u64,
        /// The fully-assembled response.
        response: Response,
    },
}

/// Sending half of the completion channel, bundled with the reactor's
/// wake token: every completion delivery also rings the self-pipe so the
/// event loop leaves `poll` and writes the response. `wake: None` keeps
/// unit tests (which read the channel directly) pipe-free.
#[derive(Clone)]
pub(crate) struct ReplySink {
    pub tx: mpsc::Sender<Completion>,
    pub wake: Option<Arc<WakePipe>>,
}

impl ReplySink {
    pub fn send(&self, completion: Completion) {
        // A dead reactor (server torn down) just means nobody is
        // listening; the send failing is fine.
        if self.tx.send(completion).is_ok() {
            if let Some(wake) = &self.wake {
                wake.wake();
            }
        }
    }
}

/// One node of one request, queued for a batcher worker.
pub(crate) struct Job {
    pub kind: JobKind,
    pub node: u32,
    pub seed: u64,
    /// Absolute deadline; expired jobs are answered with
    /// [`ServeError::DeadlineExceeded`] instead of being computed.
    pub deadline: Instant,
    /// Reactor-internal key of the originating request.
    pub req: u64,
    /// Position within the originating request.
    pub slot: usize,
    /// Completion channel back to the reactor.
    pub reply: ReplySink,
    /// When the job entered the queue (queue-wait span start).
    pub enqueued_at: Instant,
    /// When a worker pulled the job off the queue; initialised to
    /// `enqueued_at` and overwritten by `run_worker` at pull time.
    pub pulled_at: Instant,
    /// Tracing state of the originating request, if the client asked for
    /// a span summary. `None` keeps the fast path span-free.
    pub trace: Option<Arc<RequestTrace>>,
}

/// Coalescing knobs.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BatchPolicy {
    pub max_batch: usize,
    pub max_wait: Duration,
}

/// Worker-side throughput instruments: handles into the server's metric
/// registry, shared by every worker and lock-free to record.
pub(crate) struct WorkerStats {
    pub jobs: Arc<Counter>,
    pub batches: Arc<Counter>,
    pub deadline_drops: Arc<Counter>,
    /// Jobs answered by another identical job's computation (singleflight
    /// dedup within a coalescing window).
    pub dedup_hits: Arc<Counter>,
    /// Fused-batch sizes (jobs per `process_batch` call).
    pub batch_size: Arc<Histogram>,
    /// How long the first job of each window waited for company, in µs.
    pub batch_wait_us: Arc<Histogram>,
    /// Job-queue depth sampled as each coalescing window opens.
    pub queue_depth: Arc<Gauge>,
    /// Always-on lifecycle: enqueue → worker pull, per job, in µs.
    pub queue_wait_us: Arc<Histogram>,
    /// Always-on lifecycle: worker pull → window close, per job, in µs.
    pub coalesce_us: Arc<Histogram>,
    /// Always-on lifecycle: fused forward pass, per batch group, in µs.
    pub forward_us: Arc<Histogram>,
    /// Jobs computed on their owning shard's snapshot (sharded registries
    /// only).
    pub shard_routed: Arc<Counter>,
    /// Jobs on a sharded registry that could not run on their owner —
    /// answered by the home shard or the full global graph instead.
    pub shard_fallback: Arc<Counter>,
}

impl WorkerStats {
    /// Registers (or re-binds) the `serve_*` instruments in `metrics`.
    pub fn new(metrics: &Registry) -> Self {
        Self {
            jobs: metrics.counter("serve_jobs_total"),
            batches: metrics.counter("serve_batches_total"),
            deadline_drops: metrics.counter("serve_deadline_drops_total"),
            dedup_hits: metrics.counter("serve_dedup_hits_total"),
            batch_size: metrics.histogram("serve_batch_size", buckets::SMALL_COUNTS),
            batch_wait_us: metrics.histogram("serve_batch_wait_us", buckets::LATENCY_US),
            queue_depth: metrics.gauge("serve_queue_depth"),
            queue_wait_us: metrics.histogram("serve_queue_wait_us", buckets::LATENCY_US_FINE),
            coalesce_us: metrics.histogram("serve_coalesce_us", buckets::LATENCY_US_FINE),
            forward_us: metrics.histogram("serve_forward_us", buckets::LATENCY_US_FINE),
            shard_routed: metrics.counter("serve_shard_routed_jobs_total"),
            shard_fallback: metrics.counter("serve_shard_fallback_jobs_total"),
        }
    }
}

/// Runs one batcher worker until the job channel disconnects. On
/// shutdown the channel keeps yielding queued jobs until empty — that is
/// the drain guarantee: every accepted job is answered before the worker
/// exits.
pub(crate) fn run_worker(
    registry: Arc<ModelRegistry>,
    cache: Arc<EmbedCache>,
    rx: Receiver<Job>,
    policy: BatchPolicy,
    stats: Arc<WorkerStats>,
) {
    loop {
        let mut first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // disconnected and fully drained
        };
        stats.queue_depth.set(rx.len() as i64);
        let window_start = Instant::now();
        first.pulled_at = window_start;
        let mut jobs = vec![first];
        if policy.max_batch > 1 {
            let window_end = window_start + policy.max_wait;
            while jobs.len() < policy.max_batch {
                match rx.recv_deadline(window_end) {
                    Ok(mut job) => {
                        job.pulled_at = Instant::now();
                        jobs.push(job);
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        let window_close = Instant::now();
        // Per traced job: queue-wait (enqueue → pull), then coalesce
        // (pull → window close) — sequential by construction, so a
        // request's child spans never overlap.
        for job in &jobs {
            if let Some(trace) = &job.trace {
                trace.record("serve.batcher.queue_wait", job.enqueued_at, job.pulled_at);
                trace.record("serve.batcher.coalesce", job.pulled_at, window_close);
            }
        }
        stats
            .batch_wait_us
            .observe(window_start.elapsed().as_micros() as f64);
        process_batch(&registry, &cache, jobs, &stats);
    }
}

/// Answers every job in `jobs`: expired ones with an error, embed jobs
/// from the cache when possible, the rest through one fused model call
/// per distinct [`JobKind`].
///
/// The whole batch runs under **one** registry read guard, so the digest
/// and graph version used for cache keys, the weights the forward pass
/// reads, and the graph it samples from are a single consistent
/// generation — a concurrent ingest or hot-swap lands entirely before or
/// entirely after this batch. Staleness needs no further ordering
/// argument: every row is keyed by the `(checkpoint_hash, graph_version)`
/// it was computed under, and any mutation bumps the version, so a row
/// from an older graph can never answer a lookup issued under a newer
/// one, no matter when it was inserted.
fn process_batch(
    registry: &ModelRegistry,
    cache: &EmbedCache,
    jobs: Vec<Job>,
    stats: &WorkerStats,
) {
    stats.batches.inc();
    stats.jobs.add(jobs.len() as u64);
    stats.batch_size.observe(jobs.len() as f64);
    let now = Instant::now();
    let st = registry.read();
    let ckpt = st.checkpoint_hash();
    let graph_version = st.graph_version();

    // (kind, shard route) → pending jobs grouping. Kinds and shards in a
    // window are few; a Vec scan beats hashing. Route `None` means the
    // full global graph — always the case for unsharded registries.
    type GroupKey = (JobKind, Option<u32>);
    let mut groups: Vec<(GroupKey, Vec<Job>)> = Vec::new();
    for job in jobs {
        stats.queue_wait_us.observe(
            job.pulled_at
                .saturating_duration_since(job.enqueued_at)
                .as_micros() as f64,
        );
        stats
            .coalesce_us
            .observe(now.saturating_duration_since(job.pulled_at).as_micros() as f64);
        if job.deadline < now {
            stats.deadline_drops.inc();
            reply(
                &job,
                Err(ServeError::DeadlineExceeded),
                JobStamps::short_circuit(job.enqueued_at, job.pulled_at, now),
            );
            continue;
        }
        if job.kind == JobKind::Embed {
            let key = EmbedKey {
                node: job.node,
                checkpoint_hash: ckpt,
                graph_version,
                seed: job.seed,
            };
            let lookup_start = job.trace.as_ref().map(|_| Instant::now());
            let hit = cache.get(&key);
            if let (Some(trace), Some(t0)) = (&job.trace, lookup_start) {
                trace.record("serve.batcher.cache_lookup", t0, Instant::now());
            }
            if let Some(row) = hit {
                reply(
                    &job,
                    Ok(JobOutput::Embedding(row)),
                    JobStamps::short_circuit(job.enqueued_at, job.pulled_at, now),
                );
                continue;
            }
        }
        let route = st.shards().and_then(|map| map.route(job.node));
        if let Some(map) = st.shards() {
            if route.is_some() && route == map.owner(job.node) {
                stats.shard_routed.inc();
            } else {
                stats.shard_fallback.inc();
            }
        }
        let key = (job.kind, route);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(job),
            None => groups.push((key, vec![job])),
        }
    }

    for ((kind, route), group) in groups {
        // Singleflight dedup: identical `(node, seed)` jobs in one window
        // sample and compute once and fan the row out to every subscriber.
        // Exact by construction — duplicates would have produced
        // bit-identical rows anyway (same sampled state, same weights).
        let mut items: Vec<(u32, u64)> = Vec::with_capacity(group.len());
        let mut row_of: Vec<usize> = Vec::with_capacity(group.len());
        for job in &group {
            let key = (job.node, job.seed);
            match items.iter().position(|&u| u == key) {
                Some(i) => {
                    stats.dedup_hits.inc();
                    row_of.push(i);
                }
                None => {
                    items.push(key);
                    row_of.push(items.len() - 1);
                }
            }
        }
        // Shard-routed groups resolve nodes to snapshot-local ids but key
        // every sampling stream by the *global* id, so the computed rows
        // equal the full-graph rows exactly (the halo contract) and cache
        // keys stay global.
        let snap = route.map(|p| st.shards().expect("route implies sharded").shard(p));
        let keyed: Option<Vec<(u32, u32, u64)>> = snap.map(|s| {
            items
                .iter()
                .map(|&(node, seed)| (s.to_local(node).expect("routed node resolves"), node, seed))
                .collect()
        });
        let forward_start = Instant::now();
        match kind {
            JobKind::Embed => {
                let rows = match (snap, &keyed) {
                    (Some(s), Some(keyed)) => st.model().embed_requests_keyed(s.graph(), keyed),
                    _ => st.model().embed_requests(st.graph(), &items),
                };
                let forward_end = Instant::now();
                stats.forward_us.observe(
                    forward_end
                        .saturating_duration_since(forward_start)
                        .as_micros() as f64,
                );
                for job in &group {
                    if let Some(trace) = &job.trace {
                        trace.record("serve.batcher.forward_batch", forward_start, forward_end);
                    }
                }
                for (job, &i) in group.iter().zip(&row_of) {
                    let row = rows.row(i).to_vec();
                    cache.insert(
                        EmbedKey {
                            node: job.node,
                            checkpoint_hash: ckpt,
                            graph_version,
                            seed: job.seed,
                        },
                        row.clone(),
                    );
                    reply(
                        job,
                        Ok(JobOutput::Embedding(row)),
                        JobStamps {
                            enqueued: job.enqueued_at,
                            pulled: job.pulled_at,
                            batch_start: now,
                            forward_start,
                            forward_end,
                        },
                    );
                }
            }
            JobKind::Classify { rounds } => {
                let logits = match (snap, &keyed) {
                    (Some(s), Some(keyed)) => {
                        st.model()
                            .ensemble_logits_keyed(s.graph(), keyed, rounds as usize)
                    }
                    _ => st
                        .model()
                        .ensemble_logits(st.graph(), &items, rounds as usize),
                };
                let forward_end = Instant::now();
                stats.forward_us.observe(
                    forward_end
                        .saturating_duration_since(forward_start)
                        .as_micros() as f64,
                );
                for job in &group {
                    if let Some(trace) = &job.trace {
                        trace.record("serve.batcher.forward_batch", forward_start, forward_end);
                    }
                }
                for (job, &i) in group.iter().zip(&row_of) {
                    let label = argmax(logits.row(i)) as u32;
                    reply(
                        job,
                        Ok(JobOutput::Label(label)),
                        JobStamps {
                            enqueued: job.enqueued_at,
                            pulled: job.pulled_at,
                            batch_start: now,
                            forward_start,
                            forward_end,
                        },
                    );
                }
            }
        }
    }
}

fn reply(job: &Job, result: Result<JobOutput, ServeError>, stamps: JobStamps) {
    job.reply.send(Completion::Job {
        req: job.req,
        slot: job.slot,
        result,
        stamps,
    });
}

/// Index of the largest entry, ties toward the first — matches
/// `WidenModel::predict_ensemble`'s tie-breaking exactly.
fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty class set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_core::{WidenConfig, WidenModel};
    use widen_data::{acm_like, Scale};

    fn tiny_registry() -> Arc<ModelRegistry> {
        let dataset = acm_like(Scale::Smoke, 5);
        let mut cfg = WidenConfig::small();
        cfg.d = 8;
        cfg.n_w = 4;
        cfg.n_d = 4;
        cfg.phi = 1;
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        Arc::new(ModelRegistry::from_model(dataset.graph, model))
    }

    fn job(kind: JobKind, node: u32, seed: u64, slot: usize, tx: &mpsc::Sender<Completion>) -> Job {
        let enqueued_at = Instant::now();
        Job {
            kind,
            node,
            seed,
            deadline: Instant::now() + Duration::from_secs(5),
            req: 0,
            slot,
            reply: ReplySink {
                tx: tx.clone(),
                wake: None,
            },
            enqueued_at,
            pulled_at: enqueued_at,
            trace: None,
        }
    }

    /// Unwraps the next per-job completion into `(slot, result)`.
    fn take(rx: &mpsc::Receiver<Completion>) -> (usize, Result<JobOutput, ServeError>) {
        match rx.recv().unwrap() {
            Completion::Job { slot, result, .. } => (slot, result),
            Completion::Direct { .. } => panic!("batcher never sends Direct completions"),
        }
    }

    #[test]
    fn completions_carry_ordered_lifecycle_stamps() {
        let registry = tiny_registry();
        let cache = Arc::new(EmbedCache::new(16));
        let stats = WorkerStats::new(&Registry::new());
        let (tx, rx) = mpsc::channel();
        process_batch(
            &registry,
            &cache,
            vec![job(JobKind::Embed, 0, 7, 0, &tx)],
            &stats,
        );
        let stamps = match rx.recv().unwrap() {
            Completion::Job { stamps, .. } => stamps,
            Completion::Direct { .. } => panic!("unexpected direct completion"),
        };
        assert!(stamps.enqueued <= stamps.pulled);
        assert!(stamps.pulled <= stamps.batch_start);
        assert!(stamps.batch_start <= stamps.forward_start);
        assert!(stamps.forward_start <= stamps.forward_end);
        // The always-on lifecycle histograms saw the job too.
        assert_eq!(stats.queue_wait_us.snapshot().count, 1);
        assert_eq!(stats.coalesce_us.snapshot().count, 1);
        assert_eq!(stats.forward_us.snapshot().count, 1);
    }

    #[test]
    fn traced_jobs_record_lookup_and_forward_spans() {
        let registry = tiny_registry();
        let cache = Arc::new(EmbedCache::new(16));
        let stats = WorkerStats::new(&Registry::new());
        let (tx, rx) = mpsc::channel();
        let trace = Arc::new(RequestTrace::new(0xABCD));
        let mut traced = job(JobKind::Embed, 0, 7, 0, &tx);
        traced.trace = Some(trace.clone());
        process_batch(&registry, &cache, vec![traced], &stats);
        take(&rx).1.unwrap();
        let spans = trace.spans.lock();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["serve.batcher.cache_lookup", "serve.batcher.forward_batch"]
        );
        // Offsets are relative to the request start and sequential.
        assert!(spans[0].start_ns + spans[0].dur_ns <= spans[1].start_ns);
        assert!(spans.iter().all(|s| s.parent == 0));
    }

    #[test]
    fn mixed_batch_answers_every_job_correctly() {
        let registry = tiny_registry();
        let cache = Arc::new(EmbedCache::new(16));
        let stats = WorkerStats::new(&Registry::new());
        let (tx, rx) = mpsc::channel();
        let jobs = vec![
            job(JobKind::Embed, 0, 7, 0, &tx),
            job(JobKind::Classify { rounds: 2 }, 1, 7, 1, &tx),
            job(JobKind::Embed, 2, 9, 2, &tx),
        ];
        process_batch(&registry, &cache, jobs, &stats);
        let mut results: Vec<_> = (0..3).map(|_| take(&rx)).collect();
        results.sort_by_key(|(slot, _)| *slot);

        let st = registry.read();
        let want_emb0 = st.model().embed_requests(st.graph(), &[(0, 7)]);
        match &results[0].1 {
            Ok(JobOutput::Embedding(row)) => assert_eq!(row.as_slice(), want_emb0.row(0)),
            other => panic!("unexpected {other:?}"),
        }
        let want_label = st.model().predict_ensemble(st.graph(), &[1], 7, 2)[0] as u32;
        match &results[1].1 {
            Ok(JobOutput::Label(l)) => assert_eq!(*l, want_label),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&results[2].1, Ok(JobOutput::Embedding(_))));
        assert_eq!(stats.jobs.get(), 3);
    }

    #[test]
    fn second_identical_embed_is_served_from_cache() {
        let registry = tiny_registry();
        let cache = Arc::new(EmbedCache::new(16));
        let stats = WorkerStats::new(&Registry::new());
        let (tx, rx) = mpsc::channel();
        process_batch(
            &registry,
            &cache,
            vec![job(JobKind::Embed, 3, 11, 0, &tx)],
            &stats,
        );
        let first = take(&rx).1.unwrap();
        process_batch(
            &registry,
            &cache,
            vec![job(JobKind::Embed, 3, 11, 0, &tx)],
            &stats,
        );
        let second = take(&rx).1.unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn duplicate_jobs_share_one_computation() {
        let registry = tiny_registry();
        let cache = Arc::new(EmbedCache::new(0));
        let stats = WorkerStats::new(&Registry::new());
        let (tx, rx) = mpsc::channel();
        // Three identical classify jobs + one identical embed pair.
        let jobs = vec![
            job(JobKind::Classify { rounds: 2 }, 4, 13, 0, &tx),
            job(JobKind::Classify { rounds: 2 }, 4, 13, 1, &tx),
            job(JobKind::Classify { rounds: 2 }, 4, 13, 2, &tx),
            job(JobKind::Embed, 6, 13, 3, &tx),
            job(JobKind::Embed, 6, 13, 4, &tx),
        ];
        process_batch(&registry, &cache, jobs, &stats);
        let mut results: Vec<_> = (0..5).map(|_| take(&rx)).collect();
        results.sort_by_key(|(slot, _)| *slot);

        let st = registry.read();
        let want_label = st.model().predict_ensemble(st.graph(), &[4], 13, 2)[0] as u32;
        for (_, r) in &results[..3] {
            assert_eq!(r, &Ok(JobOutput::Label(want_label)));
        }
        let want_row = st.model().embed_requests(st.graph(), &[(6, 13)]);
        for (_, r) in &results[3..] {
            match r {
                Ok(JobOutput::Embedding(row)) => assert_eq!(row.as_slice(), want_row.row(0)),
                other => panic!("unexpected {other:?}"),
            }
        }
        // 2 duplicate classifies + 1 duplicate embed were fanned out.
        assert_eq!(stats.dedup_hits.get(), 3);
    }

    #[test]
    fn expired_jobs_get_deadline_errors_without_compute() {
        let registry = tiny_registry();
        let cache = Arc::new(EmbedCache::new(16));
        let stats = WorkerStats::new(&Registry::new());
        let (tx, rx) = mpsc::channel();
        let mut expired = job(JobKind::Embed, 0, 1, 0, &tx);
        expired.deadline = Instant::now() - Duration::from_millis(1);
        process_batch(&registry, &cache, vec![expired], &stats);
        assert_eq!(take(&rx).1, Err(ServeError::DeadlineExceeded));
        assert_eq!(stats.deadline_drops.get(), 1);
    }
}
