//! Checkpoint-backed model registry: the bundle of graph, configuration
//! and restored weights every worker thread reads from.
//!
//! Since the streaming-graph work the registry is no longer immutable: the
//! `Ingest` wire op grows the served graph online, and
//! [`ModelRegistry::hot_swap`] replaces the weights with a new checkpoint
//! without restarting the server. Both go through one `RwLock` over the
//! whole [`ServingState`], so a batch that takes a single read guard sees
//! a consistent `(model, graph, digest)` snapshot — a swap can never land
//! between reading the digest and running the forward pass.

use std::time::Duration;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use rustc_hash::FxHashMap;
use widen_core::{WidenConfig, WidenModel};
use widen_graph::{greedy_bfs, EdgeTypeId, HeteroGraph, MutationError, NodeTypeId};
use widen_tensor::{digest64, BackendKind, CheckpointError};

/// Boundary-refinement passes used when partitioning the served graph,
/// matching the sharded trainer's choice.
const REFINEMENT_PASSES: usize = 2;

/// One shard's serving snapshot: the halo-expanded induced subgraph plus
/// the global→local id map for resolving requests against it.
///
/// The halo radius is the model's deep-walk length `N_d`, so sampling a
/// *core* node inside the snapshot (keyed by its global id) is bitwise
/// identical to sampling it on the full graph — a shard-routed embedding
/// equals the unsharded one and the two can share a cache.
pub struct ShardSnapshot {
    graph: HeteroGraph,
    /// Global node id → local id in `graph`. A plain map rather than the
    /// builder's `NodeMapping` because ingested nodes get ids beyond the
    /// original graph size and must still resolve.
    to_local: FxHashMap<u32, u32>,
}

impl ShardSnapshot {
    /// The shard's halo-expanded subgraph.
    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    /// Resolves a global node id to this snapshot's local id, if present.
    pub fn to_local(&self, global: u32) -> Option<u32> {
        self.to_local.get(&global).copied()
    }

    /// Number of nodes in the snapshot (core + halo).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// Shard routing state for a sharded registry: the partition assignment
/// over the global graph, one [`ShardSnapshot`] per shard, and the home
/// shard that absorbs requests no single shard can own.
///
/// Routing rules:
/// * embed/classify requests go to the owning shard (by assignment);
/// * an ingested node goes to the shard that owns *all* its edge
///   endpoints, else to the home shard;
/// * anything unresolvable falls back to the full global graph.
pub struct ShardMap {
    /// `assignment[v]` = owning shard of global node `v`; grows on ingest.
    assignment: Vec<u32>,
    /// Designated fallback shard for cross-shard requests.
    home: u32,
    shards: Vec<ShardSnapshot>,
    /// Halo radius the snapshots were built with (the model's `N_d`).
    radius: usize,
}

impl ShardMap {
    fn build(graph: &HeteroGraph, config: &WidenConfig, k: usize) -> Self {
        assert!(k >= 1, "shard count must be positive");
        assert!(
            k <= graph.num_nodes(),
            "cannot cut {} nodes into {k} shards",
            graph.num_nodes()
        );
        let radius = config.n_d.max(1);
        let partition = greedy_bfs(graph, k, REFINEMENT_PASSES);
        let shards = (0..k as u32)
            .map(|p| {
                let keep = partition.halo(graph, p, radius);
                let sub = graph.induced_subgraph(&keep);
                let to_local = keep
                    .iter()
                    .map(|&g| (g, sub.mapping.to_new(g).expect("kept node maps")))
                    .collect();
                ShardSnapshot {
                    graph: sub.graph,
                    to_local,
                }
            })
            .collect();
        Self {
            assignment: partition.assignment,
            home: 0,
            shards,
            radius,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The designated home shard for cross-shard fallbacks.
    pub fn home(&self) -> u32 {
        self.home
    }

    /// Halo radius the snapshots were built with.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Shard `p`'s snapshot.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn shard(&self, p: u32) -> &ShardSnapshot {
        &self.shards[p as usize]
    }

    /// The owning shard of `node` per the partition assignment, if known.
    pub fn owner(&self, node: u32) -> Option<u32> {
        self.assignment.get(node as usize).copied()
    }

    /// Routes a request for `node`: the owning shard when the node is
    /// resolvable there, else the home shard when resolvable *there*, else
    /// `None` — the caller computes on the full global graph.
    pub fn route(&self, node: u32) -> Option<u32> {
        if let Some(p) = self.owner(node) {
            if self.shards[p as usize].to_local.contains_key(&node) {
                return Some(p);
            }
        }
        if self.shards[self.home as usize].to_local.contains_key(&node) {
            return Some(self.home);
        }
        None
    }

    /// Picks the shard an ingested node lands in: the unanimous owner of
    /// all its edge endpoints when every endpoint also resolves in that
    /// shard's snapshot, else the home shard.
    fn ingest_owner(&self, edges: &[(u32, EdgeTypeId)]) -> u32 {
        let mut owner: Option<u32> = None;
        for &(peer, _) in edges {
            let Some(p) = self.owner(peer) else {
                return self.home;
            };
            match owner {
                None => owner = Some(p),
                Some(q) if q == p => {}
                Some(_) => return self.home,
            }
        }
        let owner = owner.unwrap_or(self.home);
        let snap = &self.shards[owner as usize];
        if edges
            .iter()
            .all(|&(peer, _)| snap.to_local.contains_key(&peer))
        {
            owner
        } else {
            self.home
        }
    }
}

/// The consistent snapshot a read guard exposes: model, graph, the
/// checkpoint digest identifying the model generation, and the graph
/// version identifying the mutation generation.
pub struct ServingState {
    model: WidenModel,
    graph: HeteroGraph,
    checkpoint_hash: u64,
    graph_version: u64,
    shard_map: Option<ShardMap>,
}

impl ServingState {
    /// The serving model.
    pub fn model(&self) -> &WidenModel {
        &self.model
    }

    /// The graph requests resolve node ids against.
    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    /// FNV-1a digest of the checkpoint bytes — the cache-key generation id.
    pub fn checkpoint_hash(&self) -> u64 {
        self.checkpoint_hash
    }

    /// Monotone mutation counter, bumped by every successful graph
    /// mutation (never by a weight swap). Part of the embedding cache key:
    /// a mutation anywhere in the graph can change the sampling stream of
    /// any node within the walk radius, so rows computed on an older graph
    /// version must never be served — versioning the key makes them
    /// unreachable without computing receptive fields.
    pub fn graph_version(&self) -> u64 {
        self.graph_version
    }

    /// The shard routing map, when this registry was built with
    /// [`ModelRegistry::with_shards`]; `None` means unsharded serving on
    /// the global graph.
    pub fn shards(&self) -> Option<&ShardMap> {
        self.shard_map.as_ref()
    }
}

/// What a successful [`ModelRegistry::ingest`] hands back: the assigned
/// node id, its embedding under the requested seed, and the generation
/// the embedding was computed under (for cache insertion).
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Id of the freshly added node.
    pub node: u32,
    /// The node's embedding, computed on the post-mutation graph.
    pub embedding: Vec<f32>,
    /// Checkpoint digest of the model that produced the embedding.
    pub checkpoint_hash: u64,
    /// Graph version the embedding was computed under (post-mutation).
    pub graph_version: u64,
    /// Shard the node was routed to, when the registry serves sharded.
    pub shard: Option<u32>,
}

/// A shareable serving bundle: graph + configuration + weights restored
/// through the fallible checkpoint path, behind one `RwLock` so the graph
/// can grow and the weights can be hot-swapped while requests are served.
pub struct ModelRegistry {
    state: RwLock<ServingState>,
}

impl ModelRegistry {
    /// Builds a registry by constructing a model for `graph`/`config` and
    /// restoring `checkpoint` through
    /// [`WidenModel::try_load_weights`].
    ///
    /// # Errors
    /// Returns the [`CheckpointError`] when the checkpoint is corrupt or
    /// does not match the model layout — malformed input never panics the
    /// server.
    pub fn from_checkpoint(
        graph: HeteroGraph,
        config: WidenConfig,
        checkpoint: &[u8],
    ) -> Result<Self, CheckpointError> {
        let mut model = WidenModel::for_graph(&graph, config);
        model.try_load_weights(checkpoint)?;
        Ok(Self {
            state: RwLock::new(ServingState {
                checkpoint_hash: digest64(checkpoint),
                model,
                graph,
                graph_version: 0,
                shard_map: None,
            }),
        })
    }

    /// Wraps an already-built model (e.g. freshly trained in-process). The
    /// checkpoint hash is derived from the model's serialised weights so
    /// cache keys stay consistent with
    /// [`ModelRegistry::from_checkpoint`].
    pub fn from_model(graph: HeteroGraph, model: WidenModel) -> Self {
        let checkpoint_hash = digest64(&model.save_weights());
        Self {
            state: RwLock::new(ServingState {
                model,
                graph,
                checkpoint_hash,
                graph_version: 0,
                shard_map: None,
            }),
        }
    }

    /// Splits the served graph into `k` halo-expanded shard snapshots and
    /// routes subsequent embed/classify/ingest requests to the owning
    /// shard (see [`ShardMap`]). Shard-routed embeddings are bitwise
    /// identical to unsharded ones for partition-time nodes, so caches
    /// keyed by `(node, checkpoint, graph_version, seed)` stay coherent.
    ///
    /// # Panics
    /// Panics if `k` is zero or exceeds the node count.
    pub fn with_shards(self, k: usize) -> Self {
        let mut state = self.state.into_inner();
        state.shard_map = Some(ShardMap::build(&state.graph, &state.model.config, k));
        Self {
            state: RwLock::new(state),
        }
    }

    /// Number of serving shards (1 when unsharded).
    pub fn num_shards(&self) -> usize {
        self.state
            .read()
            .shard_map
            .as_ref()
            .map_or(1, ShardMap::num_shards)
    }

    /// Pins the dense GEMM kernel backend every forward pass served from
    /// this registry dispatches through. The choice is per loaded model —
    /// two registries in one process can serve on different backends.
    pub fn with_backend(self, backend: BackendKind) -> Self {
        let mut state = self.state.into_inner();
        state.model.config.backend = backend;
        Self {
            state: RwLock::new(state),
        }
    }

    /// The kernel backend this registry's forward passes run on.
    pub fn backend(&self) -> BackendKind {
        self.state.read().model.config.backend
    }

    /// A consistent `(model, graph, digest)` snapshot. Workers take one
    /// guard per batch: everything computed under it belongs to a single
    /// model generation and graph version.
    pub fn read(&self) -> RwLockReadGuard<'_, ServingState> {
        self.state.read()
    }

    /// FNV-1a digest of the current checkpoint bytes.
    pub fn checkpoint_hash(&self) -> u64 {
        self.state.read().checkpoint_hash
    }

    /// Current graph mutation counter (see
    /// [`ServingState::graph_version`]).
    pub fn graph_version(&self) -> u64 {
        self.state.read().graph_version
    }

    /// Whether `node` exists in the served graph.
    pub fn contains_node(&self, node: u32) -> bool {
        (node as usize) < self.state.read().graph.num_nodes()
    }

    /// Streams one never-seen node into the served graph and embeds it in
    /// the same critical section: the node, its typed edges, and the
    /// returned embedding all belong to one graph version, and the
    /// embedding is bit-identical to what an `Embed` request for the new
    /// id would compute afterwards (same graph, same weights, same seed).
    ///
    /// # Errors
    /// Returns the graph's typed [`MutationError`] (bad node/edge type,
    /// feature-dimension mismatch, out-of-range peer, …); the graph is
    /// untouched on error.
    pub fn ingest(
        &self,
        node_type: NodeTypeId,
        features: Vec<f32>,
        label: Option<u16>,
        edges: &[(u32, EdgeTypeId)],
        seed: u64,
    ) -> Result<IngestOutcome, MutationError> {
        Self::ingest_locked(
            &mut self.state.write(),
            node_type,
            features,
            label,
            edges,
            seed,
        )
    }

    /// Like [`ModelRegistry::ingest`], but gives up after waiting
    /// `timeout` for the write lock (e.g. behind long read-guarded
    /// batches) instead of blocking indefinitely. `None` means the lock
    /// was never acquired and the graph is untouched — the serve path maps
    /// it to `DeadlineExceeded`.
    ///
    /// # Errors
    /// `Some(Err(_))` carries the same [`MutationError`]s as
    /// [`ModelRegistry::ingest`].
    pub fn try_ingest_for(
        &self,
        node_type: NodeTypeId,
        features: Vec<f32>,
        label: Option<u16>,
        edges: &[(u32, EdgeTypeId)],
        seed: u64,
        timeout: Duration,
    ) -> Option<Result<IngestOutcome, MutationError>> {
        let mut st = self.state.try_write_for(timeout)?;
        Some(Self::ingest_locked(
            &mut st, node_type, features, label, edges, seed,
        ))
    }

    fn ingest_locked(
        st: &mut RwLockWriteGuard<'_, ServingState>,
        node_type: NodeTypeId,
        features: Vec<f32>,
        label: Option<u16>,
        edges: &[(u32, EdgeTypeId)],
        seed: u64,
    ) -> Result<IngestOutcome, MutationError> {
        // Split-borrow through the guard so the shard map and the model can
        // be borrowed independently below.
        let st: &mut ServingState = &mut *st;
        let mirror = st.shard_map.is_some().then(|| features.clone());
        let node = st
            .graph
            .add_node_with_edges(node_type, features, label, edges)?;
        // Bump before embedding so the outcome's version is exactly the
        // version the embedding was computed under.
        st.graph_version += 1;
        // Mirror the node into its owning shard's snapshot. The global
        // graph stays the source of truth; edges whose far endpoint is not
        // in the owner's halo are dropped from the snapshot (documented
        // staleness, healed by a shard rebuild).
        let routed = if let Some(map) = &mut st.shard_map {
            let p = map.ingest_owner(edges);
            let snap = &mut map.shards[p as usize];
            let local_edges: Vec<(u32, EdgeTypeId)> = edges
                .iter()
                .filter_map(|&(peer, t)| snap.to_local.get(&peer).map(|&l| (l, t)))
                .collect();
            let local = snap
                .graph
                .add_node_with_edges(
                    node_type,
                    mirror.expect("mirror features cloned for sharded ingest"),
                    label,
                    &local_edges,
                )
                .expect("snapshot mirror of an already-validated mutation");
            snap.to_local.insert(node, local);
            debug_assert_eq!(map.assignment.len(), node as usize);
            map.assignment.push(p);
            Some((p, local))
        } else {
            None
        };
        let (embedding, shard) = match routed {
            Some((p, local)) => {
                let map = st.shard_map.as_ref().expect("routed implies sharded");
                let rows = st
                    .model
                    .embed_requests_keyed(&map.shards[p as usize].graph, &[(local, node, seed)]);
                (rows.row(0).to_vec(), Some(p))
            }
            None => {
                let rows = st.model.embed_requests(&st.graph, &[(node, seed)]);
                (rows.row(0).to_vec(), None)
            }
        };
        Ok(IngestOutcome {
            node,
            embedding,
            checkpoint_hash: st.checkpoint_hash,
            graph_version: st.graph_version,
            shard,
        })
    }

    /// Replaces the serving weights with `checkpoint`, keyed by its
    /// digest, without restarting the server. The new model is built and
    /// validated against the *current* graph before the old one is
    /// dropped; in-flight batches holding a read guard finish on the old
    /// generation, later batches see the new one. Returns the new digest
    /// so the caller can flush caches keyed by generation.
    ///
    /// # Errors
    /// Returns the [`CheckpointError`] and leaves the registry serving the
    /// old weights when the checkpoint is corrupt or mismatched.
    pub fn hot_swap(&self, checkpoint: &[u8]) -> Result<u64, CheckpointError> {
        let mut st = self.state.write();
        let config = st.model.config.clone();
        let mut model = WidenModel::for_graph(&st.graph, config);
        model.try_load_weights(checkpoint)?;
        st.model = model;
        st.checkpoint_hash = digest64(checkpoint);
        Ok(st.checkpoint_hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};

    fn tiny_config() -> WidenConfig {
        let mut c = WidenConfig::small();
        c.d = 8;
        c.n_w = 4;
        c.n_d = 4;
        c.phi = 1;
        c
    }

    #[test]
    fn checkpoint_round_trip_through_registry() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let checkpoint = model.save_weights();
        let registry =
            ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &checkpoint)
                .expect("valid checkpoint");
        assert_eq!(registry.checkpoint_hash(), digest64(&checkpoint));
        // Weights actually restored: embeddings agree bit-for-bit.
        let a = model.embed_nodes(&dataset.graph, &[0, 1], 5);
        let st = registry.read();
        let b = st.model().embed_nodes(st.graph(), &[0, 1], 5);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        drop(st);
        assert!(registry.contains_node(0));
        assert!(!registry.contains_node(u32::MAX));
    }

    #[test]
    fn backend_pin_is_per_registry_and_embeddings_agree() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let checkpoint = model.save_weights();
        let reference =
            ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &checkpoint)
                .expect("valid checkpoint")
                .with_backend(BackendKind::Reference);
        let optimized =
            ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &checkpoint)
                .expect("valid checkpoint")
                .with_backend(BackendKind::Optimized);
        assert_eq!(reference.backend(), BackendKind::Reference);
        assert_eq!(optimized.backend(), BackendKind::Optimized);
        let (ra, rb) = (reference.read(), optimized.read());
        let a = ra.model().embed_nodes(ra.graph(), &[0, 1], 5);
        let b = rb.model().embed_nodes(rb.graph(), &[0, 1], 5);
        let diff = a.max_abs_diff(&b);
        assert!(diff <= 1e-5, "backend embeddings diverged: {diff}");
    }

    #[test]
    fn malformed_checkpoint_is_an_error_not_a_panic() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let mut checkpoint = model.save_weights().to_vec();
        checkpoint[20] ^= 0xFF;
        let result = ModelRegistry::from_checkpoint(dataset.graph, tiny_config(), &checkpoint);
        assert!(result.is_err());
    }

    #[test]
    fn from_model_hash_matches_from_checkpoint() {
        let dataset = acm_like(Scale::Smoke, 4);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let checkpoint = model.save_weights();
        let via_model = ModelRegistry::from_model(dataset.graph.clone(), model);
        let via_ckpt =
            ModelRegistry::from_checkpoint(dataset.graph, tiny_config(), &checkpoint).unwrap();
        assert_eq!(via_model.checkpoint_hash(), via_ckpt.checkpoint_hash());
    }

    #[test]
    fn ingest_grows_graph_and_matches_post_hoc_embed() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let registry = ModelRegistry::from_model(dataset.graph.clone(), model);
        let before = dataset.graph.num_nodes() as u32;
        let peers: Vec<(u32, EdgeTypeId)> = vec![(0, EdgeTypeId(0)), (1, EdgeTypeId(0))];
        let out = registry
            .ingest(
                NodeTypeId(0),
                vec![0.25; dataset.graph.feature_dim()],
                None,
                &peers,
                42,
            )
            .expect("valid ingest");
        assert_eq!(out.node, before);
        assert!(registry.contains_node(before));
        // Bit-identical to embedding the node again on the mutated graph.
        let st = registry.read();
        let again = st.model().embed_requests(st.graph(), &[(out.node, 42)]);
        assert_eq!(out.embedding.as_slice(), again.row(0));
        assert_eq!(out.checkpoint_hash, st.checkpoint_hash());
        assert_eq!(out.graph_version, st.graph_version());
    }

    #[test]
    fn ingest_bumps_graph_version_only_on_success() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let registry = ModelRegistry::from_model(dataset.graph.clone(), model);
        assert_eq!(registry.graph_version(), 0);
        let feat = vec![0.1; dataset.graph.feature_dim()];
        let out = registry
            .ingest(NodeTypeId(0), feat.clone(), None, &[(0, EdgeTypeId(0))], 1)
            .expect("valid ingest");
        assert_eq!(out.graph_version, 1);
        assert_eq!(registry.graph_version(), 1);
        // A rejected mutation leaves the version (and the graph) untouched.
        registry
            .ingest(NodeTypeId(0), feat, None, &[(u32::MAX, EdgeTypeId(0))], 1)
            .unwrap_err();
        assert_eq!(registry.graph_version(), 1);
        // A weight swap changes the digest, not the graph version.
        let ckpt = registry.read().model().save_weights();
        registry.hot_swap(&ckpt).expect("valid checkpoint");
        assert_eq!(registry.graph_version(), 1);
    }

    #[test]
    fn try_ingest_times_out_behind_a_held_guard_without_mutating() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let registry = ModelRegistry::from_model(dataset.graph.clone(), model);
        let n = dataset.graph.num_nodes();
        let feat = vec![0.1; dataset.graph.feature_dim()];
        let guard = registry.read();
        let attempt = registry.try_ingest_for(
            NodeTypeId(0),
            feat.clone(),
            None,
            &[(0, EdgeTypeId(0))],
            1,
            std::time::Duration::from_millis(10),
        );
        assert!(attempt.is_none(), "write lock must not be granted");
        drop(guard);
        assert_eq!(registry.read().graph().num_nodes(), n);
        assert_eq!(registry.graph_version(), 0);
        // With the guard gone the same call succeeds within the deadline.
        let out = registry
            .try_ingest_for(
                NodeTypeId(0),
                feat,
                None,
                &[(0, EdgeTypeId(0))],
                1,
                std::time::Duration::from_millis(500),
            )
            .expect("lock acquired")
            .expect("valid ingest");
        assert_eq!(out.node, n as u32);
        assert_eq!(out.graph_version, 1);
    }

    #[test]
    fn ingest_rejects_bad_input_without_mutating() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let registry = ModelRegistry::from_model(dataset.graph.clone(), model);
        let n = dataset.graph.num_nodes();
        let err = registry
            .ingest(
                NodeTypeId(0),
                vec![0.0; dataset.graph.feature_dim()],
                None,
                &[(u32::MAX, EdgeTypeId(0))],
                1,
            )
            .unwrap_err();
        assert!(matches!(err, MutationError::EndpointOutOfRange { .. }));
        assert_eq!(registry.read().graph().num_nodes(), n);
    }

    #[test]
    fn hot_swap_changes_generation_and_weights() {
        let dataset = acm_like(Scale::Smoke, 3);
        let mut cfg_b = tiny_config();
        cfg_b.seed = 999; // different init → different weights
        let model_a = WidenModel::for_graph(&dataset.graph, tiny_config());
        let model_b = WidenModel::for_graph(&dataset.graph, cfg_b);
        let ckpt_b = model_b.save_weights();
        let registry = ModelRegistry::from_model(dataset.graph.clone(), model_a);
        let gen_a = registry.checkpoint_hash();
        let embed_a = {
            let st = registry.read();
            st.model().embed_requests(st.graph(), &[(0, 7)])
        };
        let gen_b = registry.hot_swap(&ckpt_b).expect("valid checkpoint");
        assert_ne!(gen_a, gen_b);
        assert_eq!(registry.checkpoint_hash(), gen_b);
        let st = registry.read();
        let embed_b = st.model().embed_requests(st.graph(), &[(0, 7)]);
        assert!(
            embed_a.max_abs_diff(&embed_b) > 0.0,
            "swap must change output"
        );
        // The swapped generation serves exactly model_b's answers.
        let want = model_b.embed_requests(st.graph(), &[(0, 7)]);
        assert_eq!(embed_b.max_abs_diff(&want), 0.0);
    }

    #[test]
    fn sharded_embeddings_match_unsharded_bitwise() {
        let dataset = acm_like(Scale::Smoke, 6);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let registry = ModelRegistry::from_model(dataset.graph.clone(), model).with_shards(3);
        assert_eq!(registry.num_shards(), 3);
        let st = registry.read();
        let map = st.shards().expect("sharded registry");
        for node in (0..dataset.graph.num_nodes() as u32).step_by(11) {
            let p = map.route(node).expect("partition-time node routes");
            assert_eq!(Some(p), map.owner(node), "core node routes to its owner");
            let snap = map.shard(p);
            let local = snap.to_local(node).expect("core node resolves");
            let full = st.model().embed_requests(st.graph(), &[(node, 9)]);
            let routed = st
                .model()
                .embed_requests_keyed(snap.graph(), &[(local, node, 9)]);
            assert_eq!(
                full.max_abs_diff(&routed),
                0.0,
                "shard-routed embedding diverged at node {node}"
            );
        }
    }

    #[test]
    fn sharded_ingest_routes_by_endpoint_ownership() {
        let dataset = acm_like(Scale::Smoke, 7);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let registry = ModelRegistry::from_model(dataset.graph.clone(), model).with_shards(2);
        let feat = vec![0.2; dataset.graph.feature_dim()];
        let (owner_of, home) = {
            let st = registry.read();
            let map = st.shards().unwrap();
            (map.assignment.clone(), map.home())
        };
        // A node from each shard, to build single-shard and spanning edges.
        let a = owner_of.iter().position(|&p| p != home).unwrap() as u32;
        let b = owner_of.iter().position(|&p| p == home).unwrap() as u32;

        // All endpoints in shard owner(a) → routed there.
        let single = registry
            .ingest(NodeTypeId(0), feat.clone(), None, &[(a, EdgeTypeId(0))], 1)
            .expect("valid ingest");
        assert_eq!(single.shard, Some(owner_of[a as usize]));

        // Endpoints spanning both shards → routed to the home shard.
        let spanning = registry
            .ingest(
                NodeTypeId(0),
                feat.clone(),
                None,
                &[(a, EdgeTypeId(0)), (b, EdgeTypeId(0))],
                1,
            )
            .expect("valid ingest");
        assert_eq!(spanning.shard, Some(home));

        // Both ingested nodes route to their landing shard afterwards and
        // the warm embedding is what a routed Embed would recompute.
        let st = registry.read();
        let map = st.shards().unwrap();
        for out in [&single, &spanning] {
            let p = map.route(out.node).expect("ingested node routes");
            assert_eq!(Some(p), out.shard);
            let snap = map.shard(p);
            let local = snap.to_local(out.node).expect("ingested node resolves");
            let again = st
                .model()
                .embed_requests_keyed(snap.graph(), &[(local, out.node, 1)]);
            assert_eq!(out.embedding.as_slice(), again.row(0));
        }
    }

    #[test]
    fn hot_swap_rejects_bad_checkpoint_and_keeps_serving() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let good = model.save_weights();
        let registry = ModelRegistry::from_model(dataset.graph, model);
        let generation = registry.checkpoint_hash();
        let mut bad = good.to_vec();
        bad[16] ^= 0xFF;
        assert!(registry.hot_swap(&bad).is_err());
        assert_eq!(registry.checkpoint_hash(), generation);
    }
}
