//! Checkpoint-backed model registry: the immutable bundle of graph,
//! configuration and restored weights every worker thread reads from.

use widen_core::{WidenConfig, WidenModel};
use widen_graph::HeteroGraph;
use widen_tensor::{digest64, BackendKind, CheckpointError};

/// An immutable, shareable serving model: graph metadata + configuration
/// + weights restored through the fallible checkpoint path.
///
/// The registry is constructed once and only ever read afterwards, so it
/// can sit behind a plain `Arc` with no locking on the hot path.
pub struct ModelRegistry {
    model: WidenModel,
    graph: HeteroGraph,
    checkpoint_hash: u64,
}

impl ModelRegistry {
    /// Builds a registry by constructing a model for `graph`/`config` and
    /// restoring `checkpoint` through
    /// [`WidenModel::try_load_weights`].
    ///
    /// # Errors
    /// Returns the [`CheckpointError`] when the checkpoint is corrupt or
    /// does not match the model layout — malformed input never panics the
    /// server.
    pub fn from_checkpoint(
        graph: HeteroGraph,
        config: WidenConfig,
        checkpoint: &[u8],
    ) -> Result<Self, CheckpointError> {
        let mut model = WidenModel::for_graph(&graph, config);
        model.try_load_weights(checkpoint)?;
        Ok(Self {
            checkpoint_hash: digest64(checkpoint),
            model,
            graph,
        })
    }

    /// Wraps an already-built model (e.g. freshly trained in-process). The
    /// checkpoint hash is derived from the model's serialised weights so
    /// cache keys stay consistent with
    /// [`ModelRegistry::from_checkpoint`].
    pub fn from_model(graph: HeteroGraph, model: WidenModel) -> Self {
        let checkpoint_hash = digest64(&model.save_weights());
        Self {
            model,
            graph,
            checkpoint_hash,
        }
    }

    /// Pins the dense GEMM kernel backend every forward pass served from
    /// this registry dispatches through. The choice is per loaded model —
    /// two registries in one process can serve on different backends —
    /// and is immutable once the registry goes behind its `Arc`.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.model.config.backend = backend;
        self
    }

    /// The kernel backend this registry's forward passes run on.
    pub fn backend(&self) -> BackendKind {
        self.model.config.backend
    }

    /// The serving model.
    pub fn model(&self) -> &WidenModel {
        &self.model
    }

    /// The graph requests resolve node ids against.
    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    /// FNV-1a digest of the checkpoint bytes — the cache-key generation id.
    pub fn checkpoint_hash(&self) -> u64 {
        self.checkpoint_hash
    }

    /// Whether `node` exists in the served graph.
    pub fn contains_node(&self, node: u32) -> bool {
        (node as usize) < self.graph.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_data::{acm_like, Scale};

    fn tiny_config() -> WidenConfig {
        let mut c = WidenConfig::small();
        c.d = 8;
        c.n_w = 4;
        c.n_d = 4;
        c.phi = 1;
        c
    }

    #[test]
    fn checkpoint_round_trip_through_registry() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let checkpoint = model.save_weights();
        let registry =
            ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &checkpoint)
                .expect("valid checkpoint");
        assert_eq!(registry.checkpoint_hash(), digest64(&checkpoint));
        // Weights actually restored: embeddings agree bit-for-bit.
        let a = model.embed_nodes(&dataset.graph, &[0, 1], 5);
        let b = registry.model().embed_nodes(registry.graph(), &[0, 1], 5);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(registry.contains_node(0));
        assert!(!registry.contains_node(u32::MAX));
    }

    #[test]
    fn backend_pin_is_per_registry_and_embeddings_agree() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let checkpoint = model.save_weights();
        let reference =
            ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &checkpoint)
                .expect("valid checkpoint")
                .with_backend(BackendKind::Reference);
        let optimized =
            ModelRegistry::from_checkpoint(dataset.graph.clone(), tiny_config(), &checkpoint)
                .expect("valid checkpoint")
                .with_backend(BackendKind::Optimized);
        assert_eq!(reference.backend(), BackendKind::Reference);
        assert_eq!(optimized.backend(), BackendKind::Optimized);
        let a = reference.model().embed_nodes(reference.graph(), &[0, 1], 5);
        let b = optimized.model().embed_nodes(optimized.graph(), &[0, 1], 5);
        let diff = a.max_abs_diff(&b);
        assert!(diff <= 1e-5, "backend embeddings diverged: {diff}");
    }

    #[test]
    fn malformed_checkpoint_is_an_error_not_a_panic() {
        let dataset = acm_like(Scale::Smoke, 3);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let mut checkpoint = model.save_weights().to_vec();
        checkpoint[20] ^= 0xFF;
        let result = ModelRegistry::from_checkpoint(dataset.graph, tiny_config(), &checkpoint);
        assert!(result.is_err());
    }

    #[test]
    fn from_model_hash_matches_from_checkpoint() {
        let dataset = acm_like(Scale::Smoke, 4);
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let checkpoint = model.save_weights();
        let via_model = ModelRegistry::from_model(dataset.graph.clone(), model);
        let via_ckpt =
            ModelRegistry::from_checkpoint(dataset.graph, tiny_config(), &checkpoint).unwrap();
        assert_eq!(via_model.checkpoint_hash(), via_ckpt.checkpoint_hash());
    }
}
