//! Bounded LRU cache for served embeddings.
//!
//! Keyed by `(node, checkpoint_hash, graph_version, seed)` — the full
//! determinism contract of an embedding request. The checkpoint hash
//! (FNV-1a over the exact checkpoint bytes, see
//! [`widen_tensor::digest64`]) makes entries from a previous model
//! generation unreachable without an explicit flush, and the graph
//! version (the registry's mutation counter) does the same for entries
//! computed on an older graph: embeddings come from deep walks, so a
//! mutation can change the sampling stream of any node within the walk
//! radius of the touched endpoints, not just the endpoints themselves.
//! Rather than computing receptive fields, every mutation bumps the
//! version and every pre-mutation key simply stops being asked for.

use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use widen_obs::{Counter, Registry};

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// An O(1) least-recently-used map: intrusive doubly-linked list over a
/// slab, with an `FxHashMap` index. Capacity 0 disables caching entirely.
pub struct Lru<K, V> {
    map: FxHashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    cap: usize,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    /// A cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            slab: Vec::with_capacity(cap.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if idx != self.head {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.slab[idx].value)
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used
    /// entry when full. A zero-capacity cache drops everything.
    pub fn insert(&mut self, key: K, value: V) {
        if self.cap == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if idx != self.head {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        if self.map.len() >= self.cap {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.slab[idx] = Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }
}

/// Cache key: the complete identity of a served embedding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EmbedKey {
    /// Target node.
    pub node: u32,
    /// [`widen_tensor::digest64`] of the model's checkpoint bytes.
    pub checkpoint_hash: u64,
    /// The registry's graph mutation counter at compute time. Any graph
    /// mutation bumps it, so rows computed on an older graph — whose
    /// sampling streams the mutation may have changed anywhere within the
    /// walk radius — become unreachable.
    pub graph_version: u64,
    /// Neighbourhood sampling seed.
    pub seed: u64,
}

/// Hit/miss counters, exported through server stats.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the model.
    pub misses: u64,
}

/// Thread-safe embedding cache shared by all batcher workers.
pub struct EmbedCache {
    inner: Mutex<(Lru<EmbedKey, Vec<f32>>, CacheStats)>,
    counters: Option<(Arc<Counter>, Arc<Counter>)>,
}

impl EmbedCache {
    /// A cache holding at most `cap` embeddings (0 disables caching).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new((Lru::new(cap), CacheStats::default())),
            counters: None,
        }
    }

    /// Like [`EmbedCache::new`], but mirrors hits and misses into
    /// `metrics` as `serve_cache_hits_total` / `serve_cache_misses_total`.
    pub fn with_metrics(cap: usize, metrics: &Registry) -> Self {
        Self {
            counters: Some((
                metrics.counter("serve_cache_hits_total"),
                metrics.counter("serve_cache_misses_total"),
            )),
            ..Self::new(cap)
        }
    }

    /// Cached embedding for `key`, if present.
    pub fn get(&self, key: &EmbedKey) -> Option<Vec<f32>> {
        let mut guard = self.inner.lock();
        let (lru, stats) = &mut *guard;
        let hit = lru.get(key).cloned();
        if hit.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        drop(guard);
        match (&hit, &self.counters) {
            (Some(_), Some((hits, _))) => hits.inc(),
            (None, Some((_, misses))) => misses.inc(),
            _ => {}
        }
        hit
    }

    /// Stores an embedding.
    pub fn insert(&self, key: EmbedKey, value: Vec<f32>) {
        self.inner.lock().0.insert(key, value);
    }

    /// Drops every cached embedding, keeping capacity and hit/miss
    /// counters. Called on checkpoint hot-swap and graph mutation: the
    /// digest- and version-keyed entries from the old generation would
    /// already be unreachable, but flushing eagerly returns their memory
    /// (an O(1) slab replacement, cheap enough to run per ingest) and
    /// guarantees a stale row can never be served, even by a future key
    /// collision.
    pub fn clear(&self) {
        let mut guard = self.inner.lock();
        let cap = guard.0.capacity();
        guard.0 = Lru::new(cap);
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().1
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().0.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(&1)); // promote a
        lru.insert("c", 3); // evicts b
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn refresh_updates_value_and_recency() {
        let mut lru = Lru::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        lru.insert("a", 10); // refresh: a becomes MRU
        lru.insert("c", 3); // evicts b
        assert_eq!(lru.get(&"a"), Some(&10));
        assert_eq!(lru.get(&"b"), None);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut lru = Lru::new(0);
        lru.insert("a", 1);
        assert_eq!(lru.get(&"a"), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn slab_reuse_keeps_len_bounded() {
        let mut lru = Lru::new(3);
        for i in 0..100u32 {
            lru.insert(i, i * 2);
        }
        assert_eq!(lru.len(), 3);
        for i in 97..100 {
            assert_eq!(lru.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn graph_version_is_part_of_the_key() {
        let cache = EmbedCache::new(16);
        let key = EmbedKey {
            node: 1,
            checkpoint_hash: 0xA,
            graph_version: 0,
            seed: 7,
        };
        cache.insert(key, vec![1.0]);
        assert!(cache.get(&key).is_some());
        // A graph mutation bumps the version: the old row is unreachable
        // under the new version, for the same node, digest and seed.
        let bumped = EmbedKey {
            graph_version: 1,
            ..key
        };
        assert!(cache.get(&bumped).is_none());
        // …and the old key still answers for readers of the old version.
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn clear_flushes_entries_but_keeps_capacity_and_counters() {
        let cache = EmbedCache::new(4);
        let key = EmbedKey {
            node: 1,
            checkpoint_hash: 1,
            graph_version: 0,
            seed: 1,
        };
        cache.insert(key, vec![1.0]);
        assert!(cache.get(&key).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(&key).is_none());
        cache.insert(key, vec![2.0]);
        assert_eq!(cache.get(&key), Some(vec![2.0]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn embed_cache_counts_hits_and_misses() {
        let cache = EmbedCache::new(8);
        let key = EmbedKey {
            node: 1,
            checkpoint_hash: 0xAB,
            graph_version: 0,
            seed: 7,
        };
        assert!(cache.get(&key).is_none());
        cache.insert(key, vec![1.0, 2.0]);
        assert_eq!(cache.get(&key), Some(vec![1.0, 2.0]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A different checkpoint generation misses.
        let other = EmbedKey {
            checkpoint_hash: 0xCD,
            ..key
        };
        assert!(cache.get(&other).is_none());
    }
}
