//! Plain-text import/export of heterogeneous graphs.
//!
//! A graph is exchanged as a self-describing TSV document so that users can
//! bring their own data (or inspect generated datasets) without binary
//! tooling:
//!
//! ```text
//! #node_types<TAB>paper<TAB>author
//! #edge_types<TAB>writes
//! #classes<TAB>3
//! N<TAB><id><TAB><type-name><TAB><label|-><TAB><f0,f1,...>
//! E<TAB><src><TAB><dst><TAB><edge-type-name>
//! ```
//!
//! Node ids must be dense `0..n` and appear in order; edges are undirected
//! (one line per logical edge). `write_tsv` → `read_tsv` round-trips
//! exactly.

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::graph::HeteroGraph;

/// Errors raised while parsing a graph TSV document.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem, with line number and message.
    Parse(usize, String),
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "io error: {e}"),
            GraphIoError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Serialises a graph to the TSV format.
///
/// # Errors
/// Propagates writer IO errors.
pub fn write_tsv<W: Write>(graph: &HeteroGraph, mut out: W) -> Result<(), GraphIoError> {
    let node_types: Vec<String> = (0..graph.num_node_types())
        .map(|t| {
            graph
                .node_type_name(crate::NodeTypeId(t as u16))
                .to_string()
        })
        .collect();
    let edge_types: Vec<String> = (0..graph.num_edge_types())
        .map(|t| {
            graph
                .edge_type_name(crate::EdgeTypeId(t as u16))
                .to_string()
        })
        .collect();
    writeln!(out, "#node_types\t{}", node_types.join("\t"))?;
    writeln!(out, "#edge_types\t{}", edge_types.join("\t"))?;
    writeln!(out, "#classes\t{}", graph.num_classes())?;
    for v in 0..graph.num_nodes() as u32 {
        let label = graph
            .label(v)
            .map_or_else(|| "-".to_string(), |l| l.to_string());
        let features: Vec<String> = graph
            .feature_row(v)
            .iter()
            .map(|x| format!("{x}"))
            .collect();
        writeln!(
            out,
            "N\t{v}\t{}\t{label}\t{}",
            node_types[graph.node_type(v).0 as usize],
            features.join(",")
        )?;
    }
    for v in 0..graph.num_nodes() as u32 {
        let types = graph.edge_types_of(v);
        for (k, &u) in graph.neighbors(v).iter().enumerate() {
            if v < u {
                writeln!(out, "E\t{v}\t{u}\t{}", edge_types[types[k] as usize])?;
            }
        }
    }
    Ok(())
}

/// Parses a graph from the TSV format.
///
/// # Errors
/// Returns a located [`GraphIoError::Parse`] on any malformed content.
pub fn read_tsv<R: BufRead>(reader: R) -> Result<HeteroGraph, GraphIoError> {
    let mut node_types: Vec<String> = Vec::new();
    let mut edge_types: Vec<String> = Vec::new();
    let mut classes = 0usize;
    let mut builder: Option<GraphBuilder> = None;
    let mut expected_id: u32 = 0;

    let parse = |line_no: usize, msg: &str| GraphIoError::Parse(line_no, msg.to_string());

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "#node_types" => node_types = fields[1..].iter().map(|s| s.to_string()).collect(),
            "#edge_types" => edge_types = fields[1..].iter().map(|s| s.to_string()).collect(),
            "#classes" => {
                classes = fields
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse(line_no, "bad #classes"))?;
            }
            "N" => {
                if builder.is_none() {
                    if node_types.is_empty() || edge_types.is_empty() {
                        return Err(parse(line_no, "headers must precede nodes"));
                    }
                    builder =
                        Some(GraphBuilder::new(&node_types, &edge_types).with_classes(classes));
                }
                let b = builder.as_mut().expect("initialised above");
                if fields.len() != 5 {
                    return Err(parse(line_no, "node line needs 5 fields"));
                }
                let id: u32 = fields[1]
                    .parse()
                    .map_err(|_| parse(line_no, "bad node id"))?;
                if id != expected_id {
                    return Err(parse(line_no, "node ids must be dense and ordered"));
                }
                expected_id += 1;
                let ntype = b
                    .node_type(fields[2])
                    .map_err(|e| parse(line_no, &e.to_string()))?;
                let label = match fields[3] {
                    "-" => None,
                    s => Some(s.parse().map_err(|_| parse(line_no, "bad label"))?),
                };
                let features: Vec<f32> = if fields[4].is_empty() {
                    Vec::new()
                } else {
                    fields[4]
                        .split(',')
                        .map(|s| s.parse().map_err(|_| parse(line_no, "bad feature")))
                        .collect::<Result<_, _>>()?
                };
                b.add_node(ntype, features, label);
            }
            "E" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse(line_no, "edge before any node"))?;
                if fields.len() != 4 {
                    return Err(parse(line_no, "edge line needs 4 fields"));
                }
                let src: u32 = fields[1]
                    .parse()
                    .map_err(|_| parse(line_no, "bad edge src"))?;
                let dst: u32 = fields[2]
                    .parse()
                    .map_err(|_| parse(line_no, "bad edge dst"))?;
                let etype = b
                    .edge_type(fields[3])
                    .map_err(|e| parse(line_no, &e.to_string()))?;
                b.add_edge(src, dst, etype);
            }
            other => return Err(parse(line_no, &format!("unknown record `{other}`"))),
        }
    }
    builder
        .map(GraphBuilder::build)
        .ok_or_else(|| GraphIoError::Parse(0, "document contained no nodes".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> HeteroGraph {
        let mut b = GraphBuilder::new(&["paper", "author"], &["writes"]).with_classes(2);
        let p = b.node_type("paper").unwrap();
        let a = b.node_type("author").unwrap();
        let w = b.edge_type("writes").unwrap();
        let n0 = b.add_node(p, vec![0.5, -1.25], Some(1));
        let n1 = b.add_node(a, vec![2.0, 0.0], None);
        let n2 = b.add_node(p, vec![0.0, 3.5], Some(0));
        b.add_edge(n0, n1, w);
        b.add_edge(n1, n2, w);
        b.build()
    }

    #[test]
    fn round_trip_is_exact() {
        let g = sample();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let back = read_tsv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.num_classes(), g.num_classes());
        for v in 0..g.num_nodes() as u32 {
            assert_eq!(back.node_type(v), g.node_type(v));
            assert_eq!(back.label(v), g.label(v));
            assert_eq!(back.feature_row(v), g.feature_row(v));
            let mut a = back.neighbors(v).to_vec();
            let mut b = g.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn text_format_is_human_readable() {
        let g = sample();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("#node_types\tpaper\tauthor"));
        assert!(text.contains("N\t0\tpaper\t1\t0.5,-1.25"));
        assert!(text.contains("E\t0\t1\twrites"));
    }

    #[test]
    fn malformed_documents_are_located() {
        let doc = "#node_types\tx\n#edge_types\te\n#classes\t1\nN\t5\tx\t-\t1.0\n";
        match read_tsv(std::io::Cursor::new(doc)) {
            Err(GraphIoError::Parse(line, msg)) => {
                assert_eq!(line, 4);
                assert!(msg.contains("dense"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_type_names_are_located_not_panics() {
        // Regression: a node or edge line naming an undeclared type used to
        // panic inside GraphBuilder, aborting on hostile input files.
        let doc = "#node_types\tx\n#edge_types\te\n#classes\t1\nN\t0\tbogus\t-\t1.0\n";
        match read_tsv(std::io::Cursor::new(doc)) {
            Err(GraphIoError::Parse(line, msg)) => {
                assert_eq!(line, 4);
                assert!(msg.contains("bogus"), "message names the type: {msg}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let doc = "#node_types\tx\n#edge_types\te\n#classes\t1\n\
                   N\t0\tx\t-\t1.0\nN\t1\tx\t-\t2.0\nE\t0\t1\tnope\n";
        match read_tsv(std::io::Cursor::new(doc)) {
            Err(GraphIoError::Parse(line, msg)) => {
                assert_eq!(line, 6);
                assert!(msg.contains("nope"), "message names the type: {msg}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn edge_before_node_rejected() {
        let doc = "#node_types\tx\n#edge_types\te\n#classes\t0\nE\t0\t1\te\n";
        assert!(matches!(
            read_tsv(std::io::Cursor::new(doc)),
            Err(GraphIoError::Parse(4, _))
        ));
    }

    #[test]
    fn empty_document_rejected() {
        assert!(read_tsv(std::io::Cursor::new("")).is_err());
    }
}
