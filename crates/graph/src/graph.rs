//! The core heterogeneous graph type.

use widen_tensor::{CsrMatrix, Tensor};

/// Global node index (Definition 2's `i ∈ [1, |V|]`, zero-based here).
pub type NodeId = u32;

/// Identifier of a node type (e.g. *paper*, *author*, *conference*).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeTypeId(pub u16);

/// Identifier of an edge type / relation (e.g. *paper-author*).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EdgeTypeId(pub u16);

/// A rejected streaming mutation ([`HeteroGraph::add_node`] /
/// [`HeteroGraph::add_edge`]).
///
/// Mutations run the same checks [`crate::GraphBuilder`] applies at build
/// time, but as typed errors instead of panics: the serve path feeds them
/// straight from untrusted wire input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The node type id is outside the graph's declared vocabulary.
    NodeTypeOutOfRange {
        /// Offending type id.
        got: u16,
        /// Number of declared node types.
        num_types: usize,
    },
    /// The edge type id is outside the graph's declared vocabulary.
    EdgeTypeOutOfRange {
        /// Offending type id.
        got: u16,
        /// Number of declared edge types.
        num_types: usize,
    },
    /// The feature row length does not match the graph's feature dim.
    FeatureDimMismatch {
        /// The graph's `d₀`.
        expected: usize,
        /// Length of the supplied row.
        got: usize,
    },
    /// The label is outside `0..num_classes`.
    LabelOutOfRange {
        /// Offending label.
        got: u16,
        /// Number of declared classes.
        num_classes: usize,
    },
    /// An edge endpoint names a node that does not exist.
    EndpointOutOfRange {
        /// Offending node id.
        got: NodeId,
        /// Current node count.
        num_nodes: usize,
    },
    /// Self-loops are rejected (the model supplies its own learned
    /// self-loop embedding `e_{t,t}`).
    SelfLoop(NodeId),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NodeTypeOutOfRange { got, num_types } => {
                write!(f, "node type {got} out of range (have {num_types})")
            }
            Self::EdgeTypeOutOfRange { got, num_types } => {
                write!(f, "edge type {got} out of range (have {num_types})")
            }
            Self::FeatureDimMismatch { expected, got } => {
                write!(f, "feature dim mismatch: expected {expected}, got {got}")
            }
            Self::LabelOutOfRange { got, num_classes } => {
                write!(f, "label {got} out of range (have {num_classes} classes)")
            }
            Self::EndpointOutOfRange { got, num_nodes } => {
                write!(
                    f,
                    "edge endpoint {got} out of range (have {num_nodes} nodes)"
                )
            }
            Self::SelfLoop(v) => write!(f, "self-loop on node {v} is not allowed"),
        }
    }
}

impl std::error::Error for MutationError {}

/// One node's window into the shared adjacency arenas.
///
/// Live entries occupy `off..off + len`; `off + len..off + cap` is slack
/// reserved for future inserts. When `len == cap` an insert relocates the
/// run to the arena tail with doubled capacity and the old window becomes
/// dead (reclaimed by [`HeteroGraph::compact`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AdjSpan {
    pub(crate) off: usize,
    pub(crate) len: usize,
    pub(crate) cap: usize,
}

/// Minimum capacity a relocated adjacency run reserves.
const MIN_SPAN_CAP: usize = 4;
/// Dead arena slots tolerated before an insert auto-compacts. Kept well
/// above typical streaming bursts so compaction amortises; `compact()` is
/// public for callers that want it eagerly.
const COMPACT_DEAD_FLOOR: usize = 4096;

/// A heterogeneous graph `G = {V, E}` (Definition 1).
///
/// Nodes carry a type, a dense feature row and an optional class label;
/// edges carry a type. Adjacency is CSR-like with parallel neighbour /
/// edge-type arenas, so a node's typed neighbourhood is two contiguous
/// slices — exactly what the wide/deep samplers need on their hot path.
///
/// Unlike a textbook CSR, each node owns an [`AdjSpan`] window into the
/// arenas with amortised slack, so the streaming mutation API
/// ([`HeteroGraph::add_node`], [`HeteroGraph::add_edge`]) appends without
/// reallocating the whole structure. Per-node runs are kept sorted by
/// `(neighbor, edge_type)` — the invariant that makes a mutated graph
/// *observationally identical* (every accessor, hence every downstream
/// sampler stream) to one built from scratch with the final edge list.
#[derive(Clone)]
pub struct HeteroGraph {
    pub(crate) node_types: Vec<u16>,
    pub(crate) node_type_names: Vec<String>,
    pub(crate) edge_type_names: Vec<String>,
    pub(crate) spans: Vec<AdjSpan>,
    pub(crate) neighbors: Vec<NodeId>,
    pub(crate) edge_types: Vec<u16>,
    /// Live half-edge count (arena length minus slack and dead slots).
    pub(crate) num_half_edges: usize,
    /// Arena slots abandoned by span relocations, pending [`Self::compact`].
    pub(crate) dead: usize,
    /// Whether [`Self::add_edge`] stores both directions.
    pub(crate) undirected: bool,
    pub(crate) features: Tensor,
    pub(crate) labels: Vec<Option<u16>>,
    pub(crate) num_classes: usize,
}

impl HeteroGraph {
    /// Canonical constructor shared by [`crate::GraphBuilder`] and the
    /// subgraph machinery: takes deduplicated directed half-edges, sorts
    /// them into per-node `(neighbor, edge_type)` runs and lays the arenas
    /// out dense (`cap == len`, no dead slots) — byte-for-byte the layout
    /// [`Self::compact`] restores.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        node_types: Vec<u16>,
        node_type_names: Vec<String>,
        edge_type_names: Vec<String>,
        mut half_edges: Vec<(NodeId, NodeId, u16)>,
        features: Tensor,
        labels: Vec<Option<u16>>,
        num_classes: usize,
        undirected: bool,
    ) -> Self {
        let n = node_types.len();
        half_edges.sort_unstable();
        let mut counts = vec![0usize; n];
        for &(a, _, _) in &half_edges {
            counts[a as usize] += 1;
        }
        let mut spans = Vec::with_capacity(n);
        let mut off = 0usize;
        for &len in &counts {
            spans.push(AdjSpan { off, len, cap: len });
            off += len;
        }
        let neighbors: Vec<NodeId> = half_edges.iter().map(|&(_, b, _)| b).collect();
        let edge_types: Vec<u16> = half_edges.iter().map(|&(_, _, t)| t).collect();
        let graph = Self {
            node_types,
            node_type_names,
            edge_type_names,
            spans,
            num_half_edges: neighbors.len(),
            neighbors,
            edge_types,
            dead: 0,
            undirected,
            features,
            labels,
            num_classes,
        };
        graph.validate();
        graph
    }

    /// Number of nodes `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of *stored directed* edges. For the default undirected
    /// construction this is twice the logical edge count.
    pub fn num_directed_edges(&self) -> usize {
        self.num_half_edges
    }

    /// Number of logical (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.num_half_edges / 2
    }

    /// Number of node types.
    pub fn num_node_types(&self) -> usize {
        self.node_type_names.len()
    }

    /// Number of edge types.
    pub fn num_edge_types(&self) -> usize {
        self.edge_type_names.len()
    }

    /// Number of classification classes (0 if unlabelled).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Raw feature dimensionality `d₀`.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Whether edges are stored in both directions.
    pub fn is_undirected(&self) -> bool {
        self.undirected
    }

    /// Type of node `v`.
    #[inline]
    pub fn node_type(&self, v: NodeId) -> NodeTypeId {
        NodeTypeId(self.node_types[v as usize])
    }

    /// Human-readable name of a node type.
    pub fn node_type_name(&self, t: NodeTypeId) -> &str {
        &self.node_type_names[t.0 as usize]
    }

    /// Human-readable name of an edge type.
    pub fn edge_type_name(&self, t: EdgeTypeId) -> &str {
        &self.edge_type_names[t.0 as usize]
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.spans[v as usize].len
    }

    /// Neighbour ids of `v` (parallel to [`HeteroGraph::edge_types_of`]),
    /// sorted by `(neighbor, edge_type)`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let s = self.spans[v as usize];
        &self.neighbors[s.off..s.off + s.len]
    }

    /// Edge types of `v`'s incident edges (parallel to
    /// [`HeteroGraph::neighbors`]).
    #[inline]
    pub fn edge_types_of(&self, v: NodeId) -> &[u16] {
        let s = self.spans[v as usize];
        &self.edge_types[s.off..s.off + s.len]
    }

    /// The edge type connecting `v` to its `k`-th neighbour.
    #[inline]
    pub fn edge_type_at(&self, v: NodeId, k: usize) -> EdgeTypeId {
        EdgeTypeId(self.edge_types_of(v)[k])
    }

    /// Whether the half-edge `a → b` with type `t` is stored.
    pub fn has_edge(&self, a: NodeId, b: NodeId, t: EdgeTypeId) -> bool {
        let s = self.spans[a as usize];
        self.run_search(s, b, t.0).is_ok()
    }

    /// Raw feature row of node `v`.
    #[inline]
    pub fn feature_row(&self, v: NodeId) -> &[f32] {
        self.features.row(v as usize)
    }

    /// Full `|V| × d₀` feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// Class label of node `v`, if labelled.
    #[inline]
    pub fn label(&self, v: NodeId) -> Option<u16> {
        self.labels[v as usize]
    }

    /// All labelled node ids, in ascending order.
    pub fn labeled_nodes(&self) -> Vec<NodeId> {
        (0..self.num_nodes() as NodeId)
            .filter(|&v| self.labels[v as usize].is_some())
            .collect()
    }

    /// Node ids of the given type, ascending.
    pub fn nodes_of_type(&self, t: NodeTypeId) -> Vec<NodeId> {
        (0..self.num_nodes() as NodeId)
            .filter(|&v| self.node_types[v as usize] == t.0)
            .collect()
    }

    /// Counts of nodes per type.
    pub fn node_type_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_node_types()];
        for &t in &self.node_types {
            counts[t as usize] += 1;
        }
        counts
    }

    /// Counts of stored directed edges per edge type.
    pub fn edge_type_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_edge_types()];
        for v in 0..self.num_nodes() as NodeId {
            for &t in self.edge_types_of(v) {
                counts[t as usize] += 1;
            }
        }
        counts
    }

    /// Homogeneous binary adjacency (all edge types collapsed) as CSR.
    pub fn adjacency(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let mut triplets = Vec::with_capacity(self.num_half_edges);
        for v in 0..n {
            for &u in self.neighbors(v as NodeId) {
                triplets.push((v, u as usize, 1.0));
            }
        }
        CsrMatrix::from_coo(n, n, &triplets)
    }

    /// `|V| × |V|` binary adjacency restricted to one edge type
    /// (GTN's relation-specific adjacency stack, HAN's meta-path factors).
    pub fn adjacency_of_type(&self, t: EdgeTypeId) -> CsrMatrix {
        let n = self.num_nodes();
        let mut triplets = Vec::new();
        for v in 0..n {
            let types = self.edge_types_of(v as NodeId);
            for (k, &u) in self.neighbors(v as NodeId).iter().enumerate() {
                if types[k] == t.0 {
                    triplets.push((v, u as usize, 1.0));
                }
            }
        }
        CsrMatrix::from_coo(n, n, &triplets)
    }

    /// Mean degree across all nodes.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_half_edges as f64 / self.num_nodes() as f64
        }
    }

    // ------------------------------------------------------------------
    // Streaming mutation API
    // ------------------------------------------------------------------

    /// Appends a node with the given type, feature row and optional label;
    /// returns the new node id. The node starts isolated — wire it up with
    /// [`Self::add_edge`] or use [`Self::add_node_with_edges`] for the
    /// atomic combined form.
    ///
    /// Runs the same validation as [`crate::GraphBuilder::add_node`], but
    /// as typed [`MutationError`]s: a rejected mutation leaves the graph
    /// untouched.
    ///
    /// # Errors
    /// [`MutationError::NodeTypeOutOfRange`],
    /// [`MutationError::FeatureDimMismatch`] or
    /// [`MutationError::LabelOutOfRange`].
    pub fn add_node(
        &mut self,
        node_type: NodeTypeId,
        features: Vec<f32>,
        label: Option<u16>,
    ) -> Result<NodeId, MutationError> {
        self.check_node(node_type, &features, label)?;
        Ok(self.push_node(node_type, &features, label))
    }

    /// Inserts an edge of the given type; for undirected graphs both
    /// half-edges are stored. Returns `Ok(false)` (graph unchanged) when
    /// the edge already exists — the same dedup `GraphBuilder::build`
    /// applies.
    ///
    /// Cost is O(log d) to locate the slot plus O(d) to shift the run; a
    /// full run relocates to the arena tail with doubled capacity
    /// (amortised O(1) arena growth, never a whole-CSR rebuild).
    ///
    /// # Errors
    /// [`MutationError::EndpointOutOfRange`], [`MutationError::SelfLoop`]
    /// or [`MutationError::EdgeTypeOutOfRange`].
    pub fn add_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        edge_type: EdgeTypeId,
    ) -> Result<bool, MutationError> {
        self.check_edge(a, b, edge_type)?;
        if self.has_edge(a, b, edge_type) {
            return Ok(false);
        }
        self.insert_half(a, b, edge_type.0);
        if self.undirected && !self.has_edge(b, a, edge_type) {
            self.insert_half(b, a, edge_type.0);
        }
        self.maybe_compact();
        Ok(true)
    }

    /// Atomic ingest: appends a node and connects it to `edges`
    /// (`(peer, edge_type)` pairs) in one call. Everything is validated up
    /// front, so on error the graph is untouched — this is the operation
    /// the serve-side `Ingest` op maps to. Duplicate pairs in `edges` are
    /// deduplicated. Returns the new node id.
    ///
    /// # Errors
    /// Any [`MutationError`] the node or one of the edges would produce.
    pub fn add_node_with_edges(
        &mut self,
        node_type: NodeTypeId,
        features: Vec<f32>,
        label: Option<u16>,
        edges: &[(NodeId, EdgeTypeId)],
    ) -> Result<NodeId, MutationError> {
        self.check_node(node_type, &features, label)?;
        let n = self.num_nodes();
        for &(peer, t) in edges {
            if (peer as usize) >= n {
                return Err(MutationError::EndpointOutOfRange {
                    got: peer,
                    num_nodes: n,
                });
            }
            if (t.0 as usize) >= self.edge_type_names.len() {
                return Err(MutationError::EdgeTypeOutOfRange {
                    got: t.0,
                    num_types: self.edge_type_names.len(),
                });
            }
        }
        let id = self.push_node(node_type, &features, label);
        for &(peer, t) in edges {
            // Validated above; the only remaining failure is a duplicate
            // pair, which add_edge absorbs as Ok(false).
            let _ = self.add_edge(id, peer, t);
        }
        Ok(id)
    }

    /// Dead arena slots awaiting [`Self::compact`] (observability hook for
    /// tests and serving stats).
    pub fn dead_slots(&self) -> usize {
        self.dead
    }

    /// Rewrites the adjacency arenas dense (`cap == len`, zero dead
    /// slots) — byte-for-byte the layout a from-scratch build produces.
    /// Runs automatically once relocation garbage passes a threshold;
    /// public for callers that want the memory back eagerly.
    pub fn compact(&mut self) {
        let n = self.num_nodes();
        let mut neighbors = Vec::with_capacity(self.num_half_edges);
        let mut edge_types = Vec::with_capacity(self.num_half_edges);
        let mut spans = Vec::with_capacity(n);
        for v in 0..n {
            let s = self.spans[v];
            let off = neighbors.len();
            neighbors.extend_from_slice(&self.neighbors[s.off..s.off + s.len]);
            edge_types.extend_from_slice(&self.edge_types[s.off..s.off + s.len]);
            spans.push(AdjSpan {
                off,
                len: s.len,
                cap: s.len,
            });
        }
        self.neighbors = neighbors;
        self.edge_types = edge_types;
        self.spans = spans;
        self.dead = 0;
    }

    fn maybe_compact(&mut self) {
        // Slack inside live spans is working capacity, not garbage; only
        // relocation corpses count. Compact when they dominate the arena.
        if self.dead >= COMPACT_DEAD_FLOOR && self.dead * 2 >= self.neighbors.len() {
            self.compact();
        }
    }

    fn check_node(
        &self,
        node_type: NodeTypeId,
        features: &[f32],
        label: Option<u16>,
    ) -> Result<(), MutationError> {
        if (node_type.0 as usize) >= self.node_type_names.len() {
            return Err(MutationError::NodeTypeOutOfRange {
                got: node_type.0,
                num_types: self.node_type_names.len(),
            });
        }
        if features.len() != self.feature_dim() {
            return Err(MutationError::FeatureDimMismatch {
                expected: self.feature_dim(),
                got: features.len(),
            });
        }
        if let Some(l) = label {
            if (l as usize) >= self.num_classes {
                return Err(MutationError::LabelOutOfRange {
                    got: l,
                    num_classes: self.num_classes,
                });
            }
        }
        Ok(())
    }

    fn check_edge(&self, a: NodeId, b: NodeId, edge_type: EdgeTypeId) -> Result<(), MutationError> {
        let n = self.num_nodes();
        for v in [a, b] {
            if (v as usize) >= n {
                return Err(MutationError::EndpointOutOfRange {
                    got: v,
                    num_nodes: n,
                });
            }
        }
        if a == b {
            return Err(MutationError::SelfLoop(a));
        }
        if (edge_type.0 as usize) >= self.edge_type_names.len() {
            return Err(MutationError::EdgeTypeOutOfRange {
                got: edge_type.0,
                num_types: self.edge_type_names.len(),
            });
        }
        Ok(())
    }

    fn push_node(&mut self, node_type: NodeTypeId, features: &[f32], label: Option<u16>) -> NodeId {
        let id = self.node_types.len() as NodeId;
        self.node_types.push(node_type.0);
        self.features.push_row(features);
        self.labels.push(label);
        self.spans.push(AdjSpan {
            off: self.neighbors.len(),
            len: 0,
            cap: 0,
        });
        id
    }

    /// Binary search for `(b, t)` within `a`'s sorted run.
    fn run_search(&self, s: AdjSpan, b: NodeId, t: u16) -> Result<usize, usize> {
        let nbrs = &self.neighbors[s.off..s.off + s.len];
        let types = &self.edge_types[s.off..s.off + s.len];
        let mut lo = 0usize;
        let mut hi = s.len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match (nbrs[mid], types[mid]).cmp(&(b, t)) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Inserts the half-edge `a → b` at its sorted position, relocating
    /// the run to the arena tail when its capacity window is full.
    fn insert_half(&mut self, a: NodeId, b: NodeId, t: u16) {
        let s = self.spans[a as usize];
        let pos = match self.run_search(s, b, t) {
            Ok(_) => unreachable!("caller checks for duplicates"),
            Err(pos) => pos,
        };
        if s.len < s.cap {
            // Shift the tail of the live run right by one inside the span.
            self.neighbors
                .copy_within(s.off + pos..s.off + s.len, s.off + pos + 1);
            self.edge_types
                .copy_within(s.off + pos..s.off + s.len, s.off + pos + 1);
            self.neighbors[s.off + pos] = b;
            self.edge_types[s.off + pos] = t;
            self.spans[a as usize].len += 1;
        } else {
            // Relocate to the arena tail with doubled capacity; the old
            // window becomes dead until the next compaction.
            let new_cap = (s.cap * 2).max(MIN_SPAN_CAP);
            let new_off = self.neighbors.len();
            self.neighbors.reserve(new_cap);
            self.edge_types.reserve(new_cap);
            for k in 0..pos {
                self.neighbors.push(self.neighbors[s.off + k]);
                self.edge_types.push(self.edge_types[s.off + k]);
            }
            self.neighbors.push(b);
            self.edge_types.push(t);
            for k in pos..s.len {
                self.neighbors.push(self.neighbors[s.off + k]);
                self.edge_types.push(self.edge_types[s.off + k]);
            }
            // Slack padding so the capacity window is materialised.
            self.neighbors.resize(new_off + new_cap, 0);
            self.edge_types.resize(new_off + new_cap, 0);
            self.dead += s.cap;
            self.spans[a as usize] = AdjSpan {
                off: new_off,
                len: s.len + 1,
                cap: new_cap,
            };
        }
        self.num_half_edges += 1;
    }

    /// Internal consistency check (used by tests and debug builds).
    ///
    /// # Panics
    /// Panics on any structural violation.
    pub fn validate(&self) {
        let n = self.num_nodes();
        assert_eq!(self.spans.len(), n, "span table length");
        assert_eq!(
            self.neighbors.len(),
            self.edge_types.len(),
            "parallel arrays"
        );
        assert_eq!(self.features.rows(), n, "feature rows");
        assert_eq!(self.labels.len(), n, "label rows");
        let mut live = 0usize;
        let mut cap_total = 0usize;
        for v in 0..n {
            let s = self.spans[v];
            assert!(s.len <= s.cap, "span len within cap");
            assert!(s.off + s.cap <= self.neighbors.len(), "span in arena");
            live += s.len;
            cap_total += s.cap;
            let nbrs = self.neighbors(v as NodeId);
            let types = self.edge_types_of(v as NodeId);
            for k in 0..s.len {
                assert!((nbrs[k] as usize) < n, "neighbour in range");
                assert!(
                    (types[k] as usize) < self.edge_type_names.len(),
                    "edge type in range"
                );
                if k > 0 {
                    assert!(
                        (nbrs[k - 1], types[k - 1]) < (nbrs[k], types[k]),
                        "run sorted and duplicate-free at node {v}"
                    );
                }
            }
        }
        assert_eq!(live, self.num_half_edges, "half-edge count");
        assert_eq!(
            cap_total + self.dead,
            self.neighbors.len(),
            "arena fully accounted (capacity + dead)"
        );
        for &t in &self.node_types {
            assert!(
                (t as usize) < self.node_type_names.len(),
                "node type in range"
            );
        }
        for l in self.labels.iter().flatten() {
            assert!((*l as usize) < self.num_classes, "label in range");
        }
    }
}

impl std::fmt::Debug for HeteroGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeteroGraph")
            .field("nodes", &self.num_nodes())
            .field("directed_edges", &self.num_directed_edges())
            .field("node_types", &self.node_type_names)
            .field("edge_types", &self.edge_type_names)
            .field("feature_dim", &self.feature_dim())
            .field("classes", &self.num_classes)
            .finish()
    }
}
