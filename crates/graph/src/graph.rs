//! The core heterogeneous graph type.

use widen_tensor::{CsrMatrix, Tensor};

/// Global node index (Definition 2's `i ∈ [1, |V|]`, zero-based here).
pub type NodeId = u32;

/// Identifier of a node type (e.g. *paper*, *author*, *conference*).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeTypeId(pub u16);

/// Identifier of an edge type / relation (e.g. *paper-author*).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EdgeTypeId(pub u16);

/// An immutable heterogeneous graph `G = {V, E}` (Definition 1).
///
/// Nodes carry a type, a dense feature row and an optional class label;
/// edges carry a type. Adjacency is CSR with parallel neighbour / edge-type
/// arrays, so a node's typed neighbourhood is two contiguous slices —
/// exactly what the wide/deep samplers need on their hot path.
#[derive(Clone)]
pub struct HeteroGraph {
    pub(crate) node_types: Vec<u16>,
    pub(crate) node_type_names: Vec<String>,
    pub(crate) edge_type_names: Vec<String>,
    pub(crate) indptr: Vec<usize>,
    pub(crate) neighbors: Vec<NodeId>,
    pub(crate) edge_types: Vec<u16>,
    pub(crate) features: Tensor,
    pub(crate) labels: Vec<Option<u16>>,
    pub(crate) num_classes: usize,
}

impl HeteroGraph {
    /// Number of nodes `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of *stored directed* edges. For the default undirected
    /// construction this is twice the logical edge count.
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of logical (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Number of node types.
    pub fn num_node_types(&self) -> usize {
        self.node_type_names.len()
    }

    /// Number of edge types.
    pub fn num_edge_types(&self) -> usize {
        self.edge_type_names.len()
    }

    /// Number of classification classes (0 if unlabelled).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Raw feature dimensionality `d₀`.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Type of node `v`.
    #[inline]
    pub fn node_type(&self, v: NodeId) -> NodeTypeId {
        NodeTypeId(self.node_types[v as usize])
    }

    /// Human-readable name of a node type.
    pub fn node_type_name(&self, t: NodeTypeId) -> &str {
        &self.node_type_names[t.0 as usize]
    }

    /// Human-readable name of an edge type.
    pub fn edge_type_name(&self, t: EdgeTypeId) -> &str {
        &self.edge_type_names[t.0 as usize]
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.indptr[v as usize + 1] - self.indptr[v as usize]
    }

    /// Neighbour ids of `v` (parallel to [`HeteroGraph::edge_types_of`]).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.indptr[v as usize]..self.indptr[v as usize + 1]]
    }

    /// Edge types of `v`'s incident edges (parallel to
    /// [`HeteroGraph::neighbors`]).
    #[inline]
    pub fn edge_types_of(&self, v: NodeId) -> &[u16] {
        &self.edge_types[self.indptr[v as usize]..self.indptr[v as usize + 1]]
    }

    /// The edge type connecting `v` to its `k`-th neighbour.
    #[inline]
    pub fn edge_type_at(&self, v: NodeId, k: usize) -> EdgeTypeId {
        EdgeTypeId(self.edge_types_of(v)[k])
    }

    /// Raw feature row of node `v`.
    #[inline]
    pub fn feature_row(&self, v: NodeId) -> &[f32] {
        self.features.row(v as usize)
    }

    /// Full `|V| × d₀` feature matrix.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// Class label of node `v`, if labelled.
    #[inline]
    pub fn label(&self, v: NodeId) -> Option<u16> {
        self.labels[v as usize]
    }

    /// All labelled node ids, in ascending order.
    pub fn labeled_nodes(&self) -> Vec<NodeId> {
        (0..self.num_nodes() as NodeId)
            .filter(|&v| self.labels[v as usize].is_some())
            .collect()
    }

    /// Node ids of the given type, ascending.
    pub fn nodes_of_type(&self, t: NodeTypeId) -> Vec<NodeId> {
        (0..self.num_nodes() as NodeId)
            .filter(|&v| self.node_types[v as usize] == t.0)
            .collect()
    }

    /// Counts of nodes per type.
    pub fn node_type_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_node_types()];
        for &t in &self.node_types {
            counts[t as usize] += 1;
        }
        counts
    }

    /// Counts of stored directed edges per edge type.
    pub fn edge_type_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_edge_types()];
        for &t in &self.edge_types {
            counts[t as usize] += 1;
        }
        counts
    }

    /// Homogeneous binary adjacency (all edge types collapsed) as CSR.
    pub fn adjacency(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let mut triplets = Vec::with_capacity(self.neighbors.len());
        for v in 0..n {
            for &u in self.neighbors(v as NodeId) {
                triplets.push((v, u as usize, 1.0));
            }
        }
        CsrMatrix::from_coo(n, n, &triplets)
    }

    /// `|V| × |V|` binary adjacency restricted to one edge type
    /// (GTN's relation-specific adjacency stack, HAN's meta-path factors).
    pub fn adjacency_of_type(&self, t: EdgeTypeId) -> CsrMatrix {
        let n = self.num_nodes();
        let mut triplets = Vec::new();
        for v in 0..n {
            let types = self.edge_types_of(v as NodeId);
            for (k, &u) in self.neighbors(v as NodeId).iter().enumerate() {
                if types[k] == t.0 {
                    triplets.push((v, u as usize, 1.0));
                }
            }
        }
        CsrMatrix::from_coo(n, n, &triplets)
    }

    /// Mean degree across all nodes.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_nodes() as f64
        }
    }

    /// Internal consistency check (used by tests and debug builds).
    ///
    /// # Panics
    /// Panics on any structural violation.
    pub fn validate(&self) {
        let n = self.num_nodes();
        assert_eq!(self.indptr.len(), n + 1, "indptr length");
        assert_eq!(
            self.neighbors.len(),
            self.edge_types.len(),
            "parallel arrays"
        );
        assert_eq!(
            *self.indptr.last().unwrap(),
            self.neighbors.len(),
            "indptr tail"
        );
        assert_eq!(self.features.rows(), n, "feature rows");
        assert_eq!(self.labels.len(), n, "label rows");
        for w in self.indptr.windows(2) {
            assert!(w[0] <= w[1], "indptr monotone");
        }
        for &u in &self.neighbors {
            assert!((u as usize) < n, "neighbour in range");
        }
        for &t in &self.node_types {
            assert!(
                (t as usize) < self.node_type_names.len(),
                "node type in range"
            );
        }
        for &t in &self.edge_types {
            assert!(
                (t as usize) < self.edge_type_names.len(),
                "edge type in range"
            );
        }
        for l in self.labels.iter().flatten() {
            assert!((*l as usize) < self.num_classes, "label in range");
        }
    }
}

impl std::fmt::Debug for HeteroGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeteroGraph")
            .field("nodes", &self.num_nodes())
            .field("directed_edges", &self.num_directed_edges())
            .field("node_types", &self.node_type_names)
            .field("edge_types", &self.edge_type_names)
            .field("feature_dim", &self.feature_dim())
            .field("classes", &self.num_classes)
            .finish()
    }
}
