//! # widen-graph
//!
//! Heterogeneous graph storage for the WIDEN reproduction: typed nodes and
//! edges in CSR form (Definition 1 of the paper), dense node features,
//! optional class labels, induced subgraphs for the inductive protocol, typed
//! adjacency extraction for the meta-path baselines (GTN / HAN), and a greedy
//! edge-cut partitioner standing in for Metis.
//!
//! The representation is undirected-by-convention: builders insert both edge
//! directions (with the same edge type) unless told otherwise, matching how
//! the paper treats citation/review graphs during message passing.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod builder;
mod graph;
pub mod io;
pub mod partition;
mod subgraph;

pub use builder::{BuilderError, GraphBuilder};
pub use graph::{EdgeTypeId, HeteroGraph, MutationError, NodeId, NodeTypeId};
pub use io::{read_tsv, write_tsv, GraphIoError};
pub use partition::{edge_cut, greedy_bfs, greedy_bfs_weighted, Partition};
pub use subgraph::{InducedSubgraph, NodeMapping};
