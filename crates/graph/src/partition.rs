//! Greedy BFS edge-cut partitioning — the Metis stand-in — plus the halo
//! expansion that turns a part into a self-contained training/serving
//! shard.
//!
//! The paper uses Metis only to let full-graph baselines (GCN, GAT, HAN, …)
//! iterate over subgraphs of the million-scale Yelp graph (§4.4). Any
//! partitioner with a reasonably low edge cut exercises that code path, so we
//! implement the classic two-phase heuristic: BFS growth into balanced parts
//! followed by boundary refinement that moves nodes to the neighbouring part
//! holding the majority of their edges when balance permits.
//!
//! Sharded training and serving build on [`Partition::halo`]: the part's
//! core members plus every node within `radius` hops. Because
//! [`HeteroGraph::induced_subgraph`] is order-preserving over a sorted keep
//! list and all sampling draws are index-based, a halo at radius `N_d`
//! (the deep-walk length) reproduces the full graph's wide/deep sampling
//! streams for every core node *exactly* — walks of length `N_d` cannot
//! leave the halo, and every node they transition from keeps its complete,
//! identically-ordered adjacency.

use crate::graph::{HeteroGraph, NodeId};

/// A `k`-way node partition with per-part member lists.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `assignment[v]` = part id of node `v`.
    pub assignment: Vec<u32>,
    /// Number of parts.
    pub k: usize,
    /// `members[p]` = node ids of part `p`, ascending. Built once at
    /// construction so [`Partition::part`] is O(1) instead of an O(n)
    /// scan per call.
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Builds a partition from an assignment vector, materialising the
    /// per-part member lists.
    ///
    /// # Panics
    /// Panics if `k == 0` or any assignment is `>= k`.
    pub fn new(assignment: Vec<u32>, k: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        let mut members = vec![Vec::new(); k];
        for (v, &a) in assignment.iter().enumerate() {
            assert!((a as usize) < k, "assignment {a} out of range for k = {k}");
            members[a as usize].push(v as NodeId);
        }
        Self {
            assignment,
            k,
            members,
        }
    }

    /// Node ids of part `p`, ascending. Backed by a member list built at
    /// construction — no per-call scan.
    pub fn part(&self, p: u32) -> &[NodeId] {
        &self.members[p as usize]
    }

    /// Sizes of all parts.
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }

    /// The part's core members plus every node reachable within `radius`
    /// hops — the keep list for a halo-expanded shard subgraph, ascending.
    ///
    /// `radius == 0` returns the core members alone. At `radius == N_d`
    /// (the deep-walk length, which also covers the wide set's 1-hop
    /// neighbourhood) the induced subgraph reproduces full-graph sampling
    /// streams for core nodes exactly: every node a walk can transition
    /// from lies within `radius - 1` hops and therefore keeps its complete
    /// adjacency, and the sorted keep list preserves relative neighbour
    /// order, so index-based draws pick the same neighbours.
    pub fn halo(&self, graph: &HeteroGraph, p: u32, radius: usize) -> Vec<NodeId> {
        let core = self.part(p);
        let mut seen = vec![false; graph.num_nodes()];
        let mut keep: Vec<NodeId> = core.to_vec();
        for &v in core {
            seen[v as usize] = true;
        }
        let mut frontier: Vec<NodeId> = core.to_vec();
        for _ in 0..radius {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in graph.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        keep.push(u);
                        next.push(u);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        keep.sort_unstable();
        keep
    }
}

/// Number of (undirected) edges crossing part boundaries.
pub fn edge_cut(graph: &HeteroGraph, partition: &Partition) -> usize {
    let mut cut = 0usize;
    for v in 0..graph.num_nodes() as NodeId {
        for &u in graph.neighbors(v) {
            if partition.assignment[v as usize] != partition.assignment[u as usize] {
                cut += 1;
            }
        }
    }
    cut / 2
}

/// Greedily partitions `graph` into `k` balanced parts.
///
/// Phase 1 grows parts by BFS from unassigned seeds until each reaches
/// `⌈n/k⌉` nodes. Phase 2 runs `refinement_passes` sweeps moving boundary
/// nodes to the adjacent part holding most of their edges, subject to a
/// 10 % balance slack.
///
/// # Panics
/// Panics if `k == 0` or `k > |V|`.
pub fn greedy_bfs(graph: &HeteroGraph, k: usize, refinement_passes: usize) -> Partition {
    greedy_bfs_weighted(graph, k, refinement_passes, &vec![1; graph.num_nodes()])
}

/// [`greedy_bfs`] with per-node balance weights: parts are grown and
/// refined against a cap of `⌈Σw/k⌉` *weight* units instead of node
/// counts. With unit weights this is exactly `greedy_bfs`.
///
/// Sharded training uses this to balance the *training* nodes across
/// shards — the per-step critical path is driven by how many sub-batch
/// nodes the heaviest shard owns, not by its total node count — by giving
/// training nodes a weight large enough to dominate the objective while
/// plain nodes still break ties toward even subgraph sizes.
///
/// # Panics
/// Panics if `k == 0`, `k > |V|`, or `weights.len() != |V|`.
pub fn greedy_bfs_weighted(
    graph: &HeteroGraph,
    k: usize,
    refinement_passes: usize,
    weights: &[u64],
) -> Partition {
    let n = graph.num_nodes();
    assert!(k >= 1, "k must be positive");
    assert!(k <= n, "more parts than nodes");
    assert_eq!(weights.len(), n, "one weight per node");
    let total: u64 = weights.iter().sum();
    let cap = total.div_ceil(k as u64).max(1);

    let mut assignment: Vec<u32> = vec![u32::MAX; n];
    let mut part_weight = vec![0u64; k];
    let mut part_count = vec![0usize; k];
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    let mut next_seed: NodeId = 0;
    let mut current: u32 = 0;

    let mut assigned = 0usize;
    while assigned < n {
        if queue.is_empty() {
            // Find the next unassigned seed; open a new part if the current
            // one is full.
            while (next_seed as usize) < n && assignment[next_seed as usize] != u32::MAX {
                next_seed += 1;
            }
            if part_weight[current as usize] >= cap && (current as usize) < k - 1 {
                current += 1;
            }
            queue.push_back(next_seed);
        }
        let Some(v) = queue.pop_front() else { continue };
        if assignment[v as usize] != u32::MAX {
            continue;
        }
        if part_weight[current as usize] >= cap && (current as usize) < k - 1 {
            current += 1;
            queue.clear();
            queue.push_back(v);
            continue;
        }
        assignment[v as usize] = current;
        part_weight[current as usize] += weights[v as usize];
        part_count[current as usize] += 1;
        assigned += 1;
        for &u in graph.neighbors(v) {
            if assignment[u as usize] == u32::MAX {
                queue.push_back(u);
            }
        }
    }

    // Phase 2: boundary refinement.
    let slack = cap + cap / 10 + 1;
    let mut gains = vec![0usize; k];
    for _ in 0..refinement_passes {
        let mut moved = false;
        for v in 0..n {
            let home = assignment[v] as usize;
            if part_count[home] <= 1 {
                continue;
            }
            gains.iter_mut().for_each(|g| *g = 0);
            for &u in graph.neighbors(v as NodeId) {
                gains[assignment[u as usize] as usize] += 1;
            }
            let (best, &best_gain) = gains
                .iter()
                .enumerate()
                .max_by_key(|&(_, g)| *g)
                .expect("k >= 1");
            if best != home && best_gain > gains[home] && part_weight[best] + weights[v] <= slack {
                assignment[v] = best as u32;
                part_weight[home] -= weights[v];
                part_weight[best] += weights[v];
                part_count[home] -= 1;
                part_count[best] += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    Partition::new(assignment, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Two dense cliques joined by one bridge edge.
    fn two_cliques(size: usize) -> HeteroGraph {
        let mut b = GraphBuilder::new(&["x"], &["e"]);
        let x = b.node_type("x").unwrap();
        let e = b.edge_type("e").unwrap();
        let ids: Vec<_> = (0..2 * size).map(|_| b.add_node(x, vec![], None)).collect();
        for c in 0..2 {
            for i in 0..size {
                for j in i + 1..size {
                    b.add_edge(ids[c * size + i], ids[c * size + j], e);
                }
            }
        }
        b.add_edge(ids[0], ids[size], e);
        b.build()
    }

    /// 0-1-2-…-(n-1) path.
    fn path(n: usize) -> HeteroGraph {
        let mut b = GraphBuilder::new(&["x"], &["e"]);
        let x = b.node_type("x").unwrap();
        let e = b.edge_type("e").unwrap();
        let ids: Vec<_> = (0..n).map(|_| b.add_node(x, vec![], None)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], e);
        }
        b.build()
    }

    #[test]
    fn partitions_cover_all_nodes() {
        let g = two_cliques(10);
        let p = greedy_bfs(&g, 4, 2);
        assert!(p.assignment.iter().all(|&a| (a as usize) < 4));
        assert_eq!(p.sizes().iter().sum::<usize>(), g.num_nodes());
    }

    #[test]
    fn two_way_split_finds_the_bridge() {
        let g = two_cliques(12);
        let p = greedy_bfs(&g, 2, 3);
        // A perfect split cuts exactly the single bridge edge.
        assert_eq!(edge_cut(&g, &p), 1, "sizes = {:?}", p.sizes());
        let sizes = p.sizes();
        assert_eq!(sizes, vec![12, 12]);
    }

    #[test]
    fn refinement_does_not_unbalance() {
        let g = two_cliques(10);
        let p = greedy_bfs(&g, 5, 5);
        let sizes = p.sizes();
        let cap = g.num_nodes().div_ceil(5);
        for s in sizes {
            assert!(s <= cap + cap / 10 + 1);
            assert!(s >= 1);
        }
    }

    #[test]
    fn single_part_has_zero_cut() {
        let g = two_cliques(4);
        let p = greedy_bfs(&g, 1, 1);
        assert_eq!(edge_cut(&g, &p), 0);
    }

    #[test]
    fn part_listing_matches_assignment() {
        let g = two_cliques(5);
        let p = greedy_bfs(&g, 2, 2);
        for part_id in 0..2u32 {
            for &v in p.part(part_id) {
                assert_eq!(p.assignment[v as usize], part_id);
            }
        }
    }

    #[test]
    fn member_lists_are_ascending_and_complete() {
        let g = two_cliques(7);
        let p = greedy_bfs(&g, 3, 2);
        let mut total = 0;
        for part_id in 0..3u32 {
            let members = p.part(part_id);
            assert!(members.windows(2).all(|w| w[0] < w[1]), "ascending");
            total += members.len();
        }
        assert_eq!(total, g.num_nodes());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_assignment_rejected() {
        let _ = Partition::new(vec![0, 2, 1], 2);
    }

    #[test]
    fn halo_radius_zero_is_the_core() {
        // Path 0-1-2-3-4-5 split by hand: {0,1,2} vs {3,4,5}.
        let g = path(6);
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(p.halo(&g, 0, 0), vec![0, 1, 2]);
        assert_eq!(p.halo(&g, 1, 0), vec![3, 4, 5]);
    }

    #[test]
    fn halo_radius_one_adds_boundary_neighbors() {
        let g = path(6);
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        // Part 0's only boundary neighbour is node 3 (adjacent to 2).
        assert_eq!(p.halo(&g, 0, 1), vec![0, 1, 2, 3]);
        assert_eq!(p.halo(&g, 1, 1), vec![2, 3, 4, 5]);
    }

    #[test]
    fn halo_radius_two_walks_further_out() {
        let g = path(6);
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(p.halo(&g, 0, 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(p.halo(&g, 1, 2), vec![1, 2, 3, 4, 5]);
        // Saturates at the full node set.
        assert_eq!(p.halo(&g, 0, 10), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn unit_weights_reproduce_the_unweighted_partition() {
        let g = two_cliques(9);
        let a = greedy_bfs(&g, 3, 2);
        let b = greedy_bfs_weighted(&g, 3, 2, &vec![1; g.num_nodes()]);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn heavy_nodes_are_spread_by_weight_not_count() {
        // Path of 12 nodes where the first four carry all the weight: an
        // unweighted 2-way split puts all four in part 0, a weighted split
        // must break them apart to stay under the weighted cap.
        let g = path(12);
        let mut weights = vec![1u64; 12];
        for w in weights.iter_mut().take(4) {
            *w = 100;
        }
        let p = greedy_bfs_weighted(&g, 2, 0, &weights);
        let heavy_in_0 = (0..4).filter(|&v| p.assignment[v] == 0).count();
        assert!(
            (1..4).contains(&heavy_in_0),
            "heavy nodes must split across parts, got {heavy_in_0} in part 0 (sizes {:?})",
            p.sizes()
        );
        // Weighted sizes respect the cap up to one node's overshoot.
        let cap = (weights.iter().sum::<u64>()).div_ceil(2);
        let w0: u64 = (0..12)
            .filter(|&v| p.assignment[v] == 0)
            .map(|v| weights[v])
            .sum();
        assert!(w0 < cap + 100, "part 0 weight {w0} blew past cap {cap}");
    }

    #[test]
    fn halo_is_monotone_in_radius() {
        let g = two_cliques(6);
        let p = greedy_bfs(&g, 3, 2);
        for part_id in 0..3u32 {
            let mut prev = p.halo(&g, part_id, 0);
            for radius in 1..4 {
                let next = p.halo(&g, part_id, radius);
                assert!(next.len() >= prev.len());
                assert!(prev.iter().all(|v| next.binary_search(v).is_ok()));
                prev = next;
            }
        }
    }
}
