//! Greedy BFS edge-cut partitioning — the Metis stand-in.
//!
//! The paper uses Metis only to let full-graph baselines (GCN, GAT, HAN, …)
//! iterate over subgraphs of the million-scale Yelp graph (§4.4). Any
//! partitioner with a reasonably low edge cut exercises that code path, so we
//! implement the classic two-phase heuristic: BFS growth into balanced parts
//! followed by boundary refinement that moves nodes to the neighbouring part
//! holding the majority of their edges when balance permits.

use crate::graph::{HeteroGraph, NodeId};

/// A `k`-way node partition.
#[derive(Clone, Debug)]
pub struct Partition {
    /// `assignment[v]` = part id of node `v`.
    pub assignment: Vec<u32>,
    /// Number of parts.
    pub k: usize,
}

impl Partition {
    /// Node ids of part `p`, ascending.
    pub fn part(&self, p: u32) -> Vec<NodeId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == p)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// Sizes of all parts.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k];
        for &a in &self.assignment {
            sizes[a as usize] += 1;
        }
        sizes
    }
}

/// Number of (undirected) edges crossing part boundaries.
pub fn edge_cut(graph: &HeteroGraph, partition: &Partition) -> usize {
    let mut cut = 0usize;
    for v in 0..graph.num_nodes() as NodeId {
        for &u in graph.neighbors(v) {
            if partition.assignment[v as usize] != partition.assignment[u as usize] {
                cut += 1;
            }
        }
    }
    cut / 2
}

/// Greedily partitions `graph` into `k` balanced parts.
///
/// Phase 1 grows parts by BFS from unassigned seeds until each reaches
/// `⌈n/k⌉` nodes. Phase 2 runs `refinement_passes` sweeps moving boundary
/// nodes to the adjacent part holding most of their edges, subject to a
/// 10 % balance slack.
///
/// # Panics
/// Panics if `k == 0` or `k > |V|`.
pub fn greedy_bfs(graph: &HeteroGraph, k: usize, refinement_passes: usize) -> Partition {
    let n = graph.num_nodes();
    assert!(k >= 1, "k must be positive");
    assert!(k <= n, "more parts than nodes");
    let cap = n.div_ceil(k);

    let mut assignment: Vec<u32> = vec![u32::MAX; n];
    let mut part_sizes = vec![0usize; k];
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    let mut next_seed: NodeId = 0;
    let mut current: u32 = 0;

    let mut assigned = 0usize;
    while assigned < n {
        if queue.is_empty() {
            // Find the next unassigned seed; open a new part if the current
            // one is full.
            while (next_seed as usize) < n && assignment[next_seed as usize] != u32::MAX {
                next_seed += 1;
            }
            if part_sizes[current as usize] >= cap && (current as usize) < k - 1 {
                current += 1;
            }
            queue.push_back(next_seed);
        }
        let Some(v) = queue.pop_front() else { continue };
        if assignment[v as usize] != u32::MAX {
            continue;
        }
        if part_sizes[current as usize] >= cap && (current as usize) < k - 1 {
            current += 1;
            queue.clear();
            queue.push_back(v);
            continue;
        }
        assignment[v as usize] = current;
        part_sizes[current as usize] += 1;
        assigned += 1;
        for &u in graph.neighbors(v) {
            if assignment[u as usize] == u32::MAX {
                queue.push_back(u);
            }
        }
    }

    // Phase 2: boundary refinement.
    let slack = cap + cap / 10 + 1;
    let mut gains = vec![0usize; k];
    for _ in 0..refinement_passes {
        let mut moved = false;
        for v in 0..n {
            let home = assignment[v] as usize;
            if part_sizes[home] <= 1 {
                continue;
            }
            gains.iter_mut().for_each(|g| *g = 0);
            for &u in graph.neighbors(v as NodeId) {
                gains[assignment[u as usize] as usize] += 1;
            }
            let (best, &best_gain) = gains
                .iter()
                .enumerate()
                .max_by_key(|&(_, g)| *g)
                .expect("k >= 1");
            if best != home && best_gain > gains[home] && part_sizes[best] < slack {
                assignment[v] = best as u32;
                part_sizes[home] -= 1;
                part_sizes[best] += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    Partition { assignment, k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Two dense cliques joined by one bridge edge.
    fn two_cliques(size: usize) -> HeteroGraph {
        let mut b = GraphBuilder::new(&["x"], &["e"]);
        let x = b.node_type("x").unwrap();
        let e = b.edge_type("e").unwrap();
        let ids: Vec<_> = (0..2 * size).map(|_| b.add_node(x, vec![], None)).collect();
        for c in 0..2 {
            for i in 0..size {
                for j in i + 1..size {
                    b.add_edge(ids[c * size + i], ids[c * size + j], e);
                }
            }
        }
        b.add_edge(ids[0], ids[size], e);
        b.build()
    }

    #[test]
    fn partitions_cover_all_nodes() {
        let g = two_cliques(10);
        let p = greedy_bfs(&g, 4, 2);
        assert!(p.assignment.iter().all(|&a| (a as usize) < 4));
        assert_eq!(p.sizes().iter().sum::<usize>(), g.num_nodes());
    }

    #[test]
    fn two_way_split_finds_the_bridge() {
        let g = two_cliques(12);
        let p = greedy_bfs(&g, 2, 3);
        // A perfect split cuts exactly the single bridge edge.
        assert_eq!(edge_cut(&g, &p), 1, "sizes = {:?}", p.sizes());
        let sizes = p.sizes();
        assert_eq!(sizes, vec![12, 12]);
    }

    #[test]
    fn refinement_does_not_unbalance() {
        let g = two_cliques(10);
        let p = greedy_bfs(&g, 5, 5);
        let sizes = p.sizes();
        let cap = g.num_nodes().div_ceil(5);
        for s in sizes {
            assert!(s <= cap + cap / 10 + 1);
            assert!(s >= 1);
        }
    }

    #[test]
    fn single_part_has_zero_cut() {
        let g = two_cliques(4);
        let p = greedy_bfs(&g, 1, 1);
        assert_eq!(edge_cut(&g, &p), 0);
    }

    #[test]
    fn part_listing_matches_assignment() {
        let g = two_cliques(5);
        let p = greedy_bfs(&g, 2, 2);
        for part_id in 0..2u32 {
            for v in p.part(part_id) {
                assert_eq!(p.assignment[v as usize], part_id);
            }
        }
    }
}
