//! Induced subgraphs and node masking — the machinery behind the paper's
//! inductive evaluation protocol (§4.3: 20 % of labelled nodes are removed
//! from the graph during training and embedded only at test time).

use rustc_hash::FxHashSet;
use widen_tensor::Tensor;

use crate::graph::{HeteroGraph, NodeId};

/// Bidirectional id mapping between a subgraph and its parent.
#[derive(Clone, Debug)]
pub struct NodeMapping {
    /// `new_to_old[new] = old`.
    pub new_to_old: Vec<NodeId>,
    /// `old_to_new[old] = Some(new)` for kept nodes.
    pub old_to_new: Vec<Option<NodeId>>,
}

impl NodeMapping {
    /// Maps a parent-graph id into the subgraph, if kept.
    pub fn to_new(&self, old: NodeId) -> Option<NodeId> {
        self.old_to_new[old as usize]
    }

    /// Maps a subgraph id back to the parent graph.
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.new_to_old[new as usize]
    }
}

/// A subgraph together with its id mapping.
pub struct InducedSubgraph {
    /// The subgraph (ids remapped to `0..kept`).
    pub graph: HeteroGraph,
    /// Mapping between subgraph and parent ids.
    pub mapping: NodeMapping,
}

impl HeteroGraph {
    /// The subgraph induced by `keep` (order-preserving: the i-th distinct
    /// kept id becomes node `i`). Edges with either endpoint outside `keep`
    /// are dropped; surviving runs are re-sorted by remapped
    /// `(neighbor, edge_type)` — the canonical invariant every
    /// `HeteroGraph` carries.
    ///
    /// # Panics
    /// Panics if `keep` is empty or contains out-of-range / duplicate ids.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> InducedSubgraph {
        assert!(!keep.is_empty(), "cannot induce an empty subgraph");
        let n_old = self.num_nodes();
        let mut old_to_new: Vec<Option<NodeId>> = vec![None; n_old];
        for (new, &old) in keep.iter().enumerate() {
            assert!((old as usize) < n_old, "keep id out of range");
            assert!(
                old_to_new[old as usize].is_none(),
                "duplicate keep id {old}"
            );
            old_to_new[old as usize] = Some(new as NodeId);
        }

        let n_new = keep.len();
        let mut half = Vec::new();
        for (new, &old) in keep.iter().enumerate() {
            let types = self.edge_types_of(old);
            for (k, &u) in self.neighbors(old).iter().enumerate() {
                if let Some(new_u) = old_to_new[u as usize] {
                    half.push((new as NodeId, new_u, types[k]));
                }
            }
        }

        let mut features = Tensor::zeros(n_new, self.feature_dim());
        let mut node_types = Vec::with_capacity(n_new);
        let mut labels = Vec::with_capacity(n_new);
        for (new, &old) in keep.iter().enumerate() {
            features.set_row(new, self.feature_row(old));
            node_types.push(self.node_types[old as usize]);
            labels.push(self.labels[old as usize]);
        }

        let graph = HeteroGraph::from_parts(
            node_types,
            self.node_type_names.clone(),
            self.edge_type_names.clone(),
            half,
            features,
            labels,
            self.num_classes,
            self.undirected,
        );
        InducedSubgraph {
            graph,
            mapping: NodeMapping {
                new_to_old: keep.to_vec(),
                old_to_new,
            },
        }
    }

    /// Convenience wrapper: keeps everything *except* `remove` — the
    /// inductive training graph.
    pub fn without_nodes(&self, remove: &[NodeId]) -> InducedSubgraph {
        let removed: FxHashSet<NodeId> = remove.iter().copied().collect();
        let keep: Vec<NodeId> = (0..self.num_nodes() as NodeId)
            .filter(|v| !removed.contains(v))
            .collect();
        self.induced_subgraph(&keep)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::graph::HeteroGraph;

    fn path_graph(n: usize) -> HeteroGraph {
        let mut b = GraphBuilder::new(&["x"], &["e"]).with_classes(2);
        let x = b.node_type("x").unwrap();
        let e = b.edge_type("e").unwrap();
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_node(x, vec![i as f32], Some((i % 2) as u16)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], e);
        }
        b.build()
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = path_graph(5); // 0-1-2-3-4
        let sub = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.graph.num_nodes(), 3);
        // Only the 1-2 edge survives.
        assert_eq!(sub.graph.num_edges(), 1);
        assert_eq!(sub.graph.neighbors(0), &[1]); // new 0 = old 1
        assert_eq!(sub.graph.neighbors(2), &[] as &[u32]); // new 2 = old 4, isolated
    }

    #[test]
    fn mapping_round_trips() {
        let g = path_graph(5);
        let sub = g.induced_subgraph(&[3, 0]);
        assert_eq!(sub.mapping.to_old(0), 3);
        assert_eq!(sub.mapping.to_old(1), 0);
        assert_eq!(sub.mapping.to_new(3), Some(0));
        assert_eq!(sub.mapping.to_new(0), Some(1));
        assert_eq!(sub.mapping.to_new(2), None);
    }

    #[test]
    fn features_and_labels_follow_nodes() {
        let g = path_graph(4);
        let sub = g.induced_subgraph(&[2, 3]);
        assert_eq!(sub.graph.feature_row(0), &[2.0]);
        assert_eq!(sub.graph.label(1), Some(1));
    }

    #[test]
    fn without_nodes_complements() {
        let g = path_graph(6);
        let sub = g.without_nodes(&[0, 5]);
        assert_eq!(sub.graph.num_nodes(), 4);
        assert_eq!(sub.mapping.new_to_old, vec![1, 2, 3, 4]);
        // Path interior is intact.
        assert_eq!(sub.graph.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate keep id")]
    fn duplicate_keep_rejected() {
        let g = path_graph(3);
        let _ = g.induced_subgraph(&[1, 1]);
    }
}
