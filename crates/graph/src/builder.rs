//! Validated construction of [`HeteroGraph`]s.

use rustc_hash::FxHashSet;
use widen_tensor::Tensor;

use crate::graph::{EdgeTypeId, HeteroGraph, NodeId, NodeTypeId};

/// A name lookup against the builder's declared type vocabularies failed.
///
/// Unknown names used to panic, which turned a malformed input file into a
/// process abort; callers that parse external data (TSV readers, presets)
/// now get a typed error they can surface with the offending name intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuilderError {
    /// The node type name was not declared in [`GraphBuilder::new`].
    UnknownNodeType(String),
    /// The edge type name was not declared in [`GraphBuilder::new`].
    UnknownEdgeType(String),
}

impl std::fmt::Display for BuilderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownNodeType(name) => write!(f, "unknown node type `{name}`"),
            Self::UnknownEdgeType(name) => write!(f, "unknown edge type `{name}`"),
        }
    }
}

impl std::error::Error for BuilderError {}

/// Incremental, validated builder for [`HeteroGraph`].
///
/// Declares type vocabularies up front, then nodes, then edges; `build()`
/// sorts and deduplicates adjacency and runs the full structural validation.
pub struct GraphBuilder {
    node_type_names: Vec<String>,
    edge_type_names: Vec<String>,
    node_types: Vec<u16>,
    feature_rows: Vec<Vec<f32>>,
    labels: Vec<Option<u16>>,
    edges: Vec<(NodeId, NodeId, u16)>,
    feature_dim: Option<usize>,
    num_classes: usize,
    undirected: bool,
}

impl GraphBuilder {
    /// A builder with the given node/edge type vocabularies.
    pub fn new<S: Into<String> + Clone>(node_type_names: &[S], edge_type_names: &[S]) -> Self {
        Self {
            node_type_names: node_type_names.iter().cloned().map(Into::into).collect(),
            edge_type_names: edge_type_names.iter().cloned().map(Into::into).collect(),
            node_types: Vec::new(),
            feature_rows: Vec::new(),
            labels: Vec::new(),
            edges: Vec::new(),
            feature_dim: None,
            num_classes: 0,
            undirected: true,
        }
    }

    /// Switches to directed edge storage (default is undirected: each added
    /// edge is stored in both directions).
    pub fn directed(mut self) -> Self {
        self.undirected = false;
        self
    }

    /// Declares the number of classification classes.
    pub fn with_classes(mut self, num_classes: usize) -> Self {
        self.num_classes = num_classes;
        self
    }

    /// Handle for a node type name.
    ///
    /// # Errors
    /// [`BuilderError::UnknownNodeType`] if the name was not declared.
    pub fn node_type(&self, name: &str) -> Result<NodeTypeId, BuilderError> {
        self.node_type_names
            .iter()
            .position(|n| n == name)
            .map(|idx| NodeTypeId(idx as u16))
            .ok_or_else(|| BuilderError::UnknownNodeType(name.to_string()))
    }

    /// Handle for an edge type name.
    ///
    /// # Errors
    /// [`BuilderError::UnknownEdgeType`] if the name was not declared.
    pub fn edge_type(&self, name: &str) -> Result<EdgeTypeId, BuilderError> {
        self.edge_type_names
            .iter()
            .position(|n| n == name)
            .map(|idx| EdgeTypeId(idx as u16))
            .ok_or_else(|| BuilderError::UnknownEdgeType(name.to_string()))
    }

    /// Adds a node; returns its id. Feature rows must share one length.
    ///
    /// # Panics
    /// Panics on inconsistent feature dims, unknown types, or out-of-range
    /// labels.
    pub fn add_node(
        &mut self,
        node_type: NodeTypeId,
        features: Vec<f32>,
        label: Option<u16>,
    ) -> NodeId {
        assert!(
            (node_type.0 as usize) < self.node_type_names.len(),
            "node type out of range"
        );
        match self.feature_dim {
            Some(d) => assert_eq!(features.len(), d, "feature dim mismatch"),
            None => self.feature_dim = Some(features.len()),
        }
        if let Some(l) = label {
            assert!((l as usize) < self.num_classes, "label out of range");
        }
        let id = self.node_types.len() as NodeId;
        self.node_types.push(node_type.0);
        self.feature_rows.push(features);
        self.labels.push(label);
        id
    }

    /// Adds an edge of the given type. Self-loops are rejected (the model
    /// supplies its own learned self-loop embedding `e_{t,t}`).
    ///
    /// # Panics
    /// Panics on unknown endpoints/types or self-loops.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, edge_type: EdgeTypeId) {
        let n = self.node_types.len() as NodeId;
        assert!(a < n && b < n, "edge endpoint out of range");
        assert_ne!(a, b, "explicit self-loops are not allowed");
        assert!(
            (edge_type.0 as usize) < self.edge_type_names.len(),
            "edge type out of range"
        );
        self.edges.push((a, b, edge_type.0));
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_types.len()
    }

    /// Finalises the graph: dedups edges, builds CSR, validates.
    ///
    /// # Panics
    /// Panics if no nodes were added or validation fails.
    pub fn build(self) -> HeteroGraph {
        let n = self.node_types.len();
        assert!(n > 0, "graph needs at least one node");
        let d0 = self.feature_dim.unwrap_or(0);

        // Expand to directed half-edges, dedup on (src, dst, type).
        let mut seen: FxHashSet<(NodeId, NodeId, u16)> = FxHashSet::default();
        let mut half: Vec<(NodeId, NodeId, u16)> =
            Vec::with_capacity(self.edges.len() * if self.undirected { 2 } else { 1 });
        for &(a, b, t) in &self.edges {
            if seen.insert((a, b, t)) {
                half.push((a, b, t));
            }
            if self.undirected && seen.insert((b, a, t)) {
                half.push((b, a, t));
            }
        }
        let mut features = Tensor::zeros(n, d0);
        for (i, row) in self.feature_rows.iter().enumerate() {
            features.set_row(i, row);
        }

        HeteroGraph::from_parts(
            self.node_types,
            self.node_type_names,
            self.edge_type_names,
            half,
            features,
            self.labels,
            self.num_classes,
            self.undirected,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HeteroGraph {
        // author0 — paper1 — conf2, author3 — paper1
        let mut b = GraphBuilder::new(&["author", "paper", "conf"], &["writes", "appears-in"])
            .with_classes(2);
        let author = b.node_type("author").unwrap();
        let paper = b.node_type("paper").unwrap();
        let conf = b.node_type("conf").unwrap();
        let writes = b.edge_type("writes").unwrap();
        let appears = b.edge_type("appears-in").unwrap();
        let a0 = b.add_node(author, vec![1.0, 0.0], Some(0));
        let p1 = b.add_node(paper, vec![0.0, 1.0], None);
        let c2 = b.add_node(conf, vec![0.5, 0.5], None);
        let a3 = b.add_node(author, vec![1.0, 1.0], Some(1));
        b.add_edge(a0, p1, writes);
        b.add_edge(p1, c2, appears);
        b.add_edge(a3, p1, writes);
        b.build()
    }

    #[test]
    fn builds_undirected_csr() {
        let g = tiny();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        // Paper node sees both authors and the conference.
        assert_eq!(g.degree(1), 3);
        let mut nbrs = g.neighbors(1).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![0, 2, 3]);
    }

    #[test]
    fn edge_types_parallel_to_neighbors() {
        let g = tiny();
        let writes = 0u16;
        let appears = 1u16;
        for (k, &u) in g.neighbors(1).iter().enumerate() {
            let t = g.edge_types_of(1)[k];
            if u == 2 {
                assert_eq!(t, appears);
            } else {
                assert_eq!(t, writes);
            }
        }
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let mut b = GraphBuilder::new(&["x"], &["e"]).with_classes(1);
        let x = b.node_type("x").unwrap();
        let e = b.edge_type("e").unwrap();
        let n0 = b.add_node(x, vec![0.0], Some(0));
        let n1 = b.add_node(x, vec![0.0], Some(0));
        b.add_edge(n0, n1, e);
        b.add_edge(n0, n1, e);
        b.add_edge(n1, n0, e); // reverse of an existing undirected edge
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn labels_and_type_queries() {
        let g = tiny();
        assert_eq!(g.label(0), Some(0));
        assert_eq!(g.label(1), None);
        assert_eq!(g.labeled_nodes(), vec![0, 3]);
        assert_eq!(g.nodes_of_type(NodeTypeId(0)), vec![0, 3]);
        assert_eq!(g.node_type_counts(), vec![2, 1, 1]);
    }

    #[test]
    fn typed_adjacency_extraction() {
        let g = tiny();
        let writes = g.adjacency_of_type(EdgeTypeId(0)).to_dense();
        assert_eq!(writes.get(0, 1), 1.0);
        assert_eq!(writes.get(1, 0), 1.0);
        assert_eq!(writes.get(1, 2), 0.0);
        let all = g.adjacency();
        assert_eq!(all.nnz(), 6);
    }

    #[test]
    fn unknown_type_names_return_typed_errors() {
        // Regression: these lookups used to panic, so a single bad type
        // name in user-supplied data aborted the whole process.
        let b = GraphBuilder::new(&["author"], &["writes"]);
        assert_eq!(
            b.node_type("reviewer"),
            Err(BuilderError::UnknownNodeType("reviewer".into()))
        );
        assert_eq!(
            b.edge_type("cites"),
            Err(BuilderError::UnknownEdgeType("cites".into()))
        );
        let err = b.node_type("reviewer").unwrap_err();
        assert_eq!(err.to_string(), "unknown node type `reviewer`");
        assert_eq!(
            b.edge_type("cites").unwrap_err().to_string(),
            "unknown edge type `cites`"
        );
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut b = GraphBuilder::new(&["x"], &["e"]);
        let x = b.node_type("x").unwrap();
        let e = b.edge_type("e").unwrap();
        let n0 = b.add_node(x, vec![], None);
        b.add_edge(n0, n0, e);
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn ragged_features_rejected() {
        let mut b = GraphBuilder::new(&["x"], &["e"]);
        let x = b.node_type("x").unwrap();
        b.add_node(x, vec![1.0], None);
        b.add_node(x, vec![1.0, 2.0], None);
    }

    #[test]
    fn directed_mode_stores_single_direction() {
        let mut b = GraphBuilder::new(&["x"], &["e"]).directed();
        let x = b.node_type("x").unwrap();
        let e = b.edge_type("e").unwrap();
        let n0 = b.add_node(x, vec![], None);
        let n1 = b.add_node(x, vec![], None);
        b.add_edge(n0, n1, e);
        let g = b.build();
        assert_eq!(g.num_directed_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 0);
    }
}
