//! Property-based tests of graph construction and partitioning.

use proptest::prelude::*;
use widen_graph::{partition, GraphBuilder, HeteroGraph};

/// Builds a random two-type graph from generated edge pairs.
fn build(n_a: usize, n_b: usize, pairs: &[(usize, usize)]) -> HeteroGraph {
    let mut b = GraphBuilder::new(&["a", "b"], &["ab"]).with_classes(2);
    let ta = b.node_type("a").unwrap();
    let tb = b.node_type("b").unwrap();
    let e = b.edge_type("ab").unwrap();
    let mut ids = Vec::new();
    for i in 0..n_a {
        ids.push(b.add_node(ta, vec![i as f32], Some((i % 2) as u16)));
    }
    for _ in 0..n_b {
        ids.push(b.add_node(tb, vec![-1.0], None));
    }
    for &(x, y) in pairs {
        let u = ids[x % ids.len()];
        let v = ids[y % ids.len()];
        if u != v {
            b.add_edge(u, v, e);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adjacency_is_symmetric_for_undirected_builds(
        pairs in prop::collection::vec((0usize..20, 0usize..20), 0..40),
    ) {
        let g = build(8, 8, &pairs);
        for v in 0..g.num_nodes() as u32 {
            for &u in g.neighbors(v) {
                prop_assert!(
                    g.neighbors(u).contains(&v),
                    "edge {v}->{u} missing its reverse"
                );
            }
        }
        // Handshake: directed edge count is even.
        prop_assert_eq!(g.num_directed_edges() % 2, 0);
    }

    #[test]
    fn degree_sums_match_edge_count(
        pairs in prop::collection::vec((0usize..16, 0usize..16), 0..30),
    ) {
        let g = build(6, 6, &pairs);
        let degree_sum: usize = (0..g.num_nodes() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.num_directed_edges());
    }

    #[test]
    fn typed_adjacencies_partition_the_edges(
        pairs in prop::collection::vec((0usize..16, 0usize..16), 0..30),
    ) {
        let g = build(6, 6, &pairs);
        let total: usize = (0..g.num_edge_types())
            .map(|t| g.adjacency_of_type(widen_graph::EdgeTypeId(t as u16)).nnz())
            .sum();
        prop_assert_eq!(total, g.num_directed_edges());
    }

    #[test]
    fn partition_covers_and_respects_k(
        pairs in prop::collection::vec((0usize..24, 0usize..24), 5..60),
        k in 1usize..5,
    ) {
        let g = build(10, 10, &pairs);
        let p = partition::greedy_bfs(&g, k, 2);
        prop_assert_eq!(p.assignment.len(), g.num_nodes());
        prop_assert!(p.assignment.iter().all(|&a| (a as usize) < k));
        let sizes = p.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.num_nodes());
        // Edge cut bounded by total edges.
        prop_assert!(partition::edge_cut(&g, &p) <= g.num_edges());
    }

    #[test]
    fn induced_subgraph_edge_monotonicity(
        pairs in prop::collection::vec((0usize..16, 0usize..16), 0..30),
        keep_mask in prop::collection::vec(any::<bool>(), 12),
    ) {
        let g = build(6, 6, &pairs);
        let keep: Vec<u32> = (0..g.num_nodes() as u32)
            .filter(|&v| keep_mask[v as usize % keep_mask.len()])
            .collect();
        prop_assume!(!keep.is_empty());
        let sub = g.induced_subgraph(&keep);
        prop_assert!(sub.graph.num_edges() <= g.num_edges());
        sub.graph.validate();
    }
}
