//! Property tests for the two contracts sharding rests on: `greedy_bfs`
//! keeps shard sizes inside the refinement balance bound, and a halo at
//! walk radius `r` reproduces the full graph's index-based walks from
//! every core node — the structural half of the claim that shard-local
//! sampling is bitwise full-graph sampling.

use proptest::prelude::*;
use widen_graph::{greedy_bfs, GraphBuilder, HeteroGraph};

/// Builds a single-type graph on `n` nodes from generated edge pairs.
fn build(n: usize, pairs: &[(usize, usize)]) -> HeteroGraph {
    let mut b = GraphBuilder::new(&["x"], &["e"]);
    let x = b.node_type("x").unwrap();
    let e = b.edge_type("e").unwrap();
    let ids: Vec<_> = (0..n).map(|_| b.add_node(x, vec![], None)).collect();
    for &(a, c) in pairs {
        let u = ids[a % n];
        let v = ids[c % n];
        if u != v {
            b.add_edge(u, v, e);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn refinement_keeps_shard_sizes_within_the_balance_bound(
        pairs in prop::collection::vec((0usize..24, 0usize..24), 10..120),
        k in 1usize..6,
        passes in 0usize..4,
    ) {
        let g = build(24, &pairs);
        prop_assume!(k <= g.num_nodes());
        let p = greedy_bfs(&g, k, passes);
        let n = g.num_nodes();
        let cap = n.div_ceil(k);
        // Phase 1 caps parts at ⌈n/k⌉; refinement moves within 10% slack.
        let slack = cap + cap / 10 + 1;
        let sizes = p.sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(
            max <= slack,
            "max shard size {} exceeds balance bound {} (sizes {:?})",
            max, slack, sizes
        );
        // The min bound the max bound implies: the others can't hoard
        // more than slack each.
        prop_assert!(min >= n.saturating_sub(slack * (k - 1)));
        // Member lists agree with the assignment vector.
        for part in 0..k as u32 {
            for &v in p.part(part) {
                prop_assert_eq!(p.assignment[v as usize], part);
            }
        }
    }

    #[test]
    fn halo_at_walk_radius_reproduces_index_based_walks_from_core_nodes(
        pairs in prop::collection::vec((0usize..20, 0usize..20), 10..80),
        k in 1usize..4,
        radius in 1usize..4,
        picks in prop::collection::vec(any::<u64>(), 4),
    ) {
        let g = build(20, &pairs);
        prop_assume!(k <= g.num_nodes());
        let p = greedy_bfs(&g, k, 2);
        for part in 0..k as u32 {
            let keep = p.halo(&g, part, radius);
            let sub = g.induced_subgraph(&keep);
            for (ci, &start) in p.part(part).iter().enumerate() {
                // Drive the same index-based walk of length `radius` on
                // both graphs. Every transition leaves a node within
                // `radius - 1` hops of the core, which the halo keeps with
                // complete, identically-ordered adjacency — so degrees
                // match and the i-th neighbour is the same node.
                let mut v = start;
                let mut lv = sub.mapping.to_new(start).expect("core node kept");
                for (step, &x) in picks.iter().take(radius).enumerate() {
                    let deg = g.degree(v);
                    if deg == 0 {
                        break;
                    }
                    prop_assert!(
                        deg == sub.graph.degree(lv),
                        "adjacency truncated at hop {} from core node {}",
                        step, start
                    );
                    let i = (x as usize).wrapping_add(ci + step) % deg;
                    let next = g.neighbors(v)[i];
                    let lnext = sub.graph.neighbors(lv)[i];
                    prop_assert!(
                        sub.mapping.to_old(lnext) == next,
                        "walk diverged at hop {} from core node {}",
                        step, start
                    );
                    v = next;
                    lv = lnext;
                }
            }
        }
    }
}
