//! Differential tests for the streaming mutation API: a graph grown with
//! `add_node` / `add_edge` / `add_node_with_edges` must be observationally
//! identical to one built from scratch with the final node and edge lists.
//!
//! "Observationally identical" is the contract every downstream consumer
//! leans on: same accessor outputs (adjacency slices, degrees, type
//! indexes, labels, features) means the samplers draw identical streams
//! from a mutated graph and a rebuilt one under the same seed.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use widen_graph::{EdgeTypeId, GraphBuilder, HeteroGraph, MutationError, NodeTypeId};

const NODE_TYPES: [&str; 2] = ["a", "b"];
const EDGE_TYPES: [&str; 2] = ["e0", "e1"];
const CLASSES: usize = 3;

/// A generated node: (type, label, feature value).
type NodeSpec = (u16, Option<u16>, f32);
/// A generated edge: endpoints as indices into the node list, plus type.
type EdgeSpec = (usize, usize, u16);

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    // The vendored proptest has no `prop::option`; CLASSES maps to None.
    (0u16..2, 0u16..CLASSES as u16 + 1, -2.0f32..2.0).prop_map(|(t, l, f)| {
        let label = (l < CLASSES as u16).then_some(l);
        (t, label, f)
    })
}

fn edge_spec(n: usize) -> impl Strategy<Value = EdgeSpec> {
    (0..n, 0..n, 0u16..2)
}

/// Builds the oracle: every node and edge through `GraphBuilder`.
fn scratch(nodes: &[NodeSpec], edges: &[EdgeSpec], directed: bool) -> HeteroGraph {
    let mut b = GraphBuilder::new(&NODE_TYPES, &EDGE_TYPES).with_classes(CLASSES);
    if directed {
        b = b.directed();
    }
    let ids: Vec<_> = nodes
        .iter()
        .map(|&(t, l, f)| b.add_node(NodeTypeId(t), vec![f, -f], l))
        .collect();
    for &(x, y, t) in edges {
        if x != y {
            b.add_edge(ids[x], ids[y], EdgeTypeId(t));
        }
    }
    b.build()
}

/// Asserts the full observable surface of two graphs matches.
fn assert_observationally_equal(got: &HeteroGraph, want: &HeteroGraph) {
    got.validate();
    assert_eq!(got.num_nodes(), want.num_nodes(), "node count");
    assert_eq!(
        got.num_directed_edges(),
        want.num_directed_edges(),
        "half-edge count"
    );
    assert_eq!(got.node_type_counts(), want.node_type_counts());
    assert_eq!(got.edge_type_counts(), want.edge_type_counts());
    assert_eq!(got.labeled_nodes(), want.labeled_nodes());
    for t in 0..want.num_node_types() as u16 {
        assert_eq!(
            got.nodes_of_type(NodeTypeId(t)),
            want.nodes_of_type(NodeTypeId(t)),
            "type index {t}"
        );
    }
    for v in 0..want.num_nodes() as u32 {
        assert_eq!(got.degree(v), want.degree(v), "degree of {v}");
        assert_eq!(got.neighbors(v), want.neighbors(v), "neighbors of {v}");
        assert_eq!(
            got.edge_types_of(v),
            want.edge_types_of(v),
            "edge types of {v}"
        );
        assert_eq!(got.node_type(v), want.node_type(v));
        assert_eq!(got.label(v), want.label(v));
        assert_eq!(got.feature_row(v), want.feature_row(v));
    }
}

/// Grows a graph from a seed prefix via the mutation API and checks it
/// against the scratch-built oracle, including after forced compaction.
fn run_differential(
    nodes: &[NodeSpec],
    edges: &[EdgeSpec],
    split: usize,
    directed: bool,
) -> Result<(), TestCaseError> {
    let split = split.clamp(1, nodes.len());
    let oracle = scratch(nodes, edges, directed);

    // Seed graph: the first `split` nodes plus the generated edges that fit
    // entirely inside the prefix and carry an even index (odd-indexed
    // prefix edges arrive later as mutations — an interleaving, not a
    // clean prefix/suffix split).
    let mut b = GraphBuilder::new(&NODE_TYPES, &EDGE_TYPES).with_classes(CLASSES);
    if directed {
        b = b.directed();
    }
    for &(t, l, f) in &nodes[..split] {
        b.add_node(NodeTypeId(t), vec![f, -f], l);
    }
    for (k, &(x, y, t)) in edges.iter().enumerate() {
        if x < split && y < split && x != y && k % 2 == 0 {
            b.add_edge(x as u32, y as u32, EdgeTypeId(t));
        }
    }
    let mut g = b.build();

    // Late prefix-internal edges arrive through add_edge.
    for (k, &(x, y, t)) in edges.iter().enumerate() {
        if x < split && y < split && x != y && k % 2 == 1 {
            g.add_edge(x as u32, y as u32, EdgeTypeId(t))
                .expect("validated edge");
        }
    }

    // Stream the remaining nodes. Outgoing edges whose source is the
    // arriving node go through add_node_with_edges (even index) or a later
    // add_edge (odd index); incoming edges (peer → new, which matters for
    // directed graphs) always go through add_edge once the node exists.
    for (i, &(t, l, f)) in nodes.iter().enumerate().skip(split) {
        let attached: Vec<(u32, EdgeTypeId)> = edges
            .iter()
            .enumerate()
            .filter(|&(k, &(x, y, _))| x == i && y < i && k % 2 == 0)
            .map(|(_, &(_, y, et))| (y as u32, EdgeTypeId(et)))
            .collect();
        let id = g
            .add_node_with_edges(NodeTypeId(t), vec![f, -f], l, &attached)
            .expect("validated ingest");
        prop_assert_eq!(id, i as u32);
        for (k, &(x, y, et)) in edges.iter().enumerate() {
            let arrives_now = x.max(y) == i && x != y;
            let via_atomic = x == i && y < i && k % 2 == 0;
            if arrives_now && !via_atomic {
                g.add_edge(x as u32, y as u32, EdgeTypeId(et))
                    .expect("validated edge");
            }
        }
    }

    assert_observationally_equal(&g, &oracle);
    // Compaction rewrites the arenas dense; nothing observable may change.
    g.compact();
    prop_assert_eq!(g.dead_slots(), 0);
    assert_observationally_equal(&g, &oracle);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mutated_graph_matches_scratch_build(
        nodes in prop::collection::vec(node_spec(), 2..18),
        raw_edges in prop::collection::vec(edge_spec(18), 0..60),
        split in 1usize..18,
    ) {
        let n = nodes.len();
        let edges: Vec<EdgeSpec> = raw_edges
            .into_iter()
            .map(|(x, y, t)| (x % n, y % n, t))
            .collect();
        run_differential(&nodes, &edges, split, false)?;
    }

    #[test]
    fn mutated_directed_graph_matches_scratch_build(
        nodes in prop::collection::vec(node_spec(), 2..12),
        raw_edges in prop::collection::vec(edge_spec(12), 0..40),
        split in 1usize..12,
    ) {
        let n = nodes.len();
        let edges: Vec<EdgeSpec> = raw_edges
            .into_iter()
            .map(|(x, y, t)| (x % n, y % n, t))
            .collect();
        run_differential(&nodes, &edges, split, true)?;
    }

    #[test]
    fn duplicate_adds_leave_the_graph_unchanged(
        nodes in prop::collection::vec(node_spec(), 2..10),
        raw_edges in prop::collection::vec(edge_spec(10), 1..20),
    ) {
        let n = nodes.len();
        let edges: Vec<EdgeSpec> = raw_edges
            .into_iter()
            .map(|(x, y, t)| (x % n, y % n, t))
            .filter(|&(x, y, _)| x != y)
            .collect();
        prop_assume!(!edges.is_empty());
        let mut g = scratch(&nodes, &edges, false);
        let before_edges = g.num_directed_edges();
        for &(x, y, t) in &edges {
            // Every edge already exists (possibly via its reverse).
            prop_assert_eq!(g.add_edge(x as u32, y as u32, EdgeTypeId(t)).unwrap(), false);
            prop_assert_eq!(g.add_edge(y as u32, x as u32, EdgeTypeId(t)).unwrap(), false);
        }
        prop_assert_eq!(g.num_directed_edges(), before_edges);
        assert_observationally_equal(&g, &scratch(&nodes, &edges, false));
    }
}

fn two_node_graph() -> HeteroGraph {
    let mut b = GraphBuilder::new(&NODE_TYPES, &EDGE_TYPES).with_classes(CLASSES);
    b.add_node(NodeTypeId(0), vec![0.0, 0.0], Some(0));
    b.add_node(NodeTypeId(1), vec![1.0, 1.0], None);
    b.build()
}

#[test]
fn mutation_errors_are_typed_and_leave_graph_untouched() {
    let mut g = two_node_graph();
    assert_eq!(
        g.add_node(NodeTypeId(7), vec![0.0, 0.0], None),
        Err(MutationError::NodeTypeOutOfRange {
            got: 7,
            num_types: 2
        })
    );
    assert_eq!(
        g.add_node(NodeTypeId(0), vec![0.0], None),
        Err(MutationError::FeatureDimMismatch {
            expected: 2,
            got: 1
        })
    );
    assert_eq!(
        g.add_node(NodeTypeId(0), vec![0.0, 0.0], Some(9)),
        Err(MutationError::LabelOutOfRange {
            got: 9,
            num_classes: CLASSES
        })
    );
    assert_eq!(
        g.add_edge(0, 5, EdgeTypeId(0)),
        Err(MutationError::EndpointOutOfRange {
            got: 5,
            num_nodes: 2
        })
    );
    assert_eq!(
        g.add_edge(1, 1, EdgeTypeId(0)),
        Err(MutationError::SelfLoop(1))
    );
    assert_eq!(
        g.add_edge(0, 1, EdgeTypeId(4)),
        Err(MutationError::EdgeTypeOutOfRange {
            got: 4,
            num_types: 2
        })
    );
    // Atomicity: a bad edge in the batch rejects the whole ingest.
    let err = g
        .add_node_with_edges(NodeTypeId(0), vec![0.5, 0.5], None, &[(9, EdgeTypeId(0))])
        .unwrap_err();
    assert_eq!(
        err,
        MutationError::EndpointOutOfRange {
            got: 9,
            num_nodes: 2
        }
    );
    assert_eq!(g.num_nodes(), 2);
    assert_eq!(g.num_directed_edges(), 0);
    g.validate();
}

#[test]
fn heavy_fanout_relocations_accumulate_then_compact() {
    // Hub node keeps outgrowing its span: each relocation doubles its
    // capacity and abandons the old window. dead_slots tracks the garbage
    // and compact() reclaims it without observable change.
    let mut b = GraphBuilder::new(&NODE_TYPES, &EDGE_TYPES).with_classes(CLASSES);
    b.add_node(NodeTypeId(0), vec![0.0, 0.0], None);
    let mut g = b.build();
    for i in 0..200u32 {
        let peer = g
            .add_node(NodeTypeId(1), vec![i as f32, 0.0], None)
            .unwrap();
        assert!(g.add_edge(0, peer, EdgeTypeId((i % 2) as u16)).unwrap());
    }
    assert_eq!(g.degree(0), 200);
    assert!(g.dead_slots() > 0, "hub relocations must leave dead slots");
    let before: Vec<u32> = g.neighbors(0).to_vec();
    g.compact();
    assert_eq!(g.dead_slots(), 0);
    assert_eq!(g.neighbors(0), &before[..]);
    g.validate();
}
