//! Behavioural tests of the WIDEN model against the paper's equations:
//! masked-attention causality, Φ-averaging, relay-edge semantics and
//! downsampling dynamics, exercised through the public API.

use widen_core::{DownsampleStrategy, Trainer, Variant, WidenConfig, WidenModel};
use widen_data::{acm_like, dblp_like, Scale};
use widen_graph::GraphBuilder;

fn tiny_config() -> WidenConfig {
    let mut c = WidenConfig::small();
    c.d = 16;
    c.n_w = 5;
    c.n_d = 5;
    c.phi = 2;
    c.epochs = 6;
    c
}

#[test]
fn phi_one_and_many_walks_both_work() {
    let d = acm_like(Scale::Smoke, 1);
    for phi in [1usize, 2, 5] {
        let mut cfg = tiny_config();
        cfg.phi = phi;
        let model = WidenModel::for_graph(&d.graph, cfg);
        let nodes = &d.transductive.train[..4];
        let emb = model.embed_nodes(&d.graph, nodes, 3);
        assert_eq!(emb.shape(), (4, 16), "phi = {phi}");
        assert!(emb.all_finite());
    }
}

#[test]
fn variants_produce_different_models() {
    // Each Table 4 variant must actually change behaviour: train briefly
    // and compare predictions.
    let d = acm_like(Scale::Smoke, 2);
    let train: Vec<u32> = d.transductive.train[..30].to_vec();
    let probe: Vec<u32> = d.transductive.test[..60].to_vec();
    let mut prediction_sets = Vec::new();
    for (name, variant) in Variant::table4_rows() {
        let mut cfg = tiny_config();
        cfg.variant = variant;
        cfg.epochs = 8;
        // Loose thresholds so downsampling variants actually diverge.
        cfg.r_wide = 0.5;
        cfg.r_deep = 0.5;
        cfg.k_wide = 2;
        cfg.k_deep = 2;
        let model = WidenModel::for_graph(&d.graph, cfg);
        let mut trainer = Trainer::new(model, &d.graph, &train);
        trainer.fit(&train);
        let preds = trainer.into_model().predict(&d.graph, &probe, 1);
        prediction_sets.push((name, preds));
    }
    // The full model must differ from the branch-removal variants.
    let default = &prediction_sets[0].1;
    for (name, preds) in &prediction_sets[2..4] {
        assert_ne!(
            default, preds,
            "variant `{name}` produced identical predictions to Default"
        );
    }
}

#[test]
fn deep_branch_alone_supports_isolated_wide_sets() {
    // A node whose only connectivity is via the walk start (degree 1):
    // both branches must cope with tiny neighbourhoods.
    let mut b = GraphBuilder::new(&["x", "y"], &["xy"]).with_classes(2);
    let x = b.node_type("x").unwrap();
    let y = b.node_type("y").unwrap();
    let e = b.edge_type("xy").unwrap();
    let n0 = b.add_node(x, vec![1.0, 0.0], Some(0));
    let n1 = b.add_node(y, vec![0.0, 1.0], None);
    let n2 = b.add_node(x, vec![0.9, 0.1], Some(1));
    b.add_edge(n0, n1, e);
    b.add_edge(n1, n2, e);
    let g = b.build();

    let mut cfg = tiny_config();
    cfg.epochs = 4;
    let model = WidenModel::for_graph(&g, cfg);
    let mut trainer = Trainer::new(model, &g, &[n0, n2]);
    let report = trainer.fit(&[n0, n2]);
    assert!(report.final_loss().is_finite());
    let preds = trainer.into_model().predict(&g, &[n0, n2], 1);
    assert_eq!(preds.len(), 2);
}

#[test]
fn random_downsampling_ignores_kl_threshold() {
    // With an impossible KL threshold, attentive downsampling never fires
    // but random downsampling still does — they must diverge.
    let d = dblp_like(Scale::Smoke, 3);
    let train: Vec<u32> = d.transductive.train[..20].to_vec();

    let run = |strategy: DownsampleStrategy| {
        let mut cfg = tiny_config();
        cfg.epochs = 6;
        cfg.r_wide = 0.0; // KL < 0 is impossible ⇒ attentive never triggers
        cfg.r_deep = 0.0;
        cfg.k_wide = 1;
        cfg.k_deep = 1;
        cfg.variant.wide_downsampling = strategy;
        cfg.variant.deep_downsampling = strategy;
        let model = WidenModel::for_graph(&d.graph, cfg);
        let mut trainer = Trainer::new(model, &d.graph, &train);
        let report = trainer.fit(&train);
        (report.wide_drops, report.deep_drops)
    };

    let (aw, ad) = run(DownsampleStrategy::Attentive);
    let (rw, rd) = run(DownsampleStrategy::Random);
    assert_eq!(
        (aw, ad),
        (0, 0),
        "impossible threshold must block attentive drops"
    );
    assert!(
        rw > 0 && rd > 0,
        "random downsampling must drop regardless of KL"
    );
}

#[test]
fn downsampling_reduces_epoch_time() {
    // The efficiency claim of §3.3, asserted end-to-end: with aggressive
    // pruning the later epochs must be cheaper than with no pruning at all.
    let d = dblp_like(Scale::Smoke, 4);
    let train: Vec<u32> = d.transductive.train.clone();
    let run = |variant: Variant| {
        let mut cfg = tiny_config();
        cfg.n_w = 12;
        cfg.n_d = 12;
        cfg.phi = 3;
        cfg.epochs = 10;
        cfg.r_wide = f64::MAX;
        cfg.r_deep = f64::MAX;
        cfg.k_wide = 2;
        cfg.k_deep = 2;
        cfg.variant = variant;
        let model = WidenModel::for_graph(&d.graph, cfg);
        let mut trainer = Trainer::new(model, &d.graph, &train);
        let report = trainer.fit(&train);
        // Compare the mean of the last three epochs.
        let tail = &report.epoch_secs[report.epoch_secs.len() - 3..];
        tail.iter().sum::<f64>() / 3.0
    };
    let pruned = run(Variant::full());
    let unpruned = run(Variant::no_downsampling());
    assert!(
        pruned < unpruned,
        "downsampled tail epochs ({pruned:.4}s) should beat unpruned ({unpruned:.4}s)"
    );
}

#[test]
fn embedding_dimension_follows_config() {
    let d = acm_like(Scale::Smoke, 5);
    for dim in [8usize, 24, 40] {
        let mut cfg = tiny_config();
        cfg.d = dim;
        let model = WidenModel::for_graph(&d.graph, cfg);
        let emb = model.embed_nodes(&d.graph, &d.transductive.train[..2], 1);
        assert_eq!(emb.cols(), dim);
    }
}
