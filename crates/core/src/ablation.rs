//! Architectural variants — every row of the paper's Table 4.

/// How a neighbour set is downsampled during training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DownsampleStrategy {
    /// Attention-guided argmin drop with the KL trigger (the full model,
    /// Algorithms 1–3).
    Attentive,
    /// Drop a uniformly random entry every epoch (no KL trigger) — the
    /// "Random Downsampling" ablation rows.
    Random,
    /// Never downsample — the "No Downsampling" ablation row.
    Off,
}

/// Feature switches for the Table 4 ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Variant {
    /// Enable the wide message-passing branch (Eq. 1, 3).
    pub use_wide: bool,
    /// Enable the deep message-passing branch (Eq. 2, 4–5).
    pub use_deep: bool,
    /// Enable the successive self-attention (Eq. 4). When disabled, Eq. 5
    /// attends directly over `M▷` — "an attentive aggregation of all deep
    /// neighbour nodes w.r.t. the target" (§4.8).
    pub successive_attention: bool,
    /// Generate contextualized relay edges (Eq. 8) when pruning deep packs.
    /// When disabled, deprecated packs are discarded outright (§4.8).
    pub relay_edges: bool,
    /// Wide-set downsampling strategy.
    pub wide_downsampling: DownsampleStrategy,
    /// Deep-set downsampling strategy.
    pub deep_downsampling: DownsampleStrategy,
}

impl Variant {
    /// The complete model ("Default" row of Table 4).
    pub fn full() -> Self {
        Self {
            use_wide: true,
            use_deep: true,
            successive_attention: true,
            relay_edges: true,
            wide_downsampling: DownsampleStrategy::Attentive,
            deep_downsampling: DownsampleStrategy::Attentive,
        }
    }

    /// "No Downsampling" row.
    pub fn no_downsampling() -> Self {
        Self {
            wide_downsampling: DownsampleStrategy::Off,
            deep_downsampling: DownsampleStrategy::Off,
            ..Self::full()
        }
    }

    /// "Removing Wide Neighbors" row.
    pub fn no_wide() -> Self {
        Self {
            use_wide: false,
            ..Self::full()
        }
    }

    /// "Removing Deep Neighbors" row.
    pub fn no_deep() -> Self {
        Self {
            use_deep: false,
            ..Self::full()
        }
    }

    /// "Removing Successive Self-Attention" row.
    pub fn no_successive_attention() -> Self {
        Self {
            successive_attention: false,
            ..Self::full()
        }
    }

    /// "Removing Relay Edges" row.
    pub fn no_relay_edges() -> Self {
        Self {
            relay_edges: false,
            ..Self::full()
        }
    }

    /// "Random Downsampling for W(t)" row.
    pub fn random_wide_downsampling() -> Self {
        Self {
            wide_downsampling: DownsampleStrategy::Random,
            ..Self::full()
        }
    }

    /// "Random Downsampling for D(t)" row.
    pub fn random_deep_downsampling() -> Self {
        Self {
            deep_downsampling: DownsampleStrategy::Random,
            ..Self::full()
        }
    }

    /// All Table 4 rows in paper order, with their printable names.
    pub fn table4_rows() -> Vec<(&'static str, Variant)> {
        vec![
            ("Default", Self::full()),
            ("No Downsampling", Self::no_downsampling()),
            ("Removing Wide Neighbors", Self::no_wide()),
            ("Removing Deep Neighbors", Self::no_deep()),
            (
                "Removing Successive Self-Attention",
                Self::no_successive_attention(),
            ),
            ("Removing Relay Edges", Self::no_relay_edges()),
            (
                "Random Downsampling for W(t)",
                Self::random_wide_downsampling(),
            ),
            (
                "Random Downsampling for D(t)",
                Self::random_deep_downsampling(),
            ),
        ]
    }
}

impl Default for Variant {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_variant_enables_everything() {
        let v = Variant::full();
        assert!(v.use_wide && v.use_deep && v.successive_attention && v.relay_edges);
        assert_eq!(v.wide_downsampling, DownsampleStrategy::Attentive);
    }

    #[test]
    fn table4_covers_all_eight_rows() {
        let rows = Variant::table4_rows();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].0, "Default");
        // Each non-default row differs from the default in exactly the
        // intended switch.
        assert!(!Variant::no_wide().use_wide);
        assert!(!Variant::no_deep().use_deep);
        assert!(!Variant::no_successive_attention().successive_attention);
        assert!(!Variant::no_relay_edges().relay_edges);
        assert_eq!(
            Variant::random_wide_downsampling().wide_downsampling,
            DownsampleStrategy::Random
        );
        assert_eq!(
            Variant::random_deep_downsampling().deep_downsampling,
            DownsampleStrategy::Random
        );
        assert_eq!(
            Variant::no_downsampling().deep_downsampling,
            DownsampleStrategy::Off
        );
    }
}
