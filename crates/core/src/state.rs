//! Per-node training state: sampled neighbour sets, relay-edge overrides,
//! and the previous epoch's attention distributions for the KL trigger.

use widen_sampling::{DeepSet, WideSet};

/// A deep walk plus its per-position edge representations.
///
/// After Algorithm 2 prunes position `s'`, the successor's edge embedding is
/// replaced by a *contextualized relay edge* (Eq. 8) — a fixed vector
/// computed from the deprecated pack at prune time. Positions without an
/// override use the trainable edge-type embedding row.
#[derive(Clone, Debug)]
pub struct DeepState {
    /// The (current, possibly pruned) walk.
    pub set: DeepSet,
    /// Parallel to `set.entries`: `Some(relay)` replaces the trainable edge
    /// embedding at that position. Relay vectors are detached snapshots —
    /// Algorithm 2 stores concrete pack values, not symbolic expressions.
    pub edge_override: Vec<Option<Vec<f32>>>,
    /// Attention distribution over `[m_t ; packs]` from the previous epoch
    /// (`|set| + 1` entries), if the set is unchanged since then.
    pub prev_attention: Option<Vec<f32>>,
}

impl DeepState {
    /// Wraps a freshly sampled walk.
    pub fn new(set: DeepSet) -> Self {
        let n = set.entries.len();
        Self {
            set,
            edge_override: vec![None; n],
            prev_attention: None,
        }
    }

    /// Applies the pruning bookkeeping for local index `s'` *after* the
    /// caller computed (and stored) the relay override on `s' + 1`:
    /// removes the entry and its override slot, and invalidates the stored
    /// attention (the set changed, so Eq. 9 yields +∞ next epoch).
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn prune(&mut self, s: usize) {
        self.set.remove_local(s);
        self.edge_override.remove(s);
        self.prev_attention = None;
    }

    /// Current walk length `|D(v_t)|`.
    pub fn len(&self) -> usize {
        self.set.entries.len()
    }

    /// Whether the walk is empty.
    pub fn is_empty(&self) -> bool {
        self.set.entries.is_empty()
    }
}

/// Full per-target-node state carried across training epochs.
///
/// The neighbour sets are sampled **once** before training (Algorithm 3
/// line 3) and only shrink afterwards; this is what makes consecutive-epoch
/// attention distributions comparable in Eq. 9.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// The wide neighbour set.
    pub wide: WideSet,
    /// Previous epoch's wide attention (`|W| + 1` entries), if comparable.
    pub prev_wide_attention: Option<Vec<f32>>,
    /// The Φ deep walks.
    pub deeps: Vec<DeepState>,
}

impl NodeState {
    /// Bundles freshly sampled neighbourhoods.
    pub fn new(wide: WideSet, deeps: Vec<DeepSet>) -> Self {
        Self {
            wide,
            prev_wide_attention: None,
            deeps: deeps.into_iter().map(DeepState::new).collect(),
        }
    }

    /// Removes wide local index `n`, invalidating the stored attention.
    pub fn prune_wide(&mut self, n: usize) {
        self.wide.remove_local(n);
        self.prev_wide_attention = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_sampling::{DeepEntry, WideEntry};

    fn wide(n: usize) -> WideSet {
        WideSet {
            target: 0,
            entries: (0..n)
                .map(|i| WideEntry {
                    node: i as u32 + 1,
                    edge_type: 0,
                })
                .collect(),
        }
    }

    fn deep(n: usize) -> DeepSet {
        DeepSet {
            target: 0,
            entries: (0..n)
                .map(|i| DeepEntry {
                    node: i as u32 + 1,
                    edge_type: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn prune_wide_invalidates_attention() {
        let mut state = NodeState::new(wide(5), vec![deep(4)]);
        state.prev_wide_attention = Some(vec![0.2; 6]);
        state.prune_wide(1);
        assert_eq!(state.wide.len(), 4);
        assert!(state.prev_wide_attention.is_none());
    }

    #[test]
    fn deep_prune_removes_override_slot() {
        let mut d = DeepState::new(deep(4));
        d.edge_override[2] = Some(vec![1.0]);
        d.prev_attention = Some(vec![0.25; 5]);
        d.prune(1);
        assert_eq!(d.len(), 3);
        assert_eq!(d.edge_override.len(), 3);
        // The override that was at position 2 is now at position 1.
        assert!(d.edge_override[1].is_some());
        assert!(d.prev_attention.is_none());
    }

    #[test]
    fn new_states_have_no_history() {
        let state = NodeState::new(wide(3), vec![deep(2), deep(2)]);
        assert!(state.prev_wide_attention.is_none());
        assert_eq!(state.deeps.len(), 2);
        assert!(state.deeps.iter().all(|d| d.prev_attention.is_none()));
        assert!(state
            .deeps
            .iter()
            .all(|d| d.edge_override.iter().all(Option::is_none)));
    }
}
