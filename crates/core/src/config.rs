//! Hyperparameter configuration (§4.4).

use widen_tensor::BackendKind;

use crate::ablation::Variant;

/// Which forward-pass engine training and inference run on.
///
/// Both engines compute the same model (Eq. 1–7, 10); they differ only in
/// how the work is laid out. [`Execution::Batched`] is the default;
/// [`Execution::PerNode`] survives as the differential-testing oracle the
/// batched engine is verified against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Execution {
    /// One fused forward pass per chunk: a single Q/K/V projection matmul
    /// per attention branch, ragged/padded softmax over all nodes' score
    /// rows at once, batched fusion and classification.
    #[default]
    Batched,
    /// The original one-tape-subgraph-per-node path (slower; kept as the
    /// reference implementation).
    PerNode,
}

/// All WIDEN hyperparameters.
///
/// [`WidenConfig::paper`] reproduces the unified setting of §4.4:
/// `d = 128, N_w = 20, N_d = 20, Φ = 10`, learning rate `τ = 1e-4`,
/// downsampling thresholds `r∘ = r▷ = 1e-3`, lower bounds `k∘ = k▷ = 5`,
/// and L2 strength `γ = 0.01` (pass `0.0` for Yelp-scale graphs, as the
/// paper does).
#[derive(Clone, Debug)]
pub struct WidenConfig {
    /// Latent dimension `d`.
    pub d: usize,
    /// Initial wide neighbour sample size `N_w`.
    pub n_w: usize,
    /// Deep walk length `N_d`.
    pub n_d: usize,
    /// Number of deep walks per node `Φ` (the paper's `N_t`).
    pub phi: usize,
    /// Learning rate `τ`.
    pub learning_rate: f32,
    /// L2 regularisation strength `γ`.
    pub weight_decay: f32,
    /// Wide downsampling KL threshold `r∘`.
    pub r_wide: f64,
    /// Deep downsampling KL threshold `r▷`.
    pub r_deep: f64,
    /// Wide downsampling lower bound `k∘`.
    pub k_wide: usize,
    /// Deep downsampling lower bound `k▷`.
    pub k_deep: usize,
    /// Mini-batch size `B`.
    pub batch_size: usize,
    /// Maximum training epochs `Z`.
    pub epochs: usize,
    /// Base RNG seed (weights, sampling, batching).
    pub seed: u64,
    /// Architectural variant (Table 4 ablations); default is the full model.
    pub variant: Variant,
    /// Forward-pass engine (batched by default; per-node as oracle).
    pub execution: Execution,
    /// Dense GEMM kernel backend every tape this config spawns dispatches
    /// through (defaults to the process-wide choice, which honours the
    /// `WIDEN_KERNEL_BACKEND` environment variable).
    pub backend: BackendKind,
}

impl WidenConfig {
    /// The paper's unified hyperparameter set (§4.4).
    pub fn paper() -> Self {
        Self {
            d: 128,
            n_w: 20,
            n_d: 20,
            phi: 10,
            learning_rate: 1e-4,
            weight_decay: 0.01,
            r_wide: 1e-3,
            r_deep: 1e-3,
            k_wide: 5,
            k_deep: 5,
            batch_size: 64,
            epochs: 30,
            seed: 0,
            variant: Variant::full(),
            execution: Execution::default(),
            backend: widen_tensor::default_backend(),
        }
    }

    /// A scaled-down configuration for CPU-friendly runs and tests:
    /// `d = 32, N_w = 8, N_d = 8, Φ = 2`, higher learning rate, few epochs.
    pub fn small() -> Self {
        Self {
            d: 32,
            n_w: 8,
            n_d: 8,
            phi: 2,
            learning_rate: 5e-3,
            weight_decay: 1e-4,
            r_wide: 1e-3,
            r_deep: 1e-3,
            k_wide: 3,
            k_deep: 3,
            batch_size: 32,
            epochs: 12,
            seed: 0,
            variant: Variant::full(),
            execution: Execution::default(),
            backend: widen_tensor::default_backend(),
        }
    }

    /// Returns `self` with a different seed (multi-run aggregation).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns `self` with a different variant (ablations).
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Returns `self` with a different forward-pass engine.
    pub fn with_execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Returns `self` with a different dense GEMM kernel backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on degenerate settings.
    pub fn validate(&self) {
        assert!(self.d > 0, "latent dimension must be positive");
        assert!(self.phi >= 1, "Φ ≥ 1 deep walks required (Eq. 7)");
        assert!(
            self.k_wide >= 1 && self.k_deep >= 1,
            "lower bounds must be ≥ 1 (§3.4)"
        );
        assert!(self.batch_size >= 1 && self.epochs >= 1);
        assert!(
            self.variant.use_wide || self.variant.use_deep,
            "at least one of wide/deep passing must be enabled"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_4_4() {
        let c = WidenConfig::paper();
        assert_eq!(c.d, 128);
        assert_eq!(c.n_w, 20);
        assert_eq!(c.n_d, 20);
        assert_eq!(c.phi, 10);
        assert_eq!(c.learning_rate, 1e-4);
        assert_eq!(c.weight_decay, 0.01);
        assert_eq!(c.r_wide, 1e-3);
        assert_eq!(c.k_wide, 5);
        c.validate();
    }

    #[test]
    fn builders_chain() {
        let c = WidenConfig::small().with_seed(9);
        assert_eq!(c.seed, 9);
        c.validate();
    }

    #[test]
    fn batched_execution_is_the_default() {
        assert_eq!(WidenConfig::paper().execution, Execution::Batched);
        assert_eq!(WidenConfig::small().execution, Execution::Batched);
        let c = WidenConfig::small().with_execution(Execution::PerNode);
        assert_eq!(c.execution, Execution::PerNode);
        c.validate();
    }

    #[test]
    fn backend_knob_chains_and_defaults_to_process_choice() {
        let c = WidenConfig::small();
        assert_eq!(c.backend, widen_tensor::default_backend());
        let c = c.with_backend(BackendKind::Optimized);
        assert_eq!(c.backend, BackendKind::Optimized);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one of wide/deep")]
    fn rejects_no_passing_at_all() {
        let mut v = Variant::full();
        v.use_wide = false;
        v.use_deep = false;
        WidenConfig::small().with_variant(v).validate();
    }
}
