//! # widen-core
//!
//! The paper's primary contribution: the **Wide and Deep Message Passing
//! Network (WIDEN)** for heterogeneous, inductive, efficient node
//! representation learning.
//!
//! Pipeline (one message-passing step for a target node `v_t`):
//!
//! 1. **Heterogeneous message packaging** ([`packaging`]) — Eq. 1/2:
//!    `m = v ⊙ e` stacks node ⊙ edge-type interactions into the wide pack
//!    matrix `M∘` and the deep pack matrix `M▷` (one per sampled walk).
//! 2. **Wide attentive passing** ([`model`]) — Eq. 3: one-query
//!    self-attention with the target's own pack as the query.
//! 3. **Successive self-attention** — Eq. 4–6: causally masked
//!    self-attention along the walk, then a second one-query attention
//!    (Eq. 5) gathering the refined packs into `h▷`.
//! 4. **Fusion** — Eq. 7: `v_t' = normalize(ReLU(W[h∘ ; mean_φ h▷] + b))`.
//! 5. **Active downsampling** ([`downsample`]) — Algorithms 1–2 with
//!    contextualized relay edges (Eq. 8), triggered by the KL-divergence
//!    rule (Eq. 9).
//! 6. **Training** ([`trainer`]) — Algorithm 3: mini-batch semi-supervised
//!    cross-entropy (Eq. 10) with Adam.
//!
//! Ablation variants ([`ablation::Variant`]) reproduce every row of the
//! paper's Table 4. Inductive inference ([`WidenModel::embed_nodes`])
//! embeds nodes that never appeared during training (RQ2).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ablation;
pub mod config;
pub mod downsample;
mod engine;
pub mod model;
pub mod packaging;
pub mod sharded;
pub mod state;
pub mod trainer;
pub mod unsupervised;

pub use ablation::{DownsampleStrategy, Variant};
pub use config::{Execution, WidenConfig};
pub use model::WidenModel;
pub use sharded::{ShardParallelism, ShardedTrainReport, ShardedTrainer};
pub use state::{DeepState, NodeState};
pub use trainer::{EpochStats, TrainReport, Trainer};
pub use unsupervised::{fit_unsupervised, UnsupervisedConfig};
