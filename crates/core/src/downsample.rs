//! Active downsampling (§3.3–3.4): Algorithms 1–2, the contextualized
//! relay edge (Eq. 8) and the KL-divergence trigger (Eq. 9).

use rand::Rng;

use crate::ablation::DownsampleStrategy;

// Single source of truth for Eq. 9's divergence: the smoothed, always-finite
// implementation in `widen-eval` (an unchanged-set comparison can still see
// vanished slots when attention collapses to one-hot mid-training).
pub use widen_eval::kl_divergence;

/// What to do with a neighbour set after this epoch's attention pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Keep the set unchanged.
    Keep,
    /// Drop the entry at this local index (0-based, target excluded).
    Drop(usize),
}

/// Decides whether to shrink a neighbour set, per Algorithm 3 lines 9–14.
///
/// * `attention` — this epoch's distribution over `[m_t ; packs]`
///   (`len + 1` values, target at index 0).
/// * `prev_attention` — last epoch's distribution over the *same* set, if
///   the set is unchanged since (otherwise Eq. 9 treats the divergence as
///   unbounded and no downsampling triggers).
/// * `len` — current number of neighbour entries (`|W|` or `|D|`).
/// * `k` — downsampling lower bound (`k∘` / `k▷`).
/// * `r` — KL threshold (`r∘` / `r▷`).
/// * `epoch` — 1-based epoch counter; Algorithm 3 requires `z > 1`.
#[allow(clippy::too_many_arguments)]
pub fn decide<R: Rng + ?Sized>(
    strategy: DownsampleStrategy,
    attention: &[f32],
    prev_attention: Option<&[f32]>,
    len: usize,
    k: usize,
    r: f64,
    epoch: usize,
    rng: &mut R,
) -> Decision {
    decide_with_kl(strategy, attention, prev_attention, len, k, r, epoch, rng).0
}

/// Like [`decide`], but also returns the Eq. 9 divergence when one was
/// actually evaluated (`Attentive` strategy with comparable history), so
/// the trainer can surface per-epoch KL trigger values without recomputing
/// them.
#[allow(clippy::too_many_arguments)]
pub fn decide_with_kl<R: Rng + ?Sized>(
    strategy: DownsampleStrategy,
    attention: &[f32],
    prev_attention: Option<&[f32]>,
    len: usize,
    k: usize,
    r: f64,
    epoch: usize,
    rng: &mut R,
) -> (Decision, Option<f64>) {
    debug_assert_eq!(
        attention.len(),
        len + 1,
        "attention covers target + neighbours"
    );
    if len <= k || epoch <= 1 {
        return (Decision::Keep, None);
    }
    match strategy {
        DownsampleStrategy::Off => (Decision::Keep, None),
        DownsampleStrategy::Random => {
            // Ablation: drop one uniformly random neighbour each epoch,
            // KL trigger removed (§4.8).
            (Decision::Drop(rng.gen_range(0..len)), None)
        }
        DownsampleStrategy::Attentive => {
            let Some(prev) = prev_attention else {
                // Set changed since last epoch ⇒ divergence is undefined
                // over mismatched supports; never trigger.
                return (Decision::Keep, None);
            };
            if prev.len() != attention.len() {
                return (Decision::Keep, None);
            }
            let kl = kl_divergence(prev, attention);
            if kl >= r {
                return (Decision::Keep, Some(kl));
            }
            // Algorithm 1/2 line 3–4: argmin over neighbour weights,
            // excluding the target's own weight a_{t,t}.
            let mut best = 0usize;
            for i in 1..len {
                if attention[i + 1] < attention[best + 1] {
                    best = i;
                }
            }
            (Decision::Drop(best), Some(kl))
        }
    }
}

/// Eq. 8's contextualized relay edge: binds the deprecated pack `m_{s'}`
/// into its successor's edge representation via element-wise max-pooling,
/// so deleting `v_{s'}` does not break the walk's semantics (Figure 2).
pub fn relay_edge(successor_edge: &[f32], deprecated_pack: &[f32]) -> Vec<f32> {
    debug_assert_eq!(successor_edge.len(), deprecated_pack.len());
    successor_edge
        .iter()
        .zip(deprecated_pack)
        .map(|(&e, &m)| e.max(m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn keeps_when_at_lower_bound() {
        let attn = vec![0.25; 4];
        let d = decide(
            DownsampleStrategy::Attentive,
            &attn,
            Some(&attn.clone()),
            3,
            3,
            1e-1,
            5,
            &mut rng(),
        );
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn keeps_in_first_epoch() {
        let attn = vec![0.2; 5];
        let d = decide(
            DownsampleStrategy::Attentive,
            &attn,
            Some(&attn.clone()),
            4,
            2,
            1e-1,
            1,
            &mut rng(),
        );
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn attentive_drops_argmin_when_kl_small() {
        // Target weight 0.4, neighbours [0.3, 0.05, 0.25]; argmin = local 1.
        let attn = vec![0.4, 0.3, 0.05, 0.25];
        let prev = attn.clone();
        let d = decide(
            DownsampleStrategy::Attentive,
            &attn,
            Some(&prev),
            3,
            1,
            1e-3,
            3,
            &mut rng(),
        );
        assert_eq!(d, Decision::Drop(1));
    }

    #[test]
    fn attentive_keeps_when_kl_large() {
        let attn = vec![0.4, 0.3, 0.05, 0.25];
        let prev = vec![0.1, 0.1, 0.4, 0.4];
        let d = decide(
            DownsampleStrategy::Attentive,
            &attn,
            Some(&prev),
            3,
            1,
            1e-3,
            3,
            &mut rng(),
        );
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn attentive_keeps_without_history() {
        let attn = vec![0.4, 0.3, 0.05, 0.25];
        let d = decide(
            DownsampleStrategy::Attentive,
            &attn,
            None,
            3,
            1,
            1e-3,
            3,
            &mut rng(),
        );
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn random_drops_without_kl() {
        let attn = vec![0.25; 5];
        let d = decide(
            DownsampleStrategy::Random,
            &attn,
            None,
            4,
            2,
            1e-9, // threshold irrelevant for Random
            2,
            &mut rng(),
        );
        match d {
            Decision::Drop(i) => assert!(i < 4),
            Decision::Keep => panic!("random strategy should drop"),
        }
    }

    #[test]
    fn off_never_drops() {
        let attn = vec![0.2; 6];
        let d = decide(
            DownsampleStrategy::Off,
            &attn,
            Some(&attn.clone()),
            5,
            1,
            1e3,
            9,
            &mut rng(),
        );
        assert_eq!(d, Decision::Keep);
    }

    #[test]
    fn relay_edge_is_elementwise_max() {
        let relay = relay_edge(&[1.0, -2.0, 0.5], &[0.5, 3.0, 0.5]);
        assert_eq!(relay, vec![1.0, 3.0, 0.5]);
    }

    #[test]
    fn kl_matches_hand_computation() {
        let kl = kl_divergence(&[0.9, 0.1], &[0.5, 0.5]);
        assert!((kl - 0.3680).abs() < 1e-3);
        // Regression: a vanished slot used to return +∞ and poison any
        // aggregate built from trigger values; it must now be large (far
        // above the paper's r = 1e-3, so disjoint support still never
        // triggers downsampling) but finite.
        let no_overlap = kl_divergence(&[0.5, 0.5], &[1.0, 0.0]);
        assert!(no_overlap.is_finite());
        assert!(no_overlap > 1.0);
    }

    #[test]
    fn decide_with_kl_reports_trigger_value() {
        let attn = vec![0.4, 0.3, 0.05, 0.25];
        let prev = attn.clone();
        let (d, kl) = decide_with_kl(
            DownsampleStrategy::Attentive,
            &attn,
            Some(&prev),
            3,
            1,
            1e-3,
            3,
            &mut rng(),
        );
        assert_eq!(d, Decision::Drop(1));
        let kl = kl.expect("attentive path with history evaluates Eq. 9");
        assert!(kl.is_finite() && kl < 1e-3);
        // Keep path still reports the divergence it compared.
        let far = vec![0.1, 0.1, 0.4, 0.4];
        let (d, kl) = decide_with_kl(
            DownsampleStrategy::Attentive,
            &attn,
            Some(&far),
            3,
            1,
            1e-3,
            3,
            &mut rng(),
        );
        assert_eq!(d, Decision::Keep);
        assert!(kl.expect("evaluated").is_finite());
        // No history ⇒ no KL evaluated.
        let (_, kl) = decide_with_kl(
            DownsampleStrategy::Attentive,
            &attn,
            None,
            3,
            1,
            1e-3,
            3,
            &mut rng(),
        );
        assert!(kl.is_none());
    }

    #[test]
    fn attentive_survives_one_hot_collapse() {
        // Regression for the Eq. 9 trigger: attention collapsing to one-hot
        // between epochs used to make KL infinite (or NaN through 0·ln 0),
        // wedging the trigger. The smoothed divergence is huge ⇒ Keep.
        let prev = vec![0.25, 0.25, 0.25, 0.25];
        let attn = vec![0.0, 1.0, 0.0, 0.0];
        let d = decide(
            DownsampleStrategy::Attentive,
            &attn,
            Some(&prev),
            3,
            1,
            1e-3,
            4,
            &mut rng(),
        );
        assert_eq!(d, Decision::Keep);
    }
}
