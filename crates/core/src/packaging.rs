//! Heterogeneous message packaging (Eq. 1–2) — `PACK∘` and `PACK▷`.
//!
//! A *message pack* is the element-wise interaction `m = v ⊙ e` between a
//! node representation and the embedding of the edge connecting it towards
//! the target. The pack matrix stacks the target's own self-loop pack
//! `m_t = v_t ⊙ e_{t,t}` on top of all neighbour packs.

use std::sync::{Arc, OnceLock};

use rustc_hash::FxHashMap;
use widen_graph::HeteroGraph;
use widen_obs::{Counter, Stopwatch};
use widen_tensor::{Tape, Tensor, Var};

use crate::state::DeepState;
use widen_sampling::WideSet;

/// Packaging-phase wall clock, accumulated on [`widen_obs::Registry::global`]
/// because `PACK` runs deep inside the forward pass, where no owned registry
/// is threaded through. Chunks run in parallel, so the total can exceed
/// elapsed wall time — it is CPU-time-shaped, which is what the per-epoch
/// phase breakdown wants anyway.
fn packaging_counters() -> &'static (Arc<Counter>, Arc<Counter>) {
    static HANDLES: OnceLock<(Arc<Counter>, Arc<Counter>)> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let reg = widen_obs::Registry::global();
        (
            reg.counter("core_packaging_nanos_total"),
            reg.counter("core_packaging_calls_total"),
        )
    })
}

/// Current value of the global packaging-nanos counter; the trainer diffs
/// this across an epoch to report the packaging phase.
pub fn packaging_nanos_total() -> u64 {
    packaging_counters().0.get()
}

fn record_packaging(sw: &Stopwatch) {
    let (nanos, calls) = packaging_counters();
    sw.record_nanos(nanos);
    calls.inc();
}

/// Edge-vocabulary index of a graph edge type.
///
/// The model's edge-embedding table `G_edge` holds one row per graph edge
/// type followed by one learned **self-loop** row per node type (§3.1: "we
/// also learn a self-loop edge embedding `e_{t,t}` between the same type of
/// nodes").
pub fn edge_index(edge_type: u16) -> usize {
    edge_type as usize
}

/// Edge-vocabulary index of the self-loop edge for a node type.
pub fn self_loop_index(num_edge_types: usize, node_type: u16) -> usize {
    num_edge_types + node_type as usize
}

/// Size of the model's edge vocabulary.
pub fn edge_vocab_size(num_edge_types: usize, num_node_types: usize) -> usize {
    num_edge_types + num_node_types
}

/// Intermediate results of a `PACK` call that the attention and
/// downsampling stages consume.
pub struct Packed {
    /// The pack matrix `M` (`(|set|+1) × d`): row 0 is `m_t`.
    pub packs: Var,
    /// The edge-representation matrix `E` used to build `M` (same shape);
    /// row `s+1` is the edge representation of local position `s`. Needed
    /// by Eq. 8's relay computation.
    pub edges: Var,
}

/// `PACK∘` (Eq. 1): builds the wide pack matrix for `target` and its
/// sampled wide neighbours.
pub fn pack_wide(
    tape: &mut Tape,
    graph: &HeteroGraph,
    wide: &WideSet,
    g_node: Var,
    g_edge: Var,
    num_edge_types: usize,
) -> Packed {
    let sw = Stopwatch::start();
    let ids: Vec<u32> = std::iter::once(wide.target)
        .chain(wide.entries.iter().map(|e| e.node))
        .collect();
    let edge_rows: Vec<usize> = std::iter::once(self_loop_index(
        num_edge_types,
        graph.node_type(wide.target).0,
    ))
    .chain(wide.entries.iter().map(|e| edge_index(e.edge_type)))
    .collect();
    let packed = pack_from_ids(tape, graph, &ids, &edge_rows, g_node, g_edge);
    record_packaging(&sw);
    packed
}

/// `PACK▷` (Eq. 2): builds the deep pack matrix for one walk, honouring
/// relay-edge overrides left behind by Algorithm 2.
pub fn pack_deep(
    tape: &mut Tape,
    graph: &HeteroGraph,
    deep: &DeepState,
    g_node: Var,
    g_edge: Var,
    num_edge_types: usize,
) -> Packed {
    let sw = Stopwatch::start();
    let ids: Vec<u32> = std::iter::once(deep.set.target)
        .chain(deep.set.entries.iter().map(|e| e.node))
        .collect();

    let features = gather_features(graph, &ids);
    let x = tape.leaf(features);
    let v = tape.matmul(x, g_node);

    let has_override = deep.edge_override.iter().any(Option::is_some);
    let edges = if has_override {
        // Mixed rows: trainable edge-type embeddings where no relay exists,
        // constant relay vectors elsewhere.
        let mut rows: Vec<Var> = Vec::with_capacity(ids.len());
        let self_loop = self_loop_index(num_edge_types, graph.node_type(deep.set.target).0);
        rows.push(tape.select_rows(g_edge, &[self_loop]));
        for (s, entry) in deep.set.entries.iter().enumerate() {
            match &deep.edge_override[s] {
                Some(relay) => rows.push(tape.leaf(Tensor::row_vector(relay))),
                None => rows.push(tape.select_rows(g_edge, &[edge_index(entry.edge_type)])),
            }
        }
        tape.vstack(&rows)
    } else {
        let edge_rows: Vec<usize> = std::iter::once(self_loop_index(
            num_edge_types,
            graph.node_type(deep.set.target).0,
        ))
        .chain(deep.set.entries.iter().map(|e| edge_index(e.edge_type)))
        .collect();
        tape.select_rows(g_edge, &edge_rows)
    };

    let packs = tape.mul(v, edges);
    record_packaging(&sw);
    Packed { packs, edges }
}

/// Batched `PACK` output: one flat pack/edge matrix for many wide sets or
/// deep walks, plus the per-unit row spans needed to address it.
///
/// A pack row is fully determined by its `(node, edge-vocab-row)` pair, and
/// those pairs repeat heavily inside a chunk, so the batch is assembled in
/// two layers: `unique_packs` holds each distinct pair once, and the flat
/// matrices are cheap [`Tape::gather_rows`] views of it. Projection matmuls
/// should run on `unique_packs` (via [`PackedBatch::project`]) — that is
/// where the batched engine's FLOP savings over the per-node path live.
pub struct PackedBatch {
    /// Flat pack matrix (`(Σ(|set_i|+1)) × d`); each unit's rows are
    /// consecutive with its own `m_t` first.
    pub packs: Var,
    /// Flat edge-representation matrix (same shape); unit-local row `s+1`
    /// is the edge representation of local position `s` (Eq. 8 relays).
    pub edges: Var,
    /// Deduplicated pack matrix (`U × d`): one row per distinct
    /// `(node, edge-row)` pair (relay-overridden rows are never shared).
    pub unique_packs: Var,
    /// Flat row → `unique_packs` row: `packs[r] == unique_packs[flat_index[r]]`.
    pub flat_index: Vec<usize>,
    /// Per-unit `(start, len)` row ranges into `packs` / `edges`. This is
    /// the node→row-range (or walk→row-range) map that keeps downsampling
    /// outcomes extractable per node from the batched tensors.
    pub spans: Vec<(usize, usize)>,
}

impl PackedBatch {
    /// Projects the packs through `weight` (`d × d'`), computing the matmul
    /// once per unique row and broadcasting back to the flat layout.
    pub fn project(&self, tape: &mut Tape, weight: Var) -> Var {
        let unique = tape.matmul(self.unique_packs, weight);
        tape.gather_rows(unique, &self.flat_index)
    }
}

/// Batched `PACK∘` (Eq. 1): assembles the wide pack matrices of a whole
/// chunk into one flat tensor — a single feature gather and one `G_node`
/// projection matmul over the *unique* `(node, edge-row)` pairs, then a
/// cheap row gather back into the flat layout.
pub fn pack_wide_batch(
    tape: &mut Tape,
    graph: &HeteroGraph,
    wides: &[&WideSet],
    g_node: Var,
    g_edge: Var,
    num_edge_types: usize,
) -> PackedBatch {
    let sw = Stopwatch::start();
    let total: usize = wides.iter().map(|w| w.entries.len() + 1).sum();
    let mut ids = Vec::with_capacity(total);
    let mut edge_rows = Vec::with_capacity(total);
    let mut spans = Vec::with_capacity(wides.len());
    for wide in wides {
        spans.push((ids.len(), wide.entries.len() + 1));
        ids.push(wide.target);
        edge_rows.push(self_loop_index(
            num_edge_types,
            graph.node_type(wide.target).0,
        ));
        for e in &wide.entries {
            ids.push(e.node);
            edge_rows.push(edge_index(e.edge_type));
        }
    }
    let batch = assemble_batch(tape, graph, &ids, &edge_rows, &[], g_node, g_edge, spans);
    record_packaging(&sw);
    batch
}

/// Batched `PACK▷` (Eq. 2) over many walks (typically walk-major, grouped
/// by target node). Relay-edge overrides are honoured without splitting
/// the batch: overridden rows are masked out of the `G_edge` gather (so no
/// gradient reaches the table there) and re-filled from a constant tensor
/// holding the relay vectors.
pub fn pack_deep_batch(
    tape: &mut Tape,
    graph: &HeteroGraph,
    deeps: &[&DeepState],
    g_node: Var,
    g_edge: Var,
    num_edge_types: usize,
) -> PackedBatch {
    let sw = Stopwatch::start();
    let total: usize = deeps.iter().map(|d| d.len() + 1).sum();
    let mut ids = Vec::with_capacity(total);
    let mut edge_rows = Vec::with_capacity(total);
    let mut spans = Vec::with_capacity(deeps.len());
    let mut overrides: Vec<(usize, &[f32])> = Vec::new();
    for deep in deeps {
        spans.push((ids.len(), deep.len() + 1));
        ids.push(deep.set.target);
        edge_rows.push(self_loop_index(
            num_edge_types,
            graph.node_type(deep.set.target).0,
        ));
        for (s, entry) in deep.set.entries.iter().enumerate() {
            if let Some(relay) = &deep.edge_override[s] {
                overrides.push((ids.len(), relay));
                // The gathered row is zero-masked below; index 0 is a
                // placeholder keeping the gather rectangular.
                edge_rows.push(0);
            } else {
                edge_rows.push(edge_index(entry.edge_type));
            }
            ids.push(entry.node);
        }
    }

    let batch = assemble_batch(
        tape, graph, &ids, &edge_rows, &overrides, g_node, g_edge, spans,
    );
    record_packaging(&sw);
    batch
}

/// Shared batch assembly with two-level deduplication.
///
/// Flat row `r` is the pack `v(ids[r]) ⊙ e(edge_rows[r])`, so it is fully
/// determined by its `(node, edge-row)` pair — except at relay-override
/// positions, whose edge vectors are walk-specific constants. The assembler
/// therefore computes each distinct pair once (`unique_packs`), gives every
/// override position a private unique row, and reconstitutes the flat
/// matrices with [`Tape::gather_rows`]. Node features repeat even more than
/// pairs do, so the `d₀`-wide `G_node` projection additionally runs on the
/// distinct node set only. Every flat row is a bitwise copy of the value the
/// undeduplicated assembly would produce: identical inputs flow through the
/// identical kernels, just once per distinct row.
#[allow(clippy::too_many_arguments)]
fn assemble_batch(
    tape: &mut Tape,
    graph: &HeteroGraph,
    ids: &[u32],
    edge_rows: &[usize],
    overrides: &[(usize, &[f32])],
    g_node: Var,
    g_edge: Var,
    spans: Vec<(usize, usize)>,
) -> PackedBatch {
    let override_at: FxHashMap<usize, &[f32]> =
        overrides.iter().map(|&(row, relay)| (row, relay)).collect();

    let mut slot: FxHashMap<(u32, usize), usize> = FxHashMap::default();
    let mut u_ids: Vec<u32> = Vec::new();
    let mut u_edge_rows: Vec<usize> = Vec::new();
    let mut u_overrides: Vec<(usize, &[f32])> = Vec::new();
    let mut flat_index: Vec<usize> = Vec::with_capacity(ids.len());
    for (r, (&id, &edge_row)) in ids.iter().zip(edge_rows).enumerate() {
        let u = if let Some(&relay) = override_at.get(&r) {
            let u = u_ids.len();
            u_ids.push(id);
            u_edge_rows.push(edge_row);
            u_overrides.push((u, relay));
            u
        } else {
            *slot.entry((id, edge_row)).or_insert_with(|| {
                u_ids.push(id);
                u_edge_rows.push(edge_row);
                u_ids.len() - 1
            })
        };
        flat_index.push(u);
    }
    let unique = u_ids.len();

    let mut node_slot: FxHashMap<u32, usize> = FxHashMap::default();
    let mut unique_nodes: Vec<u32> = Vec::new();
    let node_of: Vec<usize> = u_ids
        .iter()
        .map(|&id| {
            *node_slot.entry(id).or_insert_with(|| {
                unique_nodes.push(id);
                unique_nodes.len() - 1
            })
        })
        .collect();

    let x = tape.leaf(gather_features(graph, &unique_nodes));
    let projected = tape.matmul(x, g_node);
    let v = tape.gather_rows(projected, &node_of);

    let gathered = tape.gather_rows(g_edge, &u_edge_rows);
    let edges_unique = if u_overrides.is_empty() {
        gathered
    } else {
        let d = tape.value(gathered).cols();
        let mut mask = Tensor::full(unique, d, 1.0);
        let mut constants = Tensor::zeros(unique, d);
        for &(row, relay) in &u_overrides {
            mask.row_mut(row).fill(0.0);
            constants.set_row(row, relay);
        }
        let mask = tape.leaf(mask);
        let constants = tape.leaf(constants);
        let kept = tape.mul(gathered, mask);
        tape.add(kept, constants)
    };
    let unique_packs = tape.mul(v, edges_unique);
    let packs = tape.gather_rows(unique_packs, &flat_index);
    let edges = tape.gather_rows(edges_unique, &flat_index);
    PackedBatch {
        packs,
        edges,
        unique_packs,
        flat_index,
        spans,
    }
}

fn pack_from_ids(
    tape: &mut Tape,
    graph: &HeteroGraph,
    ids: &[u32],
    edge_rows: &[usize],
    g_node: Var,
    g_edge: Var,
) -> Packed {
    let x = tape.leaf(gather_features(graph, ids));
    let v = tape.matmul(x, g_node);
    let edges = tape.select_rows(g_edge, edge_rows);
    let packs = tape.mul(v, edges);
    Packed { packs, edges }
}

/// Gathers raw feature rows for the listed nodes into a `(len, d₀)` tensor.
fn gather_features(graph: &HeteroGraph, ids: &[u32]) -> Tensor {
    let mut out = Tensor::zeros(ids.len(), graph.feature_dim());
    for (i, &id) in ids.iter().enumerate() {
        out.set_row(i, graph.feature_row(id));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_graph::GraphBuilder;
    use widen_sampling::{DeepEntry, DeepSet, WideEntry};
    use widen_tensor::Tensor;

    fn toy_graph() -> HeteroGraph {
        let mut b = GraphBuilder::new(&["a", "b"], &["ab"]);
        let ta = b.node_type("a").unwrap();
        let tb = b.node_type("b").unwrap();
        let e = b.edge_type("ab").unwrap();
        let n0 = b.add_node(ta, vec![1.0, 2.0], None);
        let n1 = b.add_node(tb, vec![3.0, 4.0], None);
        let n2 = b.add_node(tb, vec![5.0, 6.0], None);
        b.add_edge(n0, n1, e);
        b.add_edge(n0, n2, e);
        b.build()
    }

    #[test]
    fn edge_vocabulary_layout() {
        assert_eq!(edge_index(3), 3);
        assert_eq!(self_loop_index(4, 2), 6);
        assert_eq!(edge_vocab_size(4, 3), 7);
    }

    #[test]
    fn wide_pack_is_v_odot_e() {
        let g = toy_graph();
        let wide = WideSet {
            target: 0,
            entries: vec![WideEntry {
                node: 1,
                edge_type: 0,
            }],
        };
        let mut tape = Tape::new();
        // d = 2, identity node projection, distinguishable edge rows.
        let g_node = tape.leaf(Tensor::eye(2));
        // Edge vocab: [ab, selfloop-a, selfloop-b].
        let g_edge = tape.leaf(Tensor::from_rows(&[
            &[10.0, 10.0], // ab
            &[1.0, 1.0],   // self-loop a
            &[2.0, 2.0],   // self-loop b
        ]));
        let packed = pack_wide(&mut tape, &g, &wide, g_node, g_edge, 1);
        let m = tape.value(packed.packs);
        assert_eq!(m.shape(), (2, 2));
        // Row 0: v_0 ⊙ selfloop-a = [1,2] ⊙ [1,1].
        assert_eq!(m.row(0), &[1.0, 2.0]);
        // Row 1: v_1 ⊙ e_ab = [3,4] ⊙ [10,10].
        assert_eq!(m.row(1), &[30.0, 40.0]);
    }

    #[test]
    fn deep_pack_respects_overrides() {
        let g = toy_graph();
        let set = DeepSet {
            target: 0,
            entries: vec![
                DeepEntry {
                    node: 1,
                    edge_type: 0,
                },
                DeepEntry {
                    node: 2,
                    edge_type: 0,
                },
            ],
        };
        let mut deep = DeepState::new(set);
        deep.edge_override[1] = Some(vec![100.0, 100.0]);

        let mut tape = Tape::new();
        let g_node = tape.leaf(Tensor::eye(2));
        let g_edge = tape.leaf(Tensor::from_rows(&[
            &[10.0, 10.0],
            &[1.0, 1.0],
            &[2.0, 2.0],
        ]));
        let packed = pack_deep(&mut tape, &g, &deep, g_node, g_edge, 1);
        let m = tape.value(packed.packs);
        assert_eq!(m.shape(), (3, 2));
        // Position 0 uses the trainable edge row.
        assert_eq!(m.row(1), &[30.0, 40.0]);
        // Position 1 uses the relay override.
        assert_eq!(m.row(2), &[500.0, 600.0]);
        // The edge matrix exposes the same representations.
        let e = tape.value(packed.edges);
        assert_eq!(e.row(2), &[100.0, 100.0]);
    }

    #[test]
    fn wide_batch_matches_per_node_packs() {
        let g = toy_graph();
        let w0 = WideSet {
            target: 0,
            entries: vec![
                WideEntry {
                    node: 1,
                    edge_type: 0,
                },
                WideEntry {
                    node: 2,
                    edge_type: 0,
                },
            ],
        };
        let w1 = WideSet {
            target: 2,
            entries: vec![],
        };
        let mut tape = Tape::new();
        let g_node = tape.leaf(Tensor::eye(2));
        let g_edge = tape.leaf(Tensor::from_rows(&[
            &[10.0, 10.0],
            &[1.0, 1.0],
            &[2.0, 2.0],
        ]));
        let batch = pack_wide_batch(&mut tape, &g, &[&w0, &w1], g_node, g_edge, 1);
        assert_eq!(batch.spans, vec![(0, 3), (3, 1)]);
        let flat = tape.value(batch.packs).clone();
        assert_eq!(flat.shape(), (4, 2));
        for (wide, &(start, len)) in [&w0, &w1].iter().zip(&batch.spans) {
            let single = pack_wide(&mut tape, &g, wide, g_node, g_edge, 1);
            let m = tape.value(single.packs);
            assert_eq!(m.rows(), len);
            for r in 0..len {
                assert_eq!(flat.row(start + r), m.row(r), "row {r} of span {start}");
            }
        }
    }

    #[test]
    fn deep_batch_matches_per_walk_packs_with_overrides() {
        let g = toy_graph();
        let set = |entries: Vec<DeepEntry>| DeepSet { target: 0, entries };
        let mut d0 = DeepState::new(set(vec![
            DeepEntry {
                node: 1,
                edge_type: 0,
            },
            DeepEntry {
                node: 2,
                edge_type: 0,
            },
        ]));
        d0.edge_override[1] = Some(vec![100.0, 100.0]);
        let d1 = DeepState::new(set(vec![DeepEntry {
            node: 2,
            edge_type: 0,
        }]));

        let mut tape = Tape::new();
        let g_node = tape.leaf(Tensor::eye(2));
        let g_edge = tape.leaf(Tensor::from_rows(&[
            &[10.0, 10.0],
            &[1.0, 1.0],
            &[2.0, 2.0],
        ]));
        let batch = pack_deep_batch(&mut tape, &g, &[&d0, &d1], g_node, g_edge, 1);
        assert_eq!(batch.spans, vec![(0, 3), (3, 2)]);
        let flat_packs = tape.value(batch.packs).clone();
        let flat_edges = tape.value(batch.edges).clone();
        for (deep, &(start, len)) in [&d0, &d1].iter().zip(&batch.spans) {
            let single = pack_deep(&mut tape, &g, deep, g_node, g_edge, 1);
            let m = tape.value(single.packs);
            let e = tape.value(single.edges);
            for r in 0..len {
                assert_eq!(flat_packs.row(start + r), m.row(r));
                assert_eq!(flat_edges.row(start + r), e.row(r));
            }
        }
        // The override row shows the relay vector, not the table row.
        assert_eq!(flat_edges.row(2), &[100.0, 100.0]);
    }

    #[test]
    fn deep_batch_override_blocks_gradient_to_edge_table() {
        let g = toy_graph();
        let mut d0 = DeepState::new(DeepSet {
            target: 0,
            entries: vec![DeepEntry {
                node: 1,
                edge_type: 0,
            }],
        });
        d0.edge_override[0] = Some(vec![2.0, 2.0]);
        let mut tape = Tape::new();
        let g_node = tape.leaf(Tensor::eye(2));
        let g_edge = tape.leaf(Tensor::from_rows(&[
            &[10.0, 10.0],
            &[1.0, 1.0],
            &[2.0, 2.0],
        ]));
        let batch = pack_deep_batch(&mut tape, &g, &[&d0], g_node, g_edge, 1);
        let loss = tape.sum(batch.packs);
        tape.backward(loss);
        let de = tape.grad(g_edge).unwrap();
        // Row 0 was the masked placeholder for the overridden position —
        // no gradient may leak through it; the self-loop row (1) must
        // still receive gradient.
        assert_eq!(de.row(0), &[0.0, 0.0]);
        assert!(de.row(1).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn empty_sets_pack_only_the_self_message() {
        let g = toy_graph();
        let wide = WideSet {
            target: 2,
            entries: vec![],
        };
        let mut tape = Tape::new();
        let g_node = tape.leaf(Tensor::eye(2));
        let g_edge = tape.leaf(Tensor::from_rows(&[
            &[10.0, 10.0],
            &[1.0, 1.0],
            &[2.0, 2.0],
        ]));
        let packed = pack_wide(&mut tape, &g, &wide, g_node, g_edge, 1);
        let m = tape.value(packed.packs);
        assert_eq!(m.shape(), (1, 2));
        // v_2 ⊙ selfloop-b = [5,6] ⊙ [2,2].
        assert_eq!(m.row(0), &[10.0, 12.0]);
    }
}
