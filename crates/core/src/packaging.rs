//! Heterogeneous message packaging (Eq. 1–2) — `PACK∘` and `PACK▷`.
//!
//! A *message pack* is the element-wise interaction `m = v ⊙ e` between a
//! node representation and the embedding of the edge connecting it towards
//! the target. The pack matrix stacks the target's own self-loop pack
//! `m_t = v_t ⊙ e_{t,t}` on top of all neighbour packs.

use widen_graph::HeteroGraph;
use widen_tensor::{Tape, Tensor, Var};

use crate::state::DeepState;
use widen_sampling::WideSet;

/// Edge-vocabulary index of a graph edge type.
///
/// The model's edge-embedding table `G_edge` holds one row per graph edge
/// type followed by one learned **self-loop** row per node type (§3.1: "we
/// also learn a self-loop edge embedding `e_{t,t}` between the same type of
/// nodes").
pub fn edge_index(edge_type: u16) -> usize {
    edge_type as usize
}

/// Edge-vocabulary index of the self-loop edge for a node type.
pub fn self_loop_index(num_edge_types: usize, node_type: u16) -> usize {
    num_edge_types + node_type as usize
}

/// Size of the model's edge vocabulary.
pub fn edge_vocab_size(num_edge_types: usize, num_node_types: usize) -> usize {
    num_edge_types + num_node_types
}

/// Intermediate results of a `PACK` call that the attention and
/// downsampling stages consume.
pub struct Packed {
    /// The pack matrix `M` (`(|set|+1) × d`): row 0 is `m_t`.
    pub packs: Var,
    /// The edge-representation matrix `E` used to build `M` (same shape);
    /// row `s+1` is the edge representation of local position `s`. Needed
    /// by Eq. 8's relay computation.
    pub edges: Var,
}

/// `PACK∘` (Eq. 1): builds the wide pack matrix for `target` and its
/// sampled wide neighbours.
pub fn pack_wide(
    tape: &mut Tape,
    graph: &HeteroGraph,
    wide: &WideSet,
    g_node: Var,
    g_edge: Var,
    num_edge_types: usize,
) -> Packed {
    let ids: Vec<u32> = std::iter::once(wide.target)
        .chain(wide.entries.iter().map(|e| e.node))
        .collect();
    let edge_rows: Vec<usize> = std::iter::once(self_loop_index(
        num_edge_types,
        graph.node_type(wide.target).0,
    ))
    .chain(wide.entries.iter().map(|e| edge_index(e.edge_type)))
    .collect();
    pack_from_ids(tape, graph, &ids, &edge_rows, g_node, g_edge)
}

/// `PACK▷` (Eq. 2): builds the deep pack matrix for one walk, honouring
/// relay-edge overrides left behind by Algorithm 2.
pub fn pack_deep(
    tape: &mut Tape,
    graph: &HeteroGraph,
    deep: &DeepState,
    g_node: Var,
    g_edge: Var,
    num_edge_types: usize,
) -> Packed {
    let ids: Vec<u32> = std::iter::once(deep.set.target)
        .chain(deep.set.entries.iter().map(|e| e.node))
        .collect();

    let features = gather_features(graph, &ids);
    let x = tape.leaf(features);
    let v = tape.matmul(x, g_node);

    let has_override = deep.edge_override.iter().any(Option::is_some);
    let edges = if has_override {
        // Mixed rows: trainable edge-type embeddings where no relay exists,
        // constant relay vectors elsewhere.
        let mut rows: Vec<Var> = Vec::with_capacity(ids.len());
        let self_loop = self_loop_index(num_edge_types, graph.node_type(deep.set.target).0);
        rows.push(tape.select_rows(g_edge, &[self_loop]));
        for (s, entry) in deep.set.entries.iter().enumerate() {
            match &deep.edge_override[s] {
                Some(relay) => rows.push(tape.leaf(Tensor::row_vector(relay))),
                None => rows.push(tape.select_rows(g_edge, &[edge_index(entry.edge_type)])),
            }
        }
        tape.vstack(&rows)
    } else {
        let edge_rows: Vec<usize> = std::iter::once(self_loop_index(
            num_edge_types,
            graph.node_type(deep.set.target).0,
        ))
        .chain(deep.set.entries.iter().map(|e| edge_index(e.edge_type)))
        .collect();
        tape.select_rows(g_edge, &edge_rows)
    };

    let packs = tape.mul(v, edges);
    Packed { packs, edges }
}

fn pack_from_ids(
    tape: &mut Tape,
    graph: &HeteroGraph,
    ids: &[u32],
    edge_rows: &[usize],
    g_node: Var,
    g_edge: Var,
) -> Packed {
    let x = tape.leaf(gather_features(graph, ids));
    let v = tape.matmul(x, g_node);
    let edges = tape.select_rows(g_edge, edge_rows);
    let packs = tape.mul(v, edges);
    Packed { packs, edges }
}

/// Gathers raw feature rows for the listed nodes into a `(len, d₀)` tensor.
fn gather_features(graph: &HeteroGraph, ids: &[u32]) -> Tensor {
    let mut out = Tensor::zeros(ids.len(), graph.feature_dim());
    for (i, &id) in ids.iter().enumerate() {
        out.set_row(i, graph.feature_row(id));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use widen_graph::GraphBuilder;
    use widen_sampling::{DeepEntry, DeepSet, WideEntry};
    use widen_tensor::Tensor;

    fn toy_graph() -> HeteroGraph {
        let mut b = GraphBuilder::new(&["a", "b"], &["ab"]);
        let ta = b.node_type("a");
        let tb = b.node_type("b");
        let e = b.edge_type("ab");
        let n0 = b.add_node(ta, vec![1.0, 2.0], None);
        let n1 = b.add_node(tb, vec![3.0, 4.0], None);
        let n2 = b.add_node(tb, vec![5.0, 6.0], None);
        b.add_edge(n0, n1, e);
        b.add_edge(n0, n2, e);
        b.build()
    }

    #[test]
    fn edge_vocabulary_layout() {
        assert_eq!(edge_index(3), 3);
        assert_eq!(self_loop_index(4, 2), 6);
        assert_eq!(edge_vocab_size(4, 3), 7);
    }

    #[test]
    fn wide_pack_is_v_odot_e() {
        let g = toy_graph();
        let wide = WideSet {
            target: 0,
            entries: vec![WideEntry { node: 1, edge_type: 0 }],
        };
        let mut tape = Tape::new();
        // d = 2, identity node projection, distinguishable edge rows.
        let g_node = tape.leaf(Tensor::eye(2));
        // Edge vocab: [ab, selfloop-a, selfloop-b].
        let g_edge = tape.leaf(Tensor::from_rows(&[
            &[10.0, 10.0], // ab
            &[1.0, 1.0],   // self-loop a
            &[2.0, 2.0],   // self-loop b
        ]));
        let packed = pack_wide(&mut tape, &g, &wide, g_node, g_edge, 1);
        let m = tape.value(packed.packs);
        assert_eq!(m.shape(), (2, 2));
        // Row 0: v_0 ⊙ selfloop-a = [1,2] ⊙ [1,1].
        assert_eq!(m.row(0), &[1.0, 2.0]);
        // Row 1: v_1 ⊙ e_ab = [3,4] ⊙ [10,10].
        assert_eq!(m.row(1), &[30.0, 40.0]);
    }

    #[test]
    fn deep_pack_respects_overrides() {
        let g = toy_graph();
        let set = DeepSet {
            target: 0,
            entries: vec![
                DeepEntry { node: 1, edge_type: 0 },
                DeepEntry { node: 2, edge_type: 0 },
            ],
        };
        let mut deep = DeepState::new(set);
        deep.edge_override[1] = Some(vec![100.0, 100.0]);

        let mut tape = Tape::new();
        let g_node = tape.leaf(Tensor::eye(2));
        let g_edge = tape.leaf(Tensor::from_rows(&[
            &[10.0, 10.0],
            &[1.0, 1.0],
            &[2.0, 2.0],
        ]));
        let packed = pack_deep(&mut tape, &g, &deep, g_node, g_edge, 1);
        let m = tape.value(packed.packs);
        assert_eq!(m.shape(), (3, 2));
        // Position 0 uses the trainable edge row.
        assert_eq!(m.row(1), &[30.0, 40.0]);
        // Position 1 uses the relay override.
        assert_eq!(m.row(2), &[500.0, 600.0]);
        // The edge matrix exposes the same representations.
        let e = tape.value(packed.edges);
        assert_eq!(e.row(2), &[100.0, 100.0]);
    }

    #[test]
    fn empty_sets_pack_only_the_self_message() {
        let g = toy_graph();
        let wide = WideSet { target: 2, entries: vec![] };
        let mut tape = Tape::new();
        let g_node = tape.leaf(Tensor::eye(2));
        let g_edge = tape.leaf(Tensor::from_rows(&[
            &[10.0, 10.0],
            &[1.0, 1.0],
            &[2.0, 2.0],
        ]));
        let packed = pack_wide(&mut tape, &g, &wide, g_node, g_edge, 1);
        let m = tape.value(packed.packs);
        assert_eq!(m.shape(), (1, 2));
        // v_2 ⊙ selfloop-b = [5,6] ⊙ [2,2].
        assert_eq!(m.row(0), &[10.0, 12.0]);
    }
}
