//! Training WIDEN (Algorithm 3): mini-batch semi-supervised cross-entropy
//! with active downsampling.
//!
//! Per epoch, every training node is visited once; its forward pass records
//! the wide/deep attention distributions, which (a) feed the KL trigger
//! (Eq. 9) against last epoch's distributions and (b) locate the
//! least-contributing neighbour for the argmin drop (Algorithms 1–2).
//! Gradient work is parallelised over batch chunks with deterministic
//! chunk-ordered reduction, so fixed seeds give bit-stable runs.

use std::path::Path;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use widen_graph::{HeteroGraph, NodeId};
use widen_obs::{Counter, Event, JsonlSink, Registry, SpanId, Stopwatch, TraceId, Tracer};
use widen_sampling::hash_seed;
use widen_tensor::{Adam, BufferPool, Optimizer, ProfileReport, Tensor};

use crate::engine::{self, NodeOutcome};
use crate::model::{MaskCache, WidenModel};
use crate::state::NodeState;

/// Per-epoch training telemetry.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean training cross-entropy per epoch.
    pub epoch_losses: Vec<f64>,
    /// Wall-clock seconds per epoch.
    pub epoch_secs: Vec<f64>,
    /// Per-epoch downsampling and Eq. 9 trigger telemetry.
    pub epoch_stats: Vec<EpochStats>,
    /// Per-epoch aggregated op profiles (one per epoch when
    /// [`Trainer::set_profiling`] is on, empty otherwise).
    pub epoch_profiles: Vec<ProfileReport>,
    /// Wide neighbours dropped by downsampling, cumulative.
    pub wide_drops: usize,
    /// Deep packs pruned by downsampling, cumulative.
    pub deep_drops: usize,
    /// Relay edges generated while pruning (Eq. 8), cumulative.
    pub relay_edges: usize,
}

/// One epoch's downsampling decisions and Eq. 9 trigger values.
#[derive(Clone, Debug, Default)]
pub struct EpochStats {
    /// Number of Eq. 9 KL evaluations (attentive sets with usable history).
    pub kl_count: u64,
    /// Mean of the evaluated KL trigger values, if any were evaluated.
    pub kl_mean: Option<f64>,
    /// Minimum evaluated KL trigger value, if any.
    pub kl_min: Option<f64>,
    /// Wide sets kept this epoch.
    pub wide_keeps: u64,
    /// Wide neighbours dropped this epoch.
    pub wide_drops: u64,
    /// Deep walks kept this epoch.
    pub deep_keeps: u64,
    /// Deep packs pruned this epoch.
    pub deep_drops: u64,
    /// Relay edges installed this epoch (Eq. 8).
    pub relay_edges: u64,
    /// Batches whose gradient health was evaluated (finite gradients).
    pub grad_batches: u64,
    /// Mean of per-batch global gradient L2 norms, if any batch was finite.
    pub grad_norm_mean: Option<f64>,
    /// Largest per-parameter `max|g|` seen this epoch.
    pub grad_max_abs: f64,
    /// Name of the parameter holding [`EpochStats::grad_max_abs`].
    pub grad_max_param: String,
    /// Batches whose reduced gradients contained NaN/Inf.
    pub nonfinite_batches: u64,
    /// Optimizer steps skipped because of non-finite gradients (only with
    /// [`Trainer::set_skip_nonfinite_steps`]).
    pub skipped_steps: u64,
}

impl EpochStats {
    pub(crate) fn observe_kl(&mut self, kl: Option<f64>) {
        if let Some(kl) = kl {
            self.kl_count += 1;
            let mean = self.kl_mean.get_or_insert(0.0);
            // Streaming mean; counts stay small enough for exact f64 sums,
            // but the incremental form avoids a separate accumulator.
            *mean += (kl - *mean) / self.kl_count as f64;
            self.kl_min = Some(self.kl_min.map_or(kl, |m| m.min(kl)));
        }
    }

    pub(crate) fn observe_grads(&mut self, norm: f64, max_abs: f64, max_param: Option<&str>) {
        self.grad_batches += 1;
        let mean = self.grad_norm_mean.get_or_insert(0.0);
        *mean += (norm - *mean) / self.grad_batches as f64;
        if max_abs > self.grad_max_abs {
            self.grad_max_abs = max_abs;
            if let Some(name) = max_param {
                self.grad_max_param = name.to_string();
            }
        }
    }
}

impl TrainReport {
    /// Final epoch's mean loss (0 before training).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(0.0)
    }

    /// Total training seconds.
    pub fn total_secs(&self) -> f64 {
        self.epoch_secs.iter().sum()
    }
}

/// Phase-timing counters, one set per trainer (on its own registry).
/// Chunk phases accumulate from parallel workers, so forward/backward nanos
/// are summed-across-threads CPU-ish time rather than wall time.
struct PhaseCounters {
    forward: Arc<Counter>,
    backward: Arc<Counter>,
    optim: Arc<Counter>,
    downsample: Arc<Counter>,
    epochs: Arc<Counter>,
    nonfinite: Arc<Counter>,
    skipped: Arc<Counter>,
    pool_hits: Arc<Counter>,
    pool_misses: Arc<Counter>,
    pool_bytes_reused: Arc<Counter>,
}

impl PhaseCounters {
    fn new(registry: &Registry) -> Self {
        Self {
            forward: registry.counter("core_forward_nanos_total"),
            backward: registry.counter("core_backward_nanos_total"),
            optim: registry.counter("core_optim_nanos_total"),
            downsample: registry.counter("core_downsample_nanos_total"),
            epochs: registry.counter("core_epochs_total"),
            nonfinite: registry.counter("core_nonfinite_batches_total"),
            skipped: registry.counter("core_skipped_steps_total"),
            pool_hits: registry.counter("core_grad_pool_hits_total"),
            pool_misses: registry.counter("core_grad_pool_misses_total"),
            pool_bytes_reused: registry.counter("core_grad_pool_bytes_reused_total"),
        }
    }
}

/// Drives Algorithm 3 over a training node set.
pub struct Trainer<'g> {
    model: WidenModel,
    graph: &'g HeteroGraph,
    states: FxHashMap<NodeId, NodeState>,
    optimizer: Adam,
    metrics: Registry,
    phase: PhaseCounters,
    sink: Option<JsonlSink>,
    tracer: Option<Tracer>,
    profiling: bool,
    skip_nonfinite_steps: bool,
    /// Warm gradient-buffer pools, one checked out per in-flight chunk
    /// (rayon workers run chunks concurrently via `&self`), returned with
    /// their free lists grown after each chunk. Steady state holds one
    /// pool per worker and backward passes allocate nothing.
    grad_pools: Mutex<Vec<BufferPool>>,
}

impl<'g> Trainer<'g> {
    /// Prepares training: samples every node's initial wide/deep
    /// neighbourhoods (Algorithm 3 line 3) and sets up Adam with the
    /// configured learning rate and L2 strength.
    pub fn new(model: WidenModel, graph: &'g HeteroGraph, train_nodes: &[NodeId]) -> Self {
        let seed = model.config.seed;
        let mut states = FxHashMap::default();
        for &node in train_nodes {
            states.insert(node, model.sample_state(graph, node, hash_seed(seed, &[1])));
        }
        let optimizer = Adam::with_lr(model.config.learning_rate, model.config.weight_decay);
        let metrics = Registry::new();
        let phase = PhaseCounters::new(&metrics);
        Self {
            model,
            graph,
            states,
            optimizer,
            metrics,
            phase,
            sink: None,
            tracer: None,
            profiling: false,
            skip_nonfinite_steps: false,
            grad_pools: Mutex::new(Vec::new()),
        }
    }

    /// Read access to the model.
    pub fn model(&self) -> &WidenModel {
        &self.model
    }

    /// This trainer's metric registry (phase timings, epoch counter).
    /// Per-instance so concurrent trainers — and tests — never share state;
    /// packaging time lives on [`Registry::global`] instead (see
    /// [`crate::packaging::packaging_nanos_total`]).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Streams one JSONL record per epoch (event `"epoch"`: loss, wall
    /// seconds, Eq. 9 KL trigger stats, keep/drop counts, phase nanos) to
    /// `path`, truncating any existing file. This is the trainer half of
    /// the `--metrics-out` flag.
    ///
    /// # Errors
    /// Propagates file-creation failures.
    pub fn set_metrics_out<P: AsRef<Path>>(&mut self, path: P) -> std::io::Result<()> {
        self.sink = Some(JsonlSink::create(path)?);
        Ok(())
    }

    /// Records per-epoch span trees into `tracer`: one
    /// `core.trainer.epoch` root per epoch with chunk-level
    /// forward/backward/downsample children (recorded from rayon workers),
    /// an optimizer-step span, and a synthetic packaging span from the
    /// packaging counter delta.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Turns on per-op tape profiling: every chunk's tape records op
    /// timings and FLOP estimates, merged into one [`ProfileReport`] per
    /// epoch (see [`TrainReport::epoch_profiles`] and the `op_profile`
    /// JSONL events next to the epoch records).
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// When on, a batch whose reduced gradients contain NaN/Inf skips the
    /// optimizer step instead of corrupting the weights. Off by default:
    /// the event is always recorded (counter + JSONL), but stepping
    /// through is the historical behaviour and stays the default.
    pub fn set_skip_nonfinite_steps(&mut self, on: bool) {
        self.skip_nonfinite_steps = on;
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> WidenModel {
        self.model
    }

    /// Current neighbour-set sizes `(Σ|W|, Σ|D| over walks)` across all
    /// training nodes — used by tests and the efficiency harness to verify
    /// downsampling actually shrinks the message volume.
    pub fn neighbor_volume(&self) -> (usize, usize) {
        let mut wide = 0;
        let mut deep = 0;
        for state in self.states.values() {
            wide += state.wide.len();
            deep += state.deeps.iter().map(|d| d.len()).sum::<usize>();
        }
        (wide, deep)
    }

    /// Algorithm 3's loop condition is "until `L` converges **or**
    /// `z = Z`": trains for at most `config.epochs` epochs, stopping early
    /// once the relative epoch-loss improvement stays below `tol` for
    /// `patience` consecutive epochs.
    pub fn fit_until_converged(
        &mut self,
        train_nodes: &[NodeId],
        tol: f64,
        patience: usize,
    ) -> TrainReport {
        assert!(patience >= 1, "patience must be at least 1");
        self.fit_impl(train_nodes, Some((tol, patience)))
    }

    /// Runs `config.epochs` training epochs over `train_nodes` (labelled).
    ///
    /// # Panics
    /// Panics if any training node is unlabelled or was not given to
    /// [`Trainer::new`].
    pub fn fit(&mut self, train_nodes: &[NodeId]) -> TrainReport {
        self.fit_impl(train_nodes, None)
    }

    fn fit_impl(
        &mut self,
        train_nodes: &[NodeId],
        convergence: Option<(f64, usize)>,
    ) -> TrainReport {
        let config = self.model.config.clone();
        let mut report = TrainReport::default();
        let mut order: Vec<NodeId> = train_nodes.to_vec();
        for &node in &order {
            assert!(
                self.graph.label(node).is_some(),
                "training node {node} is unlabelled"
            );
            assert!(
                self.states.contains_key(&node),
                "node {node} missing from trainer"
            );
        }

        // One shared, read-mostly mask cache for the whole fit: every Θ is
        // built at most once instead of once per chunk per batch per epoch.
        // (Only the per-node oracle engine consults it; the batched engine
        // encodes causality in its key spans.)
        let masks = MaskCache::new();

        for epoch in 1..=config.epochs {
            let start = Stopwatch::start();
            let phase_before = self.phase_snapshot();
            let epoch_span = self.tracer.as_ref().map(|t| t.span("core.trainer.epoch"));
            let ctx = epoch_span.as_ref().and_then(|s| s.trace().zip(s.id()));
            let epoch_start_ns = match (&self.tracer, ctx) {
                (Some(t), Some(_)) => Some(t.now_ns()),
                _ => None,
            };
            let mut shuffle_rng = StdRng::seed_from_u64(hash_seed(config.seed, &[2, epoch as u64]));
            order.shuffle(&mut shuffle_rng);

            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            let mut stats = EpochStats::default();
            let mut epoch_profile: Option<ProfileReport> = None;
            for batch in order.chunks(config.batch_size) {
                let (loss, outcomes) =
                    self.train_batch(batch, epoch, &masks, ctx, &mut stats, &mut epoch_profile);
                epoch_loss += loss;
                batches += 1;
                self.apply_outcomes(outcomes, &mut report, &mut stats);
            }
            // Packaging runs inside forward on worker threads and only
            // surfaces as a global counter; synthesise its epoch share as a
            // span so the trace shows all four phases.
            if let (Some(tracer), Some((trace, parent)), Some(start_ns)) =
                (&self.tracer, ctx, epoch_start_ns)
            {
                let pack =
                    crate::packaging::packaging_nanos_total().saturating_sub(phase_before[4]);
                if pack > 0 {
                    tracer.record_complete(
                        trace,
                        Some(parent),
                        "core.packaging.pack",
                        start_ns,
                        pack,
                    );
                }
            }
            drop(epoch_span);
            let mean_loss = epoch_loss / batches.max(1) as f64;
            let secs = start.elapsed_secs();
            self.phase.epochs.inc();
            self.emit_epoch_record(epoch, mean_loss, secs, &stats, &phase_before);
            if let Some(profile) = epoch_profile {
                self.emit_op_profile(epoch, &profile);
                report.epoch_profiles.push(profile);
            }
            report.epoch_losses.push(mean_loss);
            report.epoch_secs.push(secs);
            report.epoch_stats.push(stats);

            if let Some((tol, patience)) = convergence {
                let losses = &report.epoch_losses;
                if losses.len() > patience {
                    let converged = (0..patience).all(|k| {
                        let idx = losses.len() - 1 - k;
                        let prev = losses[idx - 1];
                        let curr = losses[idx];
                        prev - curr < tol * prev.abs().max(1e-12)
                    });
                    if converged {
                        break;
                    }
                }
            }
        }
        report
    }

    /// Opens a named child span of the epoch span, when both a tracer and
    /// an epoch context exist. Usable from rayon workers: parenting is
    /// explicit, not thread-local.
    fn trace_span(
        &self,
        ctx: Option<(TraceId, SpanId)>,
        name: &'static str,
    ) -> Option<widen_obs::Span> {
        match (&self.tracer, ctx) {
            (Some(t), Some((trace, parent))) => Some(t.child_span(trace, parent, name)),
            _ => None,
        }
    }

    /// Cumulative `[forward, backward, optim, downsample, packaging]` nanos;
    /// diffed across an epoch for the per-epoch phase breakdown.
    fn phase_snapshot(&self) -> [u64; 5] {
        [
            self.phase.forward.get(),
            self.phase.backward.get(),
            self.phase.optim.get(),
            self.phase.downsample.get(),
            crate::packaging::packaging_nanos_total(),
        ]
    }

    /// Writes the epoch's JSONL record, if a sink is configured. Metric IO
    /// must never take down training, so failures only warn.
    fn emit_epoch_record(
        &self,
        epoch: usize,
        loss: f64,
        secs: f64,
        stats: &EpochStats,
        phase_before: &[u64; 5],
    ) {
        let Some(sink) = &self.sink else { return };
        let after = self.phase_snapshot();
        let delta = |i: usize| after[i].saturating_sub(phase_before[i]);
        let event = Event::new("epoch")
            .u64("epoch", epoch as u64)
            .f64("loss", loss)
            .f64("secs", secs)
            .u64("kl_count", stats.kl_count)
            // Non-finite f64s render as JSON null, so "no KL evaluated"
            // surfaces as kl_mean/kl_min: null rather than a fake 0.
            .f64("kl_mean", stats.kl_mean.unwrap_or(f64::NAN))
            .f64("kl_min", stats.kl_min.unwrap_or(f64::NAN))
            .u64("wide_keeps", stats.wide_keeps)
            .u64("wide_drops", stats.wide_drops)
            .u64("deep_keeps", stats.deep_keeps)
            .u64("deep_drops", stats.deep_drops)
            .u64("relay_edges", stats.relay_edges)
            .u64("packaging_nanos", delta(4))
            .u64("forward_nanos", delta(0))
            .u64("backward_nanos", delta(1))
            .u64("optim_nanos", delta(2))
            .u64("downsample_nanos", delta(3))
            // Gradient health: NaN renders as null when no batch was finite.
            .f64("grad_norm", stats.grad_norm_mean.unwrap_or(f64::NAN))
            .f64("grad_max_abs", stats.grad_max_abs)
            .str("grad_max_param", &stats.grad_max_param)
            .u64("nonfinite_batches", stats.nonfinite_batches)
            .u64("skipped_steps", stats.skipped_steps);
        if let Err(e) = sink.emit(&event) {
            eprintln!(
                "warning: failed to write metrics record to {}: {e}",
                sink.path().display()
            );
        }
    }

    /// Writes the epoch's top-k op-profile rows as `op_profile` JSONL
    /// events next to the epoch record. Same never-fail policy as
    /// [`Trainer::emit_epoch_record`].
    fn emit_op_profile(&self, epoch: usize, profile: &ProfileReport) {
        const TOP_K: usize = 8;
        let Some(sink) = &self.sink else { return };
        for op in profile.top_k(TOP_K) {
            let event = Event::new("op_profile")
                .u64("epoch", epoch as u64)
                .str("op", op.name)
                .u64("count", op.count)
                .u64("fwd_nanos", op.fwd_nanos)
                .u64("bwd_nanos", op.bwd_nanos)
                .u64("flops", op.flops)
                .str("shape", &op.last_shape);
            if let Err(e) = sink.emit(&event) {
                eprintln!(
                    "warning: failed to write op_profile record to {}: {e}",
                    sink.path().display()
                );
                break;
            }
        }
    }

    /// One gradient step over a batch; returns the batch loss and the
    /// downsampling outcomes to apply. Gradient health (norm, max|g|,
    /// NaN/Inf) is evaluated on the reduced gradients before stepping.
    fn train_batch(
        &mut self,
        batch: &[NodeId],
        epoch: usize,
        masks: &MaskCache,
        ctx: Option<(TraceId, SpanId)>,
        stats: &mut EpochStats,
        epoch_profile: &mut Option<ProfileReport>,
    ) -> (f64, Vec<NodeOutcome>) {
        use rayon::prelude::*;
        let chunk_size = batch
            .len()
            .div_ceil(rayon::current_num_threads().max(1))
            .max(1);
        let batch_len = batch.len();

        let trace = match (&self.tracer, ctx) {
            (Some(t), Some((trace, parent))) => Some((t, trace, parent)),
            _ => None,
        };
        let chunk_ctx = engine::ChunkCtx {
            model: &self.model,
            graph: self.graph,
            states: &self.states,
            masks,
            profiling: self.profiling,
            trace,
        };
        let chunk_results: Vec<engine::ChunkResult> = batch
            .par_chunks(chunk_size)
            .map(|chunk| {
                // The warm pool round trip stays inside the worker closure
                // so a chunk's pool is parked (free lists grown) before the
                // next chunk on the same worker checks one out.
                let pool = self
                    .grad_pools
                    .lock()
                    .expect("grad pool lock")
                    .pop()
                    .unwrap_or_default();
                let before = pool.stats();
                let (result, pool) =
                    engine::run_chunk(&chunk_ctx, chunk, chunk, epoch, batch_len, pool);
                let after = pool.stats();
                self.phase.pool_hits.add(after.hits - before.hits);
                self.phase.pool_misses.add(after.misses - before.misses);
                self.phase
                    .pool_bytes_reused
                    .add(after.bytes_reused - before.bytes_reused);
                self.grad_pools.lock().expect("grad pool lock").push(pool);
                self.phase.forward.add(result.timings.forward_nanos);
                self.phase.backward.add(result.timings.backward_nanos);
                self.phase.downsample.add(result.timings.downsample_nanos);
                result
            })
            .collect();

        // Deterministic reduction in chunk order; the engine asserts the
        // shared canonical `ParamVars::pairs` order in debug builds.
        let mut total_loss = 0.0f64;
        let mut grads: Vec<(widen_tensor::ParamId, Tensor)> = Vec::new();
        let mut outcomes = Vec::with_capacity(batch.len());
        for chunk in chunk_results {
            total_loss += chunk.loss;
            engine::accumulate_grads(&mut grads, chunk.grads);
            if let Some(profile) = chunk.profile {
                match epoch_profile {
                    Some(acc) => acc.merge(&profile),
                    None => *epoch_profile = Some(profile),
                }
            }
            outcomes.extend(chunk.outcomes);
        }

        // Gradient health: one pass over the reduced gradients — same
        // order of work as the optimizer step it guards.
        let health = engine::grad_health(&grads);
        let skip = !health.finite && self.skip_nonfinite_steps;
        if health.finite {
            stats.observe_grads(
                health.norm,
                f64::from(health.max_abs),
                health.max_param.map(|id| self.model.params.name(id)),
            );
        } else {
            stats.nonfinite_batches += 1;
            self.phase.nonfinite.inc();
            if skip {
                stats.skipped_steps += 1;
                self.phase.skipped.inc();
            }
            if let Some(sink) = &self.sink {
                let _ = sink.emit(
                    &Event::new("nonfinite_grad")
                        .u64("epoch", epoch as u64)
                        .u64("batch_size", batch.len() as u64)
                        .bool("step_skipped", skip),
                );
            }
        }
        if !skip {
            let _optim_span = self.trace_span(ctx, "core.trainer.optim");
            let sw = Stopwatch::start();
            self.optimizer.step(&mut self.model.params, &grads);
            sw.record_nanos(&self.phase.optim);
        }
        (total_loss, outcomes)
    }

    /// Applies downsampling outcomes to the persistent per-node states,
    /// folding each decision (and any evaluated Eq. 9 value) into the
    /// epoch's telemetry. Delegates to the shared engine so sharded
    /// training applies identical state transitions.
    fn apply_outcomes(
        &mut self,
        outcomes: Vec<NodeOutcome>,
        report: &mut TrainReport,
        stats: &mut EpochStats,
    ) {
        engine::apply_outcomes(&mut self.states, outcomes, report, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::Variant;
    use crate::config::WidenConfig;
    use widen_data::{acm_like, Scale};

    fn tiny_config() -> WidenConfig {
        let mut c = WidenConfig::small();
        c.d = 16;
        c.n_w = 5;
        c.n_d = 5;
        c.phi = 2;
        c.epochs = 6;
        c.batch_size = 16;
        c.learning_rate = 5e-3;
        c.k_wide = 2;
        c.k_deep = 2;
        // Generous threshold so downsampling actually fires in few epochs.
        c.r_wide = 0.5;
        c.r_deep = 0.5;
        c
    }

    #[test]
    fn loss_decreases_over_training() {
        let dataset = acm_like(Scale::Smoke, 1);
        let train = &dataset.transductive.train;
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let mut trainer = Trainer::new(model, &dataset.graph, train);
        let report = trainer.fit(train);
        assert_eq!(report.epoch_losses.len(), 6);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.98,
            "loss should drop: first = {first}, last = {last}"
        );
        assert!(report.total_secs() > 0.0);
    }

    #[test]
    fn downsampling_shrinks_neighbor_volume() {
        let dataset = acm_like(Scale::Smoke, 2);
        let train = &dataset.transductive.train;
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let mut trainer = Trainer::new(model, &dataset.graph, train);
        let before = trainer.neighbor_volume();
        let report = trainer.fit(train);
        let after = trainer.neighbor_volume();
        assert!(
            report.wide_drops > 0 || report.deep_drops > 0,
            "expected some downsampling with a loose threshold"
        );
        assert!(after.0 + after.1 < before.0 + before.1);
    }

    #[test]
    fn lower_bounds_are_respected() {
        let dataset = acm_like(Scale::Smoke, 3);
        let train: Vec<u32> = dataset.transductive.train[..20].to_vec();
        let mut cfg = tiny_config();
        cfg.epochs = 12;
        cfg.r_wide = 10.0; // always trigger
        cfg.r_deep = 10.0;
        let model = WidenModel::for_graph(&dataset.graph, cfg.clone());
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        trainer.fit(&train);
        for state in trainer.states.values() {
            // Sets that started above the bound must not fall below it.
            assert!(state.wide.len() >= state.wide.len().min(cfg.k_wide));
            assert!(state.wide.is_empty() || state.wide.len() >= cfg.k_wide.min(cfg.n_w));
            for d in &state.deeps {
                assert!(d.is_empty() || d.len() >= cfg.k_deep.min(cfg.n_d));
            }
        }
    }

    #[test]
    fn no_downsampling_variant_keeps_sets_intact() {
        let dataset = acm_like(Scale::Smoke, 4);
        let train: Vec<u32> = dataset.transductive.train[..20].to_vec();
        let cfg = tiny_config().with_variant(Variant::no_downsampling());
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        let before = trainer.neighbor_volume();
        let report = trainer.fit(&train);
        assert_eq!(report.wide_drops, 0);
        assert_eq!(report.deep_drops, 0);
        assert_eq!(trainer.neighbor_volume(), before);
    }

    #[test]
    fn random_downsampling_drops_every_epoch() {
        let dataset = acm_like(Scale::Smoke, 5);
        let train: Vec<u32> = dataset.transductive.train[..10].to_vec();
        let mut cfg = tiny_config().with_variant(Variant::random_wide_downsampling());
        cfg.epochs = 4;
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        let report = trainer.fit(&train);
        // Epochs 2..4 each drop one wide neighbour per node (when above k).
        assert!(report.wide_drops > 0);
    }

    #[test]
    fn relay_edges_are_recorded_when_pruning_interior_packs() {
        let dataset = acm_like(Scale::Smoke, 6);
        let train: Vec<u32> = dataset.transductive.train[..20].to_vec();
        let mut cfg = tiny_config();
        cfg.epochs = 10;
        cfg.r_deep = 10.0; // aggressive pruning
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        let report = trainer.fit(&train);
        assert!(report.deep_drops > 0);
        assert!(
            report.relay_edges > 0,
            "interior prunes must generate relay edges"
        );
        // Some state should carry overrides.
        let has_override = trainer.states.values().any(|s| {
            s.deeps
                .iter()
                .any(|d| d.edge_override.iter().any(Option::is_some))
        });
        assert!(has_override);
    }

    #[test]
    fn training_is_seed_deterministic() {
        let dataset = acm_like(Scale::Smoke, 7);
        let train: Vec<u32> = dataset.transductive.train[..16].to_vec();
        let run = |seed: u64| {
            let cfg = tiny_config().with_seed(seed);
            let model = WidenModel::for_graph(&dataset.graph, cfg);
            let mut trainer = Trainer::new(model, &dataset.graph, &train);
            let report = trainer.fit(&train);
            (report.epoch_losses.clone(), trainer.into_model())
        };
        let (losses_a, model_a) = run(42);
        let (losses_b, model_b) = run(42);
        assert_eq!(losses_a, losses_b);
        let pa = model_a.params.snapshot();
        let pb = model_b.params.snapshot();
        for (a, b) in pa.iter().zip(&pb) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        let (losses_c, _) = run(43);
        assert_ne!(losses_a, losses_c);
    }

    #[test]
    fn convergence_stopping_halts_early() {
        let dataset = acm_like(Scale::Smoke, 9);
        let train: Vec<u32> = dataset.transductive.train[..24].to_vec();
        let mut cfg = tiny_config();
        cfg.epochs = 60;
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        // Very loose tolerance ⇒ "converged" almost immediately.
        let report = trainer.fit_until_converged(&train, 0.5, 2);
        assert!(
            report.epoch_losses.len() < 60,
            "should stop before the epoch cap, ran {}",
            report.epoch_losses.len()
        );
        assert!(
            report.epoch_losses.len() >= 3,
            "patience must be exhausted first"
        );
    }

    #[test]
    fn tight_convergence_tolerance_runs_to_cap() {
        let dataset = acm_like(Scale::Smoke, 10);
        let train: Vec<u32> = dataset.transductive.train[..16].to_vec();
        let mut cfg = tiny_config();
        cfg.epochs = 4;
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        // Impossible tolerance ⇒ no early stop.
        let report = trainer.fit_until_converged(&train, 0.0, 3);
        assert_eq!(report.epoch_losses.len(), 4);
    }

    #[test]
    fn checkpoint_round_trip_preserves_predictions() {
        let dataset = acm_like(Scale::Smoke, 11);
        let train: Vec<u32> = dataset.transductive.train[..24].to_vec();
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        trainer.fit(&train);
        let trained = trainer.into_model();
        let checkpoint = trained.save_weights();
        let preds_before = trained.predict(&dataset.graph, &train, 1);

        // A freshly initialised model differs…
        let mut fresh = WidenModel::for_graph(&dataset.graph, tiny_config().with_seed(999));
        let preds_fresh = fresh.predict(&dataset.graph, &train, 1);
        // …until the checkpoint is restored.
        fresh.load_weights(&checkpoint);
        let preds_after = fresh.predict(&dataset.graph, &train, 1);
        assert_eq!(preds_before, preds_after);
        assert_ne!(
            preds_before, preds_fresh,
            "seeds 0 vs 999 should disagree somewhere"
        );
    }

    #[test]
    fn metrics_out_writes_one_record_per_epoch() {
        let dataset = acm_like(Scale::Smoke, 12);
        let train: Vec<u32> = dataset.transductive.train[..20].to_vec();
        let cfg = tiny_config();
        let epochs = cfg.epochs;
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        let path = std::env::temp_dir().join(format!(
            "widen-trainer-metrics-{}.jsonl",
            std::process::id()
        ));
        trainer.set_metrics_out(&path).unwrap();
        let report = trainer.fit(&train);

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), epochs, "one JSONL record per epoch");
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with("{\"event\":\"epoch\""));
            assert!(line.contains(&format!("\"epoch\":{}", i + 1)));
            for field in [
                "\"loss\":",
                "\"kl_count\":",
                "\"kl_mean\":",
                "\"kl_min\":",
                "\"wide_keeps\":",
                "\"wide_drops\":",
                "\"deep_keeps\":",
                "\"deep_drops\":",
                "\"packaging_nanos\":",
                "\"forward_nanos\":",
                "\"backward_nanos\":",
                "\"optim_nanos\":",
                "\"downsample_nanos\":",
                "\"grad_norm\":",
                "\"grad_max_abs\":",
                "\"grad_max_param\":",
                "\"nonfinite_batches\":",
                "\"skipped_steps\":",
            ] {
                assert!(line.contains(field), "record {i} missing {field}: {line}");
            }
        }
        // The report mirrors the file: per-epoch stats with Eq. 9 values
        // once history exists (epoch 1 never evaluates KL).
        assert_eq!(report.epoch_stats.len(), epochs);
        assert_eq!(report.epoch_stats[0].kl_count, 0);
        assert!(report.epoch_stats[1..].iter().any(|s| s.kl_count > 0));
        for s in &report.epoch_stats[1..] {
            if let Some(kl) = s.kl_mean {
                assert!(kl.is_finite() && kl >= 0.0);
            }
        }
        let drops: u64 = report.epoch_stats.iter().map(|s| s.wide_drops).sum();
        assert_eq!(drops as usize, report.wide_drops);
        // Phase counters accumulated on the trainer's own registry.
        let snap = trainer.metrics().snapshot();
        assert_eq!(snap.counter("core_epochs_total"), Some(epochs as u64));
        assert!(snap.counter("core_forward_nanos_total").unwrap() > 0);
        assert!(snap.counter("core_backward_nanos_total").unwrap() > 0);
        assert!(snap.counter("core_optim_nanos_total").unwrap() > 0);
    }

    #[test]
    fn tracing_and_profiling_capture_epoch_structure() {
        use widen_obs::{span_tree, Tracer};
        let dataset = acm_like(Scale::Smoke, 13);
        let train: Vec<u32> = dataset.transductive.train[..20].to_vec();
        let mut cfg = tiny_config();
        cfg.epochs = 2;
        let model = WidenModel::for_graph(&dataset.graph, cfg);
        let mut trainer = Trainer::new(model, &dataset.graph, &train);
        let tracer = Tracer::new(99);
        trainer.set_tracer(tracer.clone());
        trainer.set_profiling(true);
        let report = trainer.fit(&train);

        // One merged op profile per epoch, naming real tensor ops with
        // time and FLOPs.
        assert_eq!(report.epoch_profiles.len(), 2);
        for profile in &report.epoch_profiles {
            assert!(!profile.is_empty());
            assert!(profile.fwd_nanos_total > 0);
            assert!(profile.bwd_nanos_total > 0);
            assert!(profile.total_flops() > 0);
            let top = profile.top_k(3);
            assert!(!top.is_empty());
            assert!(profile.ops.iter().any(|o| o.name == "matmul"));
        }

        // Gradient health observed on every (finite) batch.
        for stats in &report.epoch_stats {
            assert!(stats.grad_batches > 0);
            let norm = stats.grad_norm_mean.expect("finite batches");
            assert!(norm.is_finite() && norm > 0.0);
            assert!(stats.grad_max_abs > 0.0);
            assert!(!stats.grad_max_param.is_empty());
            assert_eq!(stats.nonfinite_batches, 0);
            assert_eq!(stats.skipped_steps, 0);
        }

        // The trace holds one epoch root per epoch, each with
        // forward/backward/optim children (cross-thread parenting).
        let records = tracer.drain();
        let epoch_roots: Vec<_> = records
            .iter()
            .filter(|r| r.name == "core.trainer.epoch")
            .collect();
        assert_eq!(epoch_roots.len(), 2);
        for root in &epoch_roots {
            let tree = span_tree(&records, root.trace);
            assert_eq!(tree.len(), 1, "epoch root is the only root");
            let child_names: Vec<&str> = tree[0]
                .children
                .iter()
                .map(|c| records[c.index].name.as_str())
                .collect();
            for needed in [
                "core.trainer.forward",
                "core.trainer.backward",
                "core.trainer.downsample",
                "core.trainer.optim",
            ] {
                assert!(
                    child_names.contains(&needed),
                    "epoch span missing child {needed}: {child_names:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "unlabelled")]
    fn unlabeled_train_node_rejected() {
        let dataset = acm_like(Scale::Smoke, 8);
        // Find an unlabelled node (author/subject).
        let unlabeled = (0..dataset.graph.num_nodes() as u32)
            .find(|&v| dataset.graph.label(v).is_none())
            .unwrap();
        let model = WidenModel::for_graph(&dataset.graph, tiny_config());
        let mut trainer = Trainer::new(model, &dataset.graph, &[unlabeled]);
        trainer.fit(&[unlabeled]);
    }
}
