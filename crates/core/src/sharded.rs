//! Data-parallel shard training (the distributed half of the paper's
//! efficiency claim): the graph is partitioned with
//! [`widen_graph::greedy_bfs_weighted`] (balancing training-node weight), each part is expanded into a halo subgraph
//! wide enough that every deep walk of length `N_d` stays shard-local, and
//! each global step runs one sub-batch per shard on its own worker before
//! merging gradients through the same ParamId-ordered reduction the
//! single-graph [`crate::Trainer`] uses.
//!
//! Determinism contract: for a fixed seed **and** fixed shard count, runs
//! are bitwise identical regardless of [`ShardParallelism`] — workers are
//! joined and reduced in shard-major, chunk-major order, and every
//! random stream (state sampling, epoch shuffle, downsampling) is keyed by
//! the node's *global* id via [`WidenModel::sample_state_as`], not its
//! shard-local index. With one shard the trainer degenerates exactly to
//! [`crate::Trainer`]: same shuffle, same chunk decomposition, same
//! reduction order, bitwise-equal losses and weights (pinned by the
//! `shard_parity` differential suite).
//!
//! On a single-core host the shards still run their steps back to back, so
//! besides wall time the trainer records the *modelled distributed critical
//! path*: per global step, the slowest shard's busy nanos plus the
//! merge/optimizer nanos — what a k-worker deployment would pay. The
//! `bench_shards` sweep and its CI band gate on that figure.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use widen_graph::{greedy_bfs_weighted, HeteroGraph, NodeId, NodeMapping};
use widen_obs::{Counter, Registry, Stopwatch};
use widen_sampling::hash_seed;
use widen_tensor::{Adam, BufferPool, Optimizer, Tensor};

use crate::engine::{self, ChunkCtx, ChunkResult, NodeOutcome};
use crate::model::{MaskCache, WidenModel};
use crate::state::NodeState;
use crate::trainer::{EpochStats, TrainReport};

/// How the per-step shard work is executed. Both modes produce bitwise
/// identical results; the reduction order is fixed by shard index, not by
/// completion order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardParallelism {
    /// Run shards back to back on the caller's thread. Deterministic and
    /// cheapest on a single-core host; the default for benchmarking, where
    /// the critical-path model supplies the distributed view.
    Sequential,
    /// One scoped OS thread per shard per step, joined in shard order.
    Threads,
}

/// Refinement passes handed to [`greedy_bfs_weighted`] when building the shard map.
const REFINEMENT_PASSES: usize = 2;

/// One shard: a halo-expanded induced subgraph, the global→local node
/// mapping, the persistent wide/deep states of its core training nodes
/// (keyed by *local* id), and a warm gradient-buffer pool.
struct Shard {
    graph: HeteroGraph,
    mapping: NodeMapping,
    states: FxHashMap<NodeId, NodeState>,
    pool: BufferPool,
    /// Core (pre-halo) member count, for telemetry.
    core_size: usize,
}

impl Shard {
    fn to_local(&self, global: NodeId) -> NodeId {
        self.mapping
            .to_new(global)
            .expect("core training node must be inside its own shard")
    }
}

/// Report from [`ShardedTrainer::fit`]: the familiar per-epoch telemetry
/// plus the distributed-scaling view.
#[derive(Clone, Debug, Default)]
pub struct ShardedTrainReport {
    /// Per-epoch losses, wall seconds and downsampling stats, shaped
    /// exactly like the single-graph trainer's report.
    pub train: TrainReport,
    /// Modelled distributed seconds per epoch: Σ over steps of
    /// (max over shards of shard busy time) + merge/optimizer time. With
    /// one shard this equals busy + merge time, so the s1→sk ratio is the
    /// parallel speedup a k-worker deployment would see.
    pub critical_path_secs: Vec<f64>,
    /// Per epoch, per shard: seconds the shard spent on forward/backward/
    /// downsample work (summed over its steps).
    pub shard_busy_secs: Vec<Vec<f64>>,
    /// Per epoch: seconds spent in the gradient merge + optimizer step
    /// (the serial section of every global step).
    pub merge_secs: Vec<f64>,
    /// Per epoch, per non-empty global step, per shard: busy nanos. The
    /// raw samples behind `critical_path_secs`, exposed so a benchmark
    /// repeating the (deterministic) fit can take per-step minima across
    /// repetitions — scheduler noise only ever adds time, so the
    /// elementwise floor is the clean estimate of the true compute.
    pub step_busy_nanos: Vec<Vec<Vec<u64>>>,
    /// Per epoch, per non-empty global step: merge + optimizer nanos.
    pub step_merge_nanos: Vec<Vec<u64>>,
}

impl ShardedTrainReport {
    /// Final epoch's mean loss (0 before training).
    pub fn final_loss(&self) -> f64 {
        self.train.final_loss()
    }

    /// Mean modelled distributed seconds per epoch.
    pub fn mean_critical_path_secs(&self) -> f64 {
        if self.critical_path_secs.is_empty() {
            return 0.0;
        }
        self.critical_path_secs.iter().sum::<f64>() / self.critical_path_secs.len() as f64
    }
}

/// Drives Algorithm 3 over `k` graph shards with a shared model and one
/// optimizer step per global batch.
pub struct ShardedTrainer {
    model: WidenModel,
    optimizer: Adam,
    shards: Vec<Shard>,
    /// Global node id → owning shard, from [`greedy_bfs_weighted`].
    assignment: Vec<u32>,
    /// Global ids of the training nodes, in caller order.
    train: Vec<NodeId>,
    parallelism: ShardParallelism,
    metrics: Registry,
    shard_busy: Vec<Arc<Counter>>,
    merge_nanos: Arc<Counter>,
    nonfinite: Arc<Counter>,
    epochs: Arc<Counter>,
}

impl ShardedTrainer {
    /// Partitions `graph` into `k` shards (greedy BFS edge-cut weighted to
    /// balance training nodes, halo radius `max(N_d, 1)` so deep walks stay
    /// local), samples every training node's initial wide/deep
    /// neighbourhoods *inside its shard* keyed by its global id, and sets
    /// up Adam exactly like [`crate::Trainer::new`].
    ///
    /// # Panics
    /// Panics if `k` is zero, exceeds the node count, if any training node
    /// is unlabelled, or if a shard ends up empty.
    pub fn new(model: WidenModel, graph: &HeteroGraph, train_nodes: &[NodeId], k: usize) -> Self {
        assert!(k >= 1, "shard count must be positive");
        assert!(
            k <= graph.num_nodes(),
            "shard count {k} exceeds node count {}",
            graph.num_nodes()
        );
        for &node in train_nodes {
            assert!(
                graph.label(node).is_some(),
                "training node {node} is unlabelled"
            );
        }
        let seed = model.config.seed;
        let radius = model.config.n_d.max(1);
        // Balance *training* nodes across shards, not raw node counts: the
        // per-step critical path is the busiest shard's sub-batch, so a
        // shard hoarding labelled nodes caps the achievable speedup at
        // |T| / max_p |T_p| no matter how even the subgraphs are. A train
        // node outweighs the whole unlabelled graph; plain nodes act as
        // the tiebreaker toward even subgraph (memory) sizes.
        let mut weights = vec![1u64; graph.num_nodes()];
        let boost = graph.num_nodes() as u64;
        for &node in train_nodes {
            weights[node as usize] = 1 + boost;
        }
        let partition = greedy_bfs_weighted(graph, k, REFINEMENT_PASSES, &weights);
        let assignment = partition.assignment.clone();

        let mut shards = Vec::with_capacity(k);
        for p in 0..k as u32 {
            let core_size = partition.part(p).len();
            let keep = partition.halo(graph, p, radius);
            assert!(!keep.is_empty(), "shard {p} is empty");
            let sub = graph.induced_subgraph(&keep);
            let mut states = FxHashMap::default();
            for &global in train_nodes {
                if assignment[global as usize] != p {
                    continue;
                }
                let local = sub
                    .mapping
                    .to_new(global)
                    .expect("core training node must be inside its own shard");
                states.insert(
                    local,
                    model.sample_state_as(&sub.graph, local, global, hash_seed(seed, &[1])),
                );
            }
            shards.push(Shard {
                graph: sub.graph,
                mapping: sub.mapping,
                states,
                pool: BufferPool::default(),
                core_size,
            });
        }

        let optimizer = Adam::with_lr(model.config.learning_rate, model.config.weight_decay);
        let metrics = Registry::new();
        let shard_busy = (0..k)
            .map(|p| metrics.counter(&format!("core_shard{p}_busy_nanos_total")))
            .collect();
        let merge_nanos = metrics.counter("core_shard_merge_nanos_total");
        let nonfinite = metrics.counter("core_nonfinite_batches_total");
        let epochs = metrics.counter("core_epochs_total");
        Self {
            model,
            optimizer,
            shards,
            assignment,
            train: train_nodes.to_vec(),
            parallelism: ShardParallelism::Threads,
            metrics,
            shard_busy,
            merge_nanos,
            nonfinite,
            epochs,
        }
    }

    /// Selects how shard steps execute (results are identical either way).
    pub fn set_parallelism(&mut self, parallelism: ShardParallelism) {
        self.parallelism = parallelism;
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per shard `(core nodes, nodes incl. halo, core training nodes)`.
    pub fn shard_sizes(&self) -> Vec<(usize, usize, usize)> {
        self.shards
            .iter()
            .map(|s| (s.core_size, s.graph.num_nodes(), s.states.len()))
            .collect()
    }

    /// Read access to the shared model.
    pub fn model(&self) -> &WidenModel {
        &self.model
    }

    /// Consumes the trainer, returning the trained model.
    pub fn into_model(self) -> WidenModel {
        self.model
    }

    /// This trainer's metric registry: per-shard busy nanos
    /// (`core_shard{p}_busy_nanos_total`), merge nanos, epoch and
    /// non-finite-batch counters.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Runs `config.epochs` sharded training epochs over the training set
    /// given at construction.
    pub fn fit(&mut self) -> ShardedTrainReport {
        let config = self.model.config.clone();
        let k = self.shards.len();
        let mut report = ShardedTrainReport::default();
        let masks: Vec<MaskCache> = (0..k).map(|_| MaskCache::new()).collect();
        // Like the single-graph trainer, the visit order is one persistent
        // vector re-shuffled in place each epoch (epoch z shuffles the
        // epoch z-1 permutation) — required for bitwise 1-shard parity.
        let mut order = self.train.clone();

        for epoch in 1..=config.epochs {
            let wall = Stopwatch::start();
            // Global shuffle with the single-graph trainer's stream, then a
            // per-shard order-preserving filter: with one shard this IS the
            // trainer's batch sequence.
            let mut rng = StdRng::seed_from_u64(hash_seed(config.seed, &[2, epoch as u64]));
            order.shuffle(&mut rng);
            let mut shard_orders: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); k];
            for &global in &order {
                let p = self.assignment[global as usize] as usize;
                let local = self.shards[p].to_local(global);
                shard_orders[p].push((local, global));
            }
            let steps = shard_orders
                .iter()
                .map(|o| o.len().div_ceil(config.batch_size))
                .max()
                .unwrap_or(0)
                .max(1);

            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            let mut stats = EpochStats::default();
            let mut epoch_busy = vec![0u64; k];
            let mut critical_nanos = 0u64;
            let mut merge_total_nanos = 0u64;
            let mut step_busy: Vec<Vec<u64>> = Vec::new();
            let mut step_merge: Vec<u64> = Vec::new();

            for step in 0..steps {
                let sub_batches: Vec<&[(NodeId, NodeId)]> = shard_orders
                    .iter()
                    .map(|o| {
                        let lo = (step * config.batch_size).min(o.len());
                        let hi = ((step + 1) * config.batch_size).min(o.len());
                        &o[lo..hi]
                    })
                    .collect();
                let step_total: usize = sub_batches.iter().map(|b| b.len()).sum();
                if step_total == 0 {
                    continue;
                }
                batches += 1;

                let model = &self.model;
                let results: Vec<(Vec<ChunkResult>, u64)> = match self.parallelism {
                    ShardParallelism::Sequential => self
                        .shards
                        .iter_mut()
                        .zip(&sub_batches)
                        .zip(&masks)
                        .map(|((shard, batch), mask)| {
                            run_shard_step(model, shard, mask, batch, epoch, step_total)
                        })
                        .collect(),
                    ShardParallelism::Threads => std::thread::scope(|scope| {
                        let handles: Vec<_> = self
                            .shards
                            .iter_mut()
                            .zip(&sub_batches)
                            .zip(&masks)
                            .map(|((shard, batch), mask)| {
                                scope.spawn(move || {
                                    run_shard_step(model, shard, mask, batch, epoch, step_total)
                                })
                            })
                            .collect();
                        // Joined in shard order: completion order never
                        // leaks into the reduction.
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("shard worker panicked"))
                            .collect()
                    }),
                };

                let max_busy = results.iter().map(|(_, busy)| *busy).max().unwrap_or(0);
                critical_nanos += max_busy;
                step_busy.push(results.iter().map(|(_, busy)| *busy).collect());
                for (p, (_, busy)) in results.iter().enumerate() {
                    epoch_busy[p] += busy;
                    self.shard_busy[p].add(*busy);
                }

                // Serial section: shard-major, chunk-major reduction through
                // the engine's ParamId-ordered accumulator, then one Adam
                // step for the whole global batch.
                let merge_sw = Stopwatch::start();
                let mut grads: Vec<(widen_tensor::ParamId, Tensor)> = Vec::new();
                let mut shard_outcomes: Vec<Vec<NodeOutcome>> = Vec::with_capacity(k);
                for (chunks, _) in results {
                    let mut outcomes = Vec::new();
                    for chunk in chunks {
                        epoch_loss += chunk.loss;
                        engine::accumulate_grads(&mut grads, chunk.grads);
                        outcomes.extend(chunk.outcomes);
                    }
                    shard_outcomes.push(outcomes);
                }
                let health = engine::grad_health(&grads);
                if health.finite {
                    stats.observe_grads(
                        health.norm,
                        f64::from(health.max_abs),
                        health.max_param.map(|id| self.model.params.name(id)),
                    );
                } else {
                    stats.nonfinite_batches += 1;
                    self.nonfinite.inc();
                }
                self.optimizer.step(&mut self.model.params, &grads);
                let merge_ns = merge_sw.elapsed_nanos();
                merge_total_nanos += merge_ns;
                critical_nanos += merge_ns;
                step_merge.push(merge_ns);

                for (p, outcomes) in shard_outcomes.into_iter().enumerate() {
                    engine::apply_outcomes(
                        &mut self.shards[p].states,
                        outcomes,
                        &mut report.train,
                        &mut stats,
                    );
                }
            }

            self.merge_nanos.add(merge_total_nanos);
            self.epochs.inc();
            report
                .train
                .epoch_losses
                .push(epoch_loss / batches.max(1) as f64);
            report.train.epoch_secs.push(wall.elapsed_secs());
            report.train.epoch_stats.push(stats);
            report.critical_path_secs.push(critical_nanos as f64 * 1e-9);
            report
                .shard_busy_secs
                .push(epoch_busy.iter().map(|&n| n as f64 * 1e-9).collect());
            report.merge_secs.push(merge_total_nanos as f64 * 1e-9);
            report.step_busy_nanos.push(step_busy);
            report.step_merge_nanos.push(step_merge);
        }
        report
    }
}

/// One shard's share of a global step: the sub-batch is cut into chunks
/// with the single-graph trainer's formula and run through the shared
/// engine, with each chunk's loss weighted by the *global* step size so the
/// cross-shard sum is the step mean. Returns the chunk results in order
/// plus the shard's busy nanos.
fn run_shard_step(
    model: &WidenModel,
    shard: &mut Shard,
    masks: &MaskCache,
    batch: &[(NodeId, NodeId)],
    epoch: usize,
    step_total: usize,
) -> (Vec<ChunkResult>, u64) {
    if batch.is_empty() {
        return (Vec::new(), 0);
    }
    let sw = Stopwatch::start();
    let chunk_size = batch
        .len()
        .div_ceil(rayon::current_num_threads().max(1))
        .max(1);
    let Shard {
        graph,
        states,
        pool,
        ..
    } = shard;
    let ctx = ChunkCtx {
        model,
        graph,
        states,
        masks,
        profiling: false,
        trace: None,
    };
    let mut results = Vec::with_capacity(batch.len().div_ceil(chunk_size));
    for chunk in batch.chunks(chunk_size) {
        let locals: Vec<NodeId> = chunk.iter().map(|&(local, _)| local).collect();
        let idents: Vec<NodeId> = chunk.iter().map(|&(_, global)| global).collect();
        let warm = std::mem::take(pool);
        let (result, warm) = engine::run_chunk(&ctx, &locals, &idents, epoch, step_total, warm);
        *pool = warm;
        results.push(result);
    }
    (results, sw.elapsed_nanos())
}
