//! The shared chunk-execution engine behind [`crate::Trainer`] and
//! [`crate::ShardedTrainer`]: forward + backward + downsampling decisions
//! over one chunk of a batch, gradient extraction in canonical
//! [`ParamVars::pairs`] order, the deterministic chunk-ordered reduction,
//! gradient-health evaluation, and the sequential application of
//! downsampling outcomes to persistent per-node states.
//!
//! Everything here is context-parameterised rather than `&self`-bound so
//! one shard's chunk runs against its own halo subgraph and state table
//! while sharing every line of the numeric path with the single-graph
//! trainer — the bitwise 1-shard ≡ trainer parity test rests on that.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use widen_graph::{HeteroGraph, NodeId};
use widen_obs::{SpanId, Stopwatch, TraceId, Tracer};
use widen_sampling::hash_seed;
use widen_tensor::{BufferPool, ParamId, ProfileReport, Tensor};

use crate::config::Execution;
use crate::downsample::{decide_with_kl, relay_edge, Decision};
use crate::model::{MaskCache, WidenModel};
use crate::state::NodeState;
use crate::trainer::{EpochStats, TrainReport};

/// Outcome of one node's epoch visit, produced inside parallel chunks and
/// applied to the persistent state sequentially.
pub(crate) struct NodeOutcome {
    pub node: NodeId,
    pub wide_attention: Option<Vec<f32>>,
    pub wide_decision: Decision,
    /// Eq. 9 value evaluated for the wide set, when the trigger ran.
    pub wide_kl: Option<f64>,
    pub deep: Vec<DeepOutcome>,
}

pub(crate) struct DeepOutcome {
    pub attention: Vec<f32>,
    pub decision: Decision,
    /// Eq. 9 value evaluated for this walk, when the trigger ran.
    pub kl: Option<f64>,
    /// `(position, relay vector)` to install before pruning.
    pub relay: Option<(usize, Vec<f32>)>,
}

/// Phase wall-nanos measured inside one chunk, returned to the caller so
/// each trainer folds them into its own counters.
#[derive(Clone, Copy, Default)]
pub(crate) struct ChunkTimings {
    pub forward_nanos: u64,
    pub backward_nanos: u64,
    pub downsample_nanos: u64,
}

pub(crate) struct ChunkResult {
    pub loss: f64,
    pub grads: Vec<(ParamId, Tensor)>,
    pub outcomes: Vec<NodeOutcome>,
    /// Per-chunk op profile when profiling is on.
    pub profile: Option<ProfileReport>,
    pub timings: ChunkTimings,
}

/// Everything a chunk needs, borrowed from whichever trainer runs it.
pub(crate) struct ChunkCtx<'a> {
    pub model: &'a WidenModel,
    pub graph: &'a HeteroGraph,
    pub states: &'a FxHashMap<NodeId, NodeState>,
    pub masks: &'a MaskCache,
    pub profiling: bool,
    /// Open chunk-phase spans as children of this `(tracer, trace, parent)`
    /// context, when present.
    pub trace: Option<(&'a Tracer, TraceId, SpanId)>,
}

impl ChunkCtx<'_> {
    fn trace_span(&self, name: &'static str) -> Option<widen_obs::Span> {
        self.trace
            .map(|(t, trace, parent)| t.child_span(trace, parent, name))
    }
}

/// Forward + backward over one chunk on its own tape, dispatched to the
/// engine the config selects. `chunk` holds graph-local node ids;
/// `idents[i]` is the identity keying node `i`'s downsampling rng stream
/// (the global id under sharding, the node itself otherwise). The chunk's
/// loss is scaled by `chunk.len() / batch_len` so summing chunk losses
/// across the whole (possibly cross-shard) step yields the step mean.
pub(crate) fn run_chunk(
    ctx: &ChunkCtx<'_>,
    chunk: &[NodeId],
    idents: &[NodeId],
    epoch: usize,
    batch_len: usize,
    pool: BufferPool,
) -> (ChunkResult, BufferPool) {
    debug_assert_eq!(chunk.len(), idents.len());
    match ctx.model.config.execution {
        Execution::Batched => run_chunk_batched(ctx, chunk, idents, epoch, batch_len, pool),
        Execution::PerNode => run_chunk_per_node(ctx, chunk, idents, epoch, batch_len, pool),
    }
}

/// Batched engine: one fused [`WidenModel::forward_batch`] for the whole
/// chunk. Downsampling still sees exactly the per-node artefacts it
/// needs — attention rows come out of the padded matrices via the
/// node→row-range maps, and relay packs/edges (Eq. 8) are read from the
/// flat `M▷`/`E▷` through each walk's span.
fn run_chunk_batched(
    ctx: &ChunkCtx<'_>,
    chunk: &[NodeId],
    idents: &[NodeId],
    epoch: usize,
    batch_len: usize,
    pool: BufferPool,
) -> (ChunkResult, BufferPool) {
    let config = &ctx.model.config;
    let mut timings = ChunkTimings::default();
    let span = ctx.trace_span("core.trainer.forward");
    let sw = Stopwatch::start();
    let mut tape = ctx.model.new_tape();
    if ctx.profiling {
        tape.enable_profiling();
    }
    tape.install_pool(pool);
    let pv = ctx.model.insert_params(&mut tape);

    let states: Vec<&NodeState> = chunk.iter().map(|&node| &ctx.states[&node]).collect();
    let labels: Vec<usize> = chunk
        .iter()
        .map(|&node| ctx.graph.label(node).expect("labelled") as usize)
        .collect();
    let fw = ctx.model.forward_batch(&mut tape, &pv, ctx.graph, &states);

    let ce = tape.softmax_cross_entropy(fw.logits, &labels);
    // Scale so that summing chunk losses yields the batch mean.
    let weight = chunk.len() as f32 / batch_len as f32;
    let loss = tape.scale(ce, weight);
    timings.forward_nanos = sw.elapsed_nanos();
    drop(span);

    let span = ctx.trace_span("core.trainer.backward");
    let sw = Stopwatch::start();
    tape.backward(loss);
    let grads = extract_grads(ctx.model, &tape, &pv);
    timings.backward_nanos = sw.elapsed_nanos();
    drop(span);

    // Downsampling decisions (Algorithm 3 lines 9–14), computed here so
    // the pack/edge values needed for relay edges are still on the tape.
    let span = ctx.trace_span("core.trainer.downsample");
    let sw = Stopwatch::start();
    let mut outcomes = Vec::with_capacity(chunk.len());
    for (i, &node) in chunk.iter().enumerate() {
        let state = states[i];
        let mut rng = StdRng::seed_from_u64(hash_seed(
            config.seed,
            &[3, epoch as u64, u64::from(idents[i])],
        ));

        let (wide_attention, wide_decision, wide_kl) = match &fw.wide {
            Some(wb) => {
                let attn = tape.value(wb.attention).row(i)[..wb.lens[i]].to_vec();
                let (decision, kl) = decide_with_kl(
                    config.variant.wide_downsampling,
                    &attn,
                    state.prev_wide_attention.as_deref(),
                    state.wide.len(),
                    config.k_wide,
                    config.r_wide,
                    epoch,
                    &mut rng,
                );
                (Some(attn), decision, kl)
            }
            None => (None, Decision::Keep, None),
        };

        let mut deep = Vec::new();
        if let Some(db) = &fw.deep {
            let (first_walk, walk_count) = db.node_walks[i];
            deep.reserve(walk_count);
            for phi in 0..walk_count {
                let walk = first_walk + phi;
                let (wstart, wlen) = db.walk_spans[walk];
                let deep_state = &state.deeps[phi];
                let attn = tape.value(db.attention).row(walk)[..wlen].to_vec();
                let (decision, kl) = decide_with_kl(
                    config.variant.deep_downsampling,
                    &attn,
                    deep_state.prev_attention.as_deref(),
                    deep_state.len(),
                    config.k_deep,
                    config.r_deep,
                    epoch,
                    &mut rng,
                );
                let relay = match decision {
                    Decision::Drop(s) if config.variant.relay_edges && s + 1 < deep_state.len() => {
                        // Eq. 8: maxpool(e_{s'+1,s'}, m_{s'}); within the
                        // walk, pack row s+1 and edge row s+2 (row 0 is
                        // the target's self loop) — offset by the walk's
                        // start row in the flat matrices.
                        let packs = tape.value(db.packs);
                        let edges = tape.value(db.edges);
                        let relay_vec =
                            relay_edge(edges.row(wstart + s + 2), packs.row(wstart + s + 1));
                        Some((s + 1, relay_vec))
                    }
                    _ => None,
                };
                deep.push(DeepOutcome {
                    attention: attn,
                    decision,
                    kl,
                    relay,
                });
            }
        }
        outcomes.push(NodeOutcome {
            node,
            wide_attention,
            wide_decision,
            wide_kl,
            deep,
        });
    }
    timings.downsample_nanos = sw.elapsed_nanos();
    drop(span);

    let pool = tape.take_pool();
    (
        ChunkResult {
            loss: f64::from(tape.value(loss).get(0, 0)),
            grads,
            outcomes,
            profile: tape.take_profile(),
            timings,
        },
        pool,
    )
}

/// Per-node oracle engine: the original one-subgraph-at-a-time path.
fn run_chunk_per_node(
    ctx: &ChunkCtx<'_>,
    chunk: &[NodeId],
    idents: &[NodeId],
    epoch: usize,
    batch_len: usize,
    pool: BufferPool,
) -> (ChunkResult, BufferPool) {
    let config = &ctx.model.config;
    let mut timings = ChunkTimings::default();
    let span = ctx.trace_span("core.trainer.forward");
    let sw = Stopwatch::start();
    let mut tape = ctx.model.new_tape();
    if ctx.profiling {
        tape.enable_profiling();
    }
    tape.install_pool(pool);
    let pv = ctx.model.insert_params(&mut tape);

    let mut logit_vars = Vec::with_capacity(chunk.len());
    let mut labels = Vec::with_capacity(chunk.len());
    let mut forwards = Vec::with_capacity(chunk.len());
    for (i, &node) in chunk.iter().enumerate() {
        let state = &ctx.states[&node];
        let fw = ctx
            .model
            .forward_node(&mut tape, &pv, ctx.graph, state, ctx.masks);
        logit_vars.push(fw.logits);
        labels.push(ctx.graph.label(node).expect("labelled") as usize);
        forwards.push((node, idents[i], fw));
    }

    let stacked = tape.vstack(&logit_vars);
    let ce = tape.softmax_cross_entropy(stacked, &labels);
    // Scale so that summing chunk losses yields the batch mean.
    let weight = chunk.len() as f32 / batch_len as f32;
    let loss = tape.scale(ce, weight);
    timings.forward_nanos = sw.elapsed_nanos();
    drop(span);

    let span = ctx.trace_span("core.trainer.backward");
    let sw = Stopwatch::start();
    tape.backward(loss);
    let grads = extract_grads(ctx.model, &tape, &pv);
    timings.backward_nanos = sw.elapsed_nanos();
    drop(span);

    // Downsampling decisions (Algorithm 3 lines 9–14), computed here so
    // the pack/edge values needed for relay edges are still on the tape.
    let span = ctx.trace_span("core.trainer.downsample");
    let sw = Stopwatch::start();
    let mut outcomes = Vec::with_capacity(chunk.len());
    for (node, ident, fw) in forwards {
        let state = &ctx.states[&node];
        let mut rng =
            StdRng::seed_from_u64(hash_seed(config.seed, &[3, epoch as u64, u64::from(ident)]));

        let (wide_attention, wide_decision, wide_kl) = match fw.wide_attention {
            Some(attn_var) => {
                let attn = tape.value(attn_var).row(0).to_vec();
                let (decision, kl) = decide_with_kl(
                    config.variant.wide_downsampling,
                    &attn,
                    state.prev_wide_attention.as_deref(),
                    state.wide.len(),
                    config.k_wide,
                    config.r_wide,
                    epoch,
                    &mut rng,
                );
                (Some(attn), decision, kl)
            }
            None => (None, Decision::Keep, None),
        };

        let mut deep = Vec::with_capacity(fw.deep.len());
        for (phi, dfw) in fw.deep.iter().enumerate() {
            let deep_state = &state.deeps[phi];
            let attn = tape.value(dfw.attention).row(0).to_vec();
            let (decision, kl) = decide_with_kl(
                config.variant.deep_downsampling,
                &attn,
                deep_state.prev_attention.as_deref(),
                deep_state.len(),
                config.k_deep,
                config.r_deep,
                epoch,
                &mut rng,
            );
            let relay = match decision {
                Decision::Drop(s) if config.variant.relay_edges && s + 1 < deep_state.len() => {
                    // Eq. 8: maxpool(e_{s'+1,s'}, m_{s'}); pack row s+1,
                    // edge row s+2 (row 0 is the target's self loop).
                    let packs = tape.value(dfw.packs);
                    let edges = tape.value(dfw.edges);
                    let relay_vec = relay_edge(edges.row(s + 2), packs.row(s + 1));
                    Some((s + 1, relay_vec))
                }
                _ => None,
            };
            deep.push(DeepOutcome {
                attention: attn,
                decision,
                kl,
                relay,
            });
        }
        outcomes.push(NodeOutcome {
            node,
            wide_attention,
            wide_decision,
            wide_kl,
            deep,
        });
    }
    timings.downsample_nanos = sw.elapsed_nanos();
    drop(span);

    let pool = tape.take_pool();
    (
        ChunkResult {
            loss: f64::from(tape.value(loss).get(0, 0)),
            grads,
            outcomes,
            profile: tape.take_profile(),
            timings,
        },
        pool,
    )
}

/// Pulls every parameter gradient off the tape in the canonical
/// [`crate::model::ParamVars::pairs`] order (zero tensors where a
/// parameter was unused, e.g. ablated branches).
fn extract_grads(
    model: &WidenModel,
    tape: &widen_tensor::Tape,
    pv: &crate::model::ParamVars,
) -> Vec<(ParamId, Tensor)> {
    pv.pairs(model.ids())
        .into_iter()
        .map(|(id, var)| {
            let shape = model.params.get(id).shape();
            let g = tape
                .grad(var)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(shape.0, shape.1));
            (id, g)
        })
        .collect()
}

/// Deterministic gradient reduction: folds `next` into `acc` in place,
/// relying on (and debug-asserting) the identical canonical ParamId order
/// every chunk extracts with. The first contribution is moved, not
/// copied. Callers control determinism by calling this in a fixed order —
/// chunk order within a shard, shard-major across shards.
pub(crate) fn accumulate_grads(acc: &mut Vec<(ParamId, Tensor)>, next: Vec<(ParamId, Tensor)>) {
    if acc.is_empty() {
        *acc = next;
        return;
    }
    debug_assert_eq!(acc.len(), next.len());
    for ((acc_id, a), (g_id, g)) in acc.iter_mut().zip(&next) {
        debug_assert_eq!(
            acc_id, g_id,
            "gradient reduction requires identical ParamId order across chunks"
        );
        a.add_scaled(1.0, g);
    }
}

/// Gradient health evaluated on the reduced gradients — the same pass and
/// order of work as the optimizer step it guards.
pub(crate) struct GradHealth {
    /// Global L2 norm (√Σg²).
    pub norm: f64,
    pub max_abs: f32,
    /// Parameter holding `max_abs`.
    pub max_param: Option<ParamId>,
    pub finite: bool,
}

pub(crate) fn grad_health(grads: &[(ParamId, Tensor)]) -> GradHealth {
    let mut sq_sum = 0.0f64;
    let mut max_abs = 0.0f32;
    let mut max_param: Option<ParamId> = None;
    let mut finite = true;
    for (id, g) in grads {
        let mut local_max = 0.0f32;
        for &v in g.as_slice() {
            if !v.is_finite() {
                finite = false;
            }
            let a = v.abs();
            if a > local_max {
                local_max = a;
            }
            sq_sum += f64::from(v) * f64::from(v);
        }
        if local_max > max_abs {
            max_abs = local_max;
            max_param = Some(*id);
        }
    }
    GradHealth {
        norm: sq_sum.sqrt(),
        max_abs,
        max_param,
        finite,
    }
}

/// Applies downsampling outcomes to the persistent per-node states,
/// folding each decision (and any evaluated Eq. 9 value) into the epoch's
/// telemetry. `outcomes[i].node` indexes `states` — graph-local under
/// sharding.
pub(crate) fn apply_outcomes(
    states: &mut FxHashMap<NodeId, NodeState>,
    outcomes: Vec<NodeOutcome>,
    report: &mut TrainReport,
    stats: &mut EpochStats,
) {
    for outcome in outcomes {
        let state = states.get_mut(&outcome.node).expect("state exists");
        stats.observe_kl(outcome.wide_kl);
        match outcome.wide_decision {
            Decision::Drop(n) => {
                state.prune_wide(n);
                report.wide_drops += 1;
                stats.wide_drops += 1;
            }
            Decision::Keep => {
                state.prev_wide_attention = outcome.wide_attention;
                stats.wide_keeps += 1;
            }
        }
        for (phi, deep_outcome) in outcome.deep.into_iter().enumerate() {
            let deep_state = &mut state.deeps[phi];
            stats.observe_kl(deep_outcome.kl);
            match deep_outcome.decision {
                Decision::Drop(s) => {
                    if let Some((pos, relay)) = deep_outcome.relay {
                        deep_state.edge_override[pos] = Some(relay);
                        report.relay_edges += 1;
                        stats.relay_edges += 1;
                    }
                    deep_state.prune(s);
                    report.deep_drops += 1;
                    stats.deep_drops += 1;
                }
                Decision::Keep => {
                    deep_state.prev_attention = Some(deep_outcome.attention);
                    stats.deep_keeps += 1;
                }
            }
        }
    }
}
