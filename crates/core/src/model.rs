//! The WIDEN model: parameters, the wide/deep attentive forward pass
//! (Eq. 3–7), the classification head (Eq. 10) and inductive inference.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use widen_graph::{HeteroGraph, NodeId};
use widen_sampling::{hash_seed, sample_deep_multi, sample_wide};
use widen_tensor::{he_normal, xavier_uniform, zeros_init, ParamId, ParamStore, Tape, Tensor, Var};

use crate::config::WidenConfig;
use crate::packaging::{edge_vocab_size, pack_deep, pack_wide, Packed};
use crate::state::NodeState;

/// Handles of every trainable tensor.
#[derive(Clone, Copy)]
pub struct ParamIds {
    /// Node feature projection `G_node` (`d₀ × d`).
    pub g_node: ParamId,
    /// Edge-type embedding table `G_edge` (`(|E types| + |V types|) × d`,
    /// self-loop rows appended).
    pub g_edge: ParamId,
    /// Wide attention query projection `W_Q∘`.
    pub wide_q: ParamId,
    /// Wide attention key projection `W_K∘`.
    pub wide_k: ParamId,
    /// Wide attention value projection `W_V∘`.
    pub wide_v: ParamId,
    /// Successive attention query projection `W_Q▷` (Eq. 4).
    pub deep_q1: ParamId,
    /// Successive attention key projection `W_K▷`.
    pub deep_k1: ParamId,
    /// Successive attention value projection `W_V▷`.
    pub deep_v1: ParamId,
    /// Deep gather query projection `W_Q▷′` (Eq. 5).
    pub deep_q2: ParamId,
    /// Deep gather key projection `W_K▷′`.
    pub deep_k2: ParamId,
    /// Deep gather value projection `W_V▷′`.
    pub deep_v2: ParamId,
    /// Fusion weight `W` (`2d × d`, Eq. 7).
    pub fuse_w: ParamId,
    /// Fusion bias `b` (`1 × d`).
    pub fuse_b: ParamId,
    /// Classifier projection `C` (`d × c`, Eq. 10).
    pub classifier: ParamId,
}

/// Tape-local variables for the parameters, inserted once per tape.
#[derive(Clone, Copy)]
pub struct ParamVars {
    g_node: Var,
    g_edge: Var,
    wide_q: Var,
    wide_k: Var,
    wide_v: Var,
    deep_q1: Var,
    deep_k1: Var,
    deep_v1: Var,
    deep_q2: Var,
    deep_k2: Var,
    deep_v2: Var,
    fuse_w: Var,
    fuse_b: Var,
    classifier: Var,
}

impl ParamVars {
    /// `(ParamId, Var)` pairs for gradient extraction after backward.
    pub fn pairs(&self, ids: &ParamIds) -> Vec<(ParamId, Var)> {
        vec![
            (ids.g_node, self.g_node),
            (ids.g_edge, self.g_edge),
            (ids.wide_q, self.wide_q),
            (ids.wide_k, self.wide_k),
            (ids.wide_v, self.wide_v),
            (ids.deep_q1, self.deep_q1),
            (ids.deep_k1, self.deep_k1),
            (ids.deep_v1, self.deep_v1),
            (ids.deep_q2, self.deep_q2),
            (ids.deep_k2, self.deep_k2),
            (ids.deep_v2, self.deep_v2),
            (ids.fuse_w, self.fuse_w),
            (ids.fuse_b, self.fuse_b),
            (ids.classifier, self.classifier),
        ]
    }
}

/// Outputs of one node's forward pass.
pub struct NodeForward {
    /// Updated node embedding `v_t'` (`1 × d`, Eq. 7).
    pub embedding: Var,
    /// Class logits `v_t'·C` (`1 × c`).
    pub logits: Var,
    /// Wide attention distribution (`1 × (|W|+1)`, Eq. 3), when the wide
    /// branch is enabled.
    pub wide_attention: Option<Var>,
    /// Per-φ deep attention distribution (`1 × (|D_φ|+1)`, Eq. 5) and the
    /// packed matrices (`M▷`, `E▷`) needed for relay-edge computation.
    pub deep: Vec<DeepForward>,
}

/// Deep-branch forward artefacts for one walk.
pub struct DeepForward {
    /// Attention distribution over `[m_t ; packs]` from Eq. 5.
    pub attention: Var,
    /// The pack matrix `M▷`.
    pub packs: Var,
    /// The edge-representation matrix `E▷`.
    pub edges: Var,
}

/// Caches the causal attention masks Θ (Eq. 6) by matrix size.
#[derive(Default)]
pub struct MaskCache {
    masks: FxHashMap<usize, Arc<Tensor>>,
}

impl MaskCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `n × n` mask with `θ = 0` for `row ≤ col`, `−∞` otherwise.
    pub fn get(&mut self, n: usize) -> Arc<Tensor> {
        self.masks
            .entry(n)
            .or_insert_with(|| {
                let mut m = Tensor::zeros(n, n);
                for row in 0..n {
                    for col in 0..row {
                        m.set(row, col, f32::NEG_INFINITY);
                    }
                }
                Arc::new(m)
            })
            .clone()
    }
}

/// The WIDEN model: configuration, graph metadata and trainable parameters.
pub struct WidenModel {
    /// Hyperparameters.
    pub config: WidenConfig,
    /// Trainable parameters.
    pub params: ParamStore,
    ids: ParamIds,
    feature_dim: usize,
    num_edge_types: usize,
    num_classes: usize,
}

impl WidenModel {
    /// Initialises a model sized for `graph` (feature dimensionality, edge
    /// vocabulary, class count) with Xavier/He weights seeded from
    /// `config.seed`.
    ///
    /// # Panics
    /// Panics if the graph has no classes or the config is invalid.
    pub fn for_graph(graph: &HeteroGraph, config: WidenConfig) -> Self {
        config.validate();
        assert!(graph.num_classes() >= 2, "classification needs ≥ 2 classes");
        let mut rng = StdRng::seed_from_u64(hash_seed(config.seed, &[0xC0FFEE]));
        let d = config.d;
        let d0 = graph.feature_dim();
        let vocab = edge_vocab_size(graph.num_edge_types(), graph.num_node_types());
        let c = graph.num_classes();

        let mut params = ParamStore::new();
        let g_node = params.register("g_node", xavier_uniform(d0, d, &mut rng));
        // Edge embeddings start near one so early packs `v ⊙ e ≈ v` and
        // training can differentiate relations gradually.
        let mut edge_init = Tensor::full(vocab, d, 1.0);
        edge_init.add_scaled(1.0, &Tensor::randn(vocab, d, 0.1, &mut rng));
        let g_edge = params.register("g_edge", edge_init);
        let wide_q = params.register("wide_q", xavier_uniform(d, d, &mut rng));
        let wide_k = params.register("wide_k", xavier_uniform(d, d, &mut rng));
        let wide_v = params.register("wide_v", xavier_uniform(d, d, &mut rng));
        let deep_q1 = params.register("deep_q1", xavier_uniform(d, d, &mut rng));
        let deep_k1 = params.register("deep_k1", xavier_uniform(d, d, &mut rng));
        let deep_v1 = params.register("deep_v1", xavier_uniform(d, d, &mut rng));
        let deep_q2 = params.register("deep_q2", xavier_uniform(d, d, &mut rng));
        let deep_k2 = params.register("deep_k2", xavier_uniform(d, d, &mut rng));
        let deep_v2 = params.register("deep_v2", xavier_uniform(d, d, &mut rng));
        let fuse_w = params.register("fuse_w", he_normal(2 * d, d, &mut rng));
        let fuse_b = params.register("fuse_b", zeros_init(1, d));
        let classifier = params.register("classifier", xavier_uniform(d, c, &mut rng));

        Self {
            config,
            params,
            ids: ParamIds {
                g_node,
                g_edge,
                wide_q,
                wide_k,
                wide_v,
                deep_q1,
                deep_k1,
                deep_v1,
                deep_q2,
                deep_k2,
                deep_v2,
                fuse_w,
                fuse_b,
                classifier,
            },
            feature_dim: d0,
            num_edge_types: graph.num_edge_types(),
            num_classes: c,
        }
    }

    /// Parameter handles.
    pub fn ids(&self) -> &ParamIds {
        &self.ids
    }

    /// Number of classes the classifier head produces.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total trainable scalar count.
    pub fn parameter_count(&self) -> usize {
        self.params.scalar_count()
    }

    /// Serialises the trained weights into a checkpoint buffer
    /// (hyperparameters and graph metadata live in code/config, weights in
    /// the checkpoint).
    pub fn save_weights(&self) -> bytes::Bytes {
        widen_tensor::save_params(&self.params)
    }

    /// Restores weights from a checkpoint produced by
    /// [`WidenModel::save_weights`]. The model must have been constructed
    /// with the same configuration and graph metadata.
    ///
    /// # Panics
    /// Panics if the checkpoint's parameter names or shapes do not match
    /// this model.
    pub fn load_weights(&mut self, checkpoint: &[u8]) {
        let loaded = widen_tensor::load_params(checkpoint).expect("valid WIDEN checkpoint");
        assert_eq!(
            loaded.len(),
            self.params.len(),
            "checkpoint parameter count mismatch"
        );
        for (id, name, tensor) in loaded.iter() {
            let _ = id;
            let target = self
                .params
                .id(name)
                .unwrap_or_else(|| panic!("checkpoint has unknown parameter `{name}`"));
            assert_eq!(
                self.params.get(target).shape(),
                tensor.shape(),
                "shape mismatch for `{name}`"
            );
            *self.params.get_mut(target) = tensor.clone();
        }
    }

    /// Copies the current parameter values onto a tape (once per tape).
    pub fn insert_params(&self, tape: &mut Tape) -> ParamVars {
        let p = &self.params;
        let i = &self.ids;
        ParamVars {
            g_node: tape.leaf(p.get(i.g_node).clone()),
            g_edge: tape.leaf(p.get(i.g_edge).clone()),
            wide_q: tape.leaf(p.get(i.wide_q).clone()),
            wide_k: tape.leaf(p.get(i.wide_k).clone()),
            wide_v: tape.leaf(p.get(i.wide_v).clone()),
            deep_q1: tape.leaf(p.get(i.deep_q1).clone()),
            deep_k1: tape.leaf(p.get(i.deep_k1).clone()),
            deep_v1: tape.leaf(p.get(i.deep_v1).clone()),
            deep_q2: tape.leaf(p.get(i.deep_q2).clone()),
            deep_k2: tape.leaf(p.get(i.deep_k2).clone()),
            deep_v2: tape.leaf(p.get(i.deep_v2).clone()),
            fuse_w: tape.leaf(p.get(i.fuse_w).clone()),
            fuse_b: tape.leaf(p.get(i.fuse_b).clone()),
            classifier: tape.leaf(p.get(i.classifier).clone()),
        }
    }

    /// One full wide-and-deep message-passing step for a target node
    /// (Eq. 1–7 + classification head), honouring the configured
    /// [`crate::ablation::Variant`].
    pub fn forward_node(
        &self,
        tape: &mut Tape,
        pv: &ParamVars,
        graph: &HeteroGraph,
        state: &NodeState,
        masks: &mut MaskCache,
    ) -> NodeForward {
        assert_eq!(
            graph.feature_dim(),
            self.feature_dim,
            "graph feature dimensionality changed"
        );
        let d = self.config.d;
        let variant = self.config.variant;
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();

        // Wide branch (Eq. 1, 3).
        let mut wide_attention = None;
        let h_wide = if variant.use_wide {
            let Packed { packs, .. } = pack_wide(
                tape,
                graph,
                &state.wide,
                pv.g_node,
                pv.g_edge,
                self.num_edge_types,
            );
            let m_t = tape.select_rows(packs, &[0]);
            let q = tape.matmul(m_t, pv.wide_q);
            let k = tape.matmul(packs, pv.wide_k);
            let scores = tape.matmul_nt(q, k);
            let scaled = tape.scale(scores, inv_sqrt_d);
            let attn = tape.softmax_rows(scaled);
            wide_attention = Some(attn);
            let values = tape.matmul(packs, pv.wide_v);
            tape.matmul(attn, values)
        } else {
            tape.leaf(Tensor::zeros(1, d))
        };

        // Deep branch (Eq. 2, 4–6), one pass per sampled walk.
        let mut deep_outputs = Vec::new();
        let h_deep = if variant.use_deep && !state.deeps.is_empty() {
            let mut h_phis = Vec::with_capacity(state.deeps.len());
            for deep_state in &state.deeps {
                let Packed { packs, edges } = pack_deep(
                    tape,
                    graph,
                    deep_state,
                    pv.g_node,
                    pv.g_edge,
                    self.num_edge_types,
                );
                let rows = deep_state.len() + 1;

                // Eq. 4: successive self-attention with the causal mask Θ.
                let refined = if variant.successive_attention {
                    let q1 = tape.matmul(packs, pv.deep_q1);
                    let k1 = tape.matmul(packs, pv.deep_k1);
                    let scores = tape.matmul_nt(q1, k1);
                    let scaled = tape.scale(scores, inv_sqrt_d);
                    let att = tape.masked_softmax_rows(scaled, masks.get(rows));
                    let v1 = tape.matmul(packs, pv.deep_v1);
                    tape.matmul(att, v1)
                } else {
                    packs
                };

                // Eq. 5: gather into the target. The query is the target's
                // own pack m_t▷, keys come from the refined sequence H▷,
                // values from the raw packs M▷ (as written in the paper).
                let m_t = tape.select_rows(packs, &[0]);
                let q2 = tape.matmul(m_t, pv.deep_q2);
                let k2 = tape.matmul(refined, pv.deep_k2);
                let scores2 = tape.matmul_nt(q2, k2);
                let scaled2 = tape.scale(scores2, inv_sqrt_d);
                let attn = tape.softmax_rows(scaled2);
                let v2 = tape.matmul(packs, pv.deep_v2);
                let h_phi = tape.matmul(attn, v2);
                h_phis.push(h_phi);
                deep_outputs.push(DeepForward { attention: attn, packs, edges });
            }
            // Average pooling over the Φ walks (Eq. 7).
            if h_phis.len() == 1 {
                h_phis[0]
            } else {
                let stacked = tape.vstack(&h_phis);
                tape.mean_rows(stacked)
            }
        } else {
            tape.leaf(Tensor::zeros(1, d))
        };

        // Eq. 7: fuse, feed-forward, L2 normalise.
        let concat = tape.hstack(&[h_wide, h_deep]);
        let ff = tape.matmul(concat, pv.fuse_w);
        let biased = tape.add_row_broadcast(ff, pv.fuse_b);
        let activated = tape.relu(biased);
        let embedding = tape.l2_normalize_rows(activated);

        // Eq. 10 head.
        let logits = tape.matmul(embedding, pv.classifier);

        NodeForward { embedding, logits, wide_attention, deep: deep_outputs }
    }

    /// Samples fresh neighbourhoods for a node at inference time (no
    /// downsampling) — this is what makes WIDEN inductive: unseen nodes are
    /// embedded purely from their sampled context and the trained weights.
    pub fn sample_state(&self, graph: &HeteroGraph, node: NodeId, seed: u64) -> NodeState {
        let mut rng = StdRng::seed_from_u64(hash_seed(seed, &[u64::from(node)]));
        let wide = sample_wide(graph, node, self.config.n_w, &mut rng);
        let deeps = sample_deep_multi(graph, node, self.config.n_d, self.config.phi, &mut rng);
        NodeState::new(wide, deeps)
    }

    /// Embeds the listed nodes (`len × d`), sampling fresh neighbourhoods
    /// with `seed`. Parallelised over chunks of nodes.
    pub fn embed_nodes(&self, graph: &HeteroGraph, nodes: &[NodeId], seed: u64) -> Tensor {
        let rows = self.forward_many(graph, nodes, seed, |tape, fw| {
            tape.value(fw.embedding).row(0).to_vec()
        });
        let mut out = Tensor::zeros(nodes.len(), self.config.d);
        for (i, row) in rows.into_iter().enumerate() {
            out.set_row(i, &row);
        }
        out
    }

    /// Predicts class labels for the listed nodes.
    pub fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId], seed: u64) -> Vec<usize> {
        self.forward_many(graph, nodes, seed, |tape, fw| {
            tape.value(fw.logits).argmax_row(0)
        })
    }

    /// Predicts by averaging logits over `rounds` independently sampled
    /// neighbourhoods per node. Since the forward pass is stochastic in its
    /// neighbourhood sample, averaging reduces inference variance — the
    /// usual test-time practice for sampling-based GNNs.
    pub fn predict_ensemble(
        &self,
        graph: &HeteroGraph,
        nodes: &[NodeId],
        seed: u64,
        rounds: usize,
    ) -> Vec<usize> {
        assert!(rounds >= 1, "need at least one round");
        let mut sums: Vec<Vec<f32>> = vec![vec![0.0; self.num_classes]; nodes.len()];
        for r in 0..rounds as u64 {
            let logits = self.forward_many(graph, nodes, hash_seed(seed, &[40, r]), |tape, fw| {
                tape.value(fw.logits).row(0).to_vec()
            });
            for (sum, row) in sums.iter_mut().zip(logits) {
                for (s, v) in sum.iter_mut().zip(row) {
                    *s += v;
                }
            }
        }
        sums.iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty class set")
            })
            .collect()
    }

    /// Runs inference forward passes for many nodes in parallel chunks,
    /// extracting an arbitrary value from each [`NodeForward`].
    fn forward_many<T: Send>(
        &self,
        graph: &HeteroGraph,
        nodes: &[NodeId],
        seed: u64,
        extract: impl Fn(&Tape, &NodeForward) -> T + Sync,
    ) -> Vec<T> {
        use rayon::prelude::*;
        let chunk = nodes.len().div_ceil(rayon::current_num_threads().max(1)).max(1);
        nodes
            .par_chunks(chunk)
            .flat_map_iter(|chunk_nodes| {
                let mut tape = Tape::new();
                let pv = self.insert_params(&mut tape);
                let mut masks = MaskCache::new();
                chunk_nodes
                    .iter()
                    .map(|&node| {
                        let state = self.sample_state(graph, node, seed);
                        let fw = self.forward_node(&mut tape, &pv, graph, &state, &mut masks);
                        extract(&tape, &fw)
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::Variant;
    use widen_graph::GraphBuilder;

    fn toy_graph() -> HeteroGraph {
        let mut b = GraphBuilder::new(&["a", "b"], &["ab", "bb"]).with_classes(2);
        let ta = b.node_type("a");
        let tb = b.node_type("b");
        let eab = b.edge_type("ab");
        let ebb = b.edge_type("bb");
        let mut ids = Vec::new();
        for i in 0..6 {
            let t = if i % 2 == 0 { ta } else { tb };
            let label = (i % 2 == 0).then_some((i / 3) as u16);
            ids.push(b.add_node(t, vec![i as f32 * 0.1, 1.0 - i as f32 * 0.1, 0.5], label));
        }
        b.add_edge(ids[0], ids[1], eab);
        b.add_edge(ids[2], ids[1], eab);
        b.add_edge(ids[1], ids[3], ebb);
        b.add_edge(ids[3], ids[5], ebb);
        b.add_edge(ids[4], ids[5], eab);
        b.add_edge(ids[0], ids[5], eab);
        b.build()
    }

    fn small_config() -> WidenConfig {
        let mut c = WidenConfig::small();
        c.d = 8;
        c.n_w = 3;
        c.n_d = 4;
        c.phi = 2;
        c
    }

    #[test]
    fn forward_produces_unit_norm_embedding() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let mut masks = MaskCache::new();
        let state = model.sample_state(&g, 0, 7);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &mut masks);
        let emb = tape.value(fw.embedding);
        assert_eq!(emb.shape(), (1, 8));
        let norm: f32 = emb.row(0).iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4 || norm == 0.0, "norm = {norm}");
        let logits = tape.value(fw.logits);
        assert_eq!(logits.shape(), (1, 2));
    }

    #[test]
    fn attention_distributions_are_probabilities() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let mut masks = MaskCache::new();
        let state = model.sample_state(&g, 1, 3);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &mut masks);
        let wide = tape.value(fw.wide_attention.unwrap());
        assert_eq!(wide.cols(), state.wide.len() + 1);
        assert!((wide.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        for dfw in &fw.deep {
            let a = tape.value(dfw.attention);
            assert!((a.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn variant_no_wide_omits_wide_attention() {
        let g = toy_graph();
        let cfg = small_config().with_variant(Variant::no_wide());
        let model = WidenModel::for_graph(&g, cfg);
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let mut masks = MaskCache::new();
        let state = model.sample_state(&g, 0, 1);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &mut masks);
        assert!(fw.wide_attention.is_none());
        assert!(!fw.deep.is_empty());
    }

    #[test]
    fn variant_no_deep_omits_deep_outputs() {
        let g = toy_graph();
        let cfg = small_config().with_variant(Variant::no_deep());
        let model = WidenModel::for_graph(&g, cfg);
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let mut masks = MaskCache::new();
        let state = model.sample_state(&g, 0, 1);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &mut masks);
        assert!(fw.wide_attention.is_some());
        assert!(fw.deep.is_empty());
    }

    #[test]
    fn causal_mask_blocks_backward_attention() {
        let mut cache = MaskCache::new();
        let m = cache.get(4);
        for row in 0..4 {
            for col in 0..4 {
                if row <= col {
                    assert_eq!(m.get(row, col), 0.0);
                } else {
                    assert_eq!(m.get(row, col), f32::NEG_INFINITY);
                }
            }
        }
        // Cache hit returns the same allocation.
        let m2 = cache.get(4);
        assert!(Arc::ptr_eq(&m, &m2));
    }

    #[test]
    fn embed_and_predict_shapes() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let nodes: Vec<u32> = (0..6).collect();
        let emb = model.embed_nodes(&g, &nodes, 11);
        assert_eq!(emb.shape(), (6, 8));
        assert!(emb.all_finite());
        let preds = model.predict(&g, &nodes, 11);
        assert_eq!(preds.len(), 6);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn inference_is_seed_deterministic() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let nodes: Vec<u32> = (0..6).collect();
        let a = model.embed_nodes(&g, &nodes, 5);
        let b = model.embed_nodes(&g, &nodes, 5);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn embeddings_differ_across_nodes() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let emb = model.embed_nodes(&g, &[0, 3], 2);
        let diff: f32 = emb
            .row(0)
            .iter()
            .zip(emb.row(1))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "distinct nodes should embed differently");
    }

    #[test]
    fn parameter_count_is_reported() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        // d0=3, d=8, vocab=2+2, c=2:
        // g_node 24 + g_edge 32 + 9·64 + fuse 128+8 + clf 16 = 784.
        assert_eq!(model.parameter_count(), 784);
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let mut masks = MaskCache::new();
        let state = model.sample_state(&g, 0, 1);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &mut masks);
        let loss = tape.softmax_cross_entropy(fw.logits, &[0]);
        tape.backward(loss);
        for (id, var) in pv.pairs(model.ids()) {
            let name = model.params.name(id);
            let grad = tape.grad(var);
            assert!(grad.is_some(), "no gradient for `{name}`");
            // ReLU can zero out some paths, but most parameters must
            // receive non-trivial gradient signal.
            if ["classifier", "fuse_w", "g_node"].contains(&name) {
                assert!(
                    grad.unwrap().frobenius_norm() > 0.0,
                    "zero gradient for `{name}`"
                );
            }
        }
    }
}
