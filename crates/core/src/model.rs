//! The WIDEN model: parameters, the wide/deep attentive forward pass
//! (Eq. 3–7), the classification head (Eq. 10) and inductive inference.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use widen_graph::{HeteroGraph, NodeId};
use widen_sampling::{hash_seed, sample_deep_multi, sample_wide};
use widen_tensor::{
    he_normal, xavier_uniform, zeros_init, CheckpointError, ParamId, ParamStore, Tape, Tensor, Var,
};

use crate::config::{Execution, WidenConfig};
use crate::packaging::{edge_vocab_size, pack_deep, pack_wide, Packed};
use crate::state::NodeState;

/// Handles of every trainable tensor.
#[derive(Clone, Copy)]
pub struct ParamIds {
    /// Node feature projection `G_node` (`d₀ × d`).
    pub g_node: ParamId,
    /// Edge-type embedding table `G_edge` (`(|E types| + |V types|) × d`,
    /// self-loop rows appended).
    pub g_edge: ParamId,
    /// Wide attention query projection `W_Q∘`.
    pub wide_q: ParamId,
    /// Wide attention key projection `W_K∘`.
    pub wide_k: ParamId,
    /// Wide attention value projection `W_V∘`.
    pub wide_v: ParamId,
    /// Successive attention query projection `W_Q▷` (Eq. 4).
    pub deep_q1: ParamId,
    /// Successive attention key projection `W_K▷`.
    pub deep_k1: ParamId,
    /// Successive attention value projection `W_V▷`.
    pub deep_v1: ParamId,
    /// Deep gather query projection `W_Q▷′` (Eq. 5).
    pub deep_q2: ParamId,
    /// Deep gather key projection `W_K▷′`.
    pub deep_k2: ParamId,
    /// Deep gather value projection `W_V▷′`.
    pub deep_v2: ParamId,
    /// Fusion weight `W` (`2d × d`, Eq. 7).
    pub fuse_w: ParamId,
    /// Fusion bias `b` (`1 × d`).
    pub fuse_b: ParamId,
    /// Classifier projection `C` (`d × c`, Eq. 10).
    pub classifier: ParamId,
}

/// Tape-local variables for the parameters, inserted once per tape.
#[derive(Clone, Copy)]
pub struct ParamVars {
    g_node: Var,
    g_edge: Var,
    wide_q: Var,
    wide_k: Var,
    wide_v: Var,
    deep_q1: Var,
    deep_k1: Var,
    deep_v1: Var,
    deep_q2: Var,
    deep_k2: Var,
    deep_v2: Var,
    fuse_w: Var,
    fuse_b: Var,
    classifier: Var,
}

impl ParamVars {
    /// `(ParamId, Var)` pairs for gradient extraction after backward.
    pub fn pairs(&self, ids: &ParamIds) -> Vec<(ParamId, Var)> {
        vec![
            (ids.g_node, self.g_node),
            (ids.g_edge, self.g_edge),
            (ids.wide_q, self.wide_q),
            (ids.wide_k, self.wide_k),
            (ids.wide_v, self.wide_v),
            (ids.deep_q1, self.deep_q1),
            (ids.deep_k1, self.deep_k1),
            (ids.deep_v1, self.deep_v1),
            (ids.deep_q2, self.deep_q2),
            (ids.deep_k2, self.deep_k2),
            (ids.deep_v2, self.deep_v2),
            (ids.fuse_w, self.fuse_w),
            (ids.fuse_b, self.fuse_b),
            (ids.classifier, self.classifier),
        ]
    }
}

/// Outputs of one node's forward pass.
pub struct NodeForward {
    /// Updated node embedding `v_t'` (`1 × d`, Eq. 7).
    pub embedding: Var,
    /// Class logits `v_t'·C` (`1 × c`).
    pub logits: Var,
    /// Wide attention distribution (`1 × (|W|+1)`, Eq. 3), when the wide
    /// branch is enabled.
    pub wide_attention: Option<Var>,
    /// Per-φ deep attention distribution (`1 × (|D_φ|+1)`, Eq. 5) and the
    /// packed matrices (`M▷`, `E▷`) needed for relay-edge computation.
    pub deep: Vec<DeepForward>,
}

/// Deep-branch forward artefacts for one walk.
pub struct DeepForward {
    /// Attention distribution over `[m_t ; packs]` from Eq. 5.
    pub attention: Var,
    /// The pack matrix `M▷`.
    pub packs: Var,
    /// The edge-representation matrix `E▷`.
    pub edges: Var,
}

/// Outputs of one batched forward pass over a chunk of nodes
/// ([`WidenModel::forward_batch`]). Row `i` of every per-node tensor
/// corresponds to the `i`-th state handed in.
pub struct BatchForward {
    /// Updated node embeddings (`B × d`, Eq. 7).
    pub embeddings: Var,
    /// Class logits (`B × c`, Eq. 10).
    pub logits: Var,
    /// Wide-branch artefacts, when the wide branch is enabled.
    pub wide: Option<WideBatch>,
    /// Deep-branch artefacts, when the deep branch ran for ≥ 1 walk.
    pub deep: Option<DeepBatch>,
}

/// Batched wide-attention artefacts (Eq. 3).
pub struct WideBatch {
    /// Padded attention matrix (`B × L_max`); row `i`'s valid prefix has
    /// `lens[i]` entries (`|W_i| + 1`, self pack first), the rest is
    /// exactly zero.
    pub attention: Var,
    /// Per-node valid attention lengths.
    pub lens: Vec<usize>,
}

/// Batched deep-branch artefacts (Eq. 4–6), plus the node→row-range maps
/// that keep downsampling outcomes (Algorithms 1–2, Eq. 8 relays)
/// extractable per node from the flat tensors.
pub struct DeepBatch {
    /// Padded Eq. 5 attention matrix (`#walks × L_max`); row `w`'s valid
    /// prefix has `walk_spans[w].1` entries.
    pub attention: Var,
    /// Flat raw pack matrix `M▷` (all walks concatenated).
    pub packs: Var,
    /// Flat edge-representation matrix `E▷` (same layout).
    pub edges: Var,
    /// Walk → `(start, len)` row range into `packs` / `edges`.
    pub walk_spans: Vec<(usize, usize)>,
    /// Node → `(first walk index, walk count)`; a node's walks are
    /// consecutive in `walk_spans` / `attention` rows.
    pub node_walks: Vec<(usize, usize)>,
}

/// Caches the causal attention masks Θ (Eq. 6) by matrix size.
///
/// Interior-mutable and `Sync`, so one cache can be built once and shared
/// read-mostly across a whole training epoch (and across rayon chunk
/// workers) instead of being rebuilt per chunk.
#[derive(Default)]
pub struct MaskCache {
    masks: std::sync::RwLock<FxHashMap<usize, Arc<Tensor>>>,
}

impl MaskCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `n × n` mask with `θ = 0` for `row ≤ col`, `−∞` otherwise.
    pub fn get(&self, n: usize) -> Arc<Tensor> {
        if let Some(m) = self.masks.read().expect("mask cache poisoned").get(&n) {
            return m.clone();
        }
        let mut m = Tensor::zeros(n, n);
        for row in 0..n {
            for col in 0..row {
                m.set(row, col, f32::NEG_INFINITY);
            }
        }
        self.masks
            .write()
            .expect("mask cache poisoned")
            .entry(n)
            .or_insert_with(|| Arc::new(m))
            .clone()
    }
}

/// The WIDEN model: configuration, graph metadata and trainable parameters.
pub struct WidenModel {
    /// Hyperparameters.
    pub config: WidenConfig,
    /// Trainable parameters.
    pub params: ParamStore,
    ids: ParamIds,
    feature_dim: usize,
    num_edge_types: usize,
    num_classes: usize,
}

impl WidenModel {
    /// Initialises a model sized for `graph` (feature dimensionality, edge
    /// vocabulary, class count) with Xavier/He weights seeded from
    /// `config.seed`.
    ///
    /// # Panics
    /// Panics if the graph has no classes or the config is invalid.
    pub fn for_graph(graph: &HeteroGraph, config: WidenConfig) -> Self {
        config.validate();
        assert!(graph.num_classes() >= 2, "classification needs ≥ 2 classes");
        let mut rng = StdRng::seed_from_u64(hash_seed(config.seed, &[0xC0FFEE]));
        let d = config.d;
        let d0 = graph.feature_dim();
        let vocab = edge_vocab_size(graph.num_edge_types(), graph.num_node_types());
        let c = graph.num_classes();

        let mut params = ParamStore::new();
        let g_node = params.register("g_node", xavier_uniform(d0, d, &mut rng));
        // Edge embeddings start near one so early packs `v ⊙ e ≈ v` and
        // training can differentiate relations gradually.
        let mut edge_init = Tensor::full(vocab, d, 1.0);
        edge_init.add_scaled(1.0, &Tensor::randn(vocab, d, 0.1, &mut rng));
        let g_edge = params.register("g_edge", edge_init);
        let wide_q = params.register("wide_q", xavier_uniform(d, d, &mut rng));
        let wide_k = params.register("wide_k", xavier_uniform(d, d, &mut rng));
        let wide_v = params.register("wide_v", xavier_uniform(d, d, &mut rng));
        let deep_q1 = params.register("deep_q1", xavier_uniform(d, d, &mut rng));
        let deep_k1 = params.register("deep_k1", xavier_uniform(d, d, &mut rng));
        let deep_v1 = params.register("deep_v1", xavier_uniform(d, d, &mut rng));
        let deep_q2 = params.register("deep_q2", xavier_uniform(d, d, &mut rng));
        let deep_k2 = params.register("deep_k2", xavier_uniform(d, d, &mut rng));
        let deep_v2 = params.register("deep_v2", xavier_uniform(d, d, &mut rng));
        let fuse_w = params.register("fuse_w", he_normal(2 * d, d, &mut rng));
        let fuse_b = params.register("fuse_b", zeros_init(1, d));
        let classifier = params.register("classifier", xavier_uniform(d, c, &mut rng));

        Self {
            config,
            params,
            ids: ParamIds {
                g_node,
                g_edge,
                wide_q,
                wide_k,
                wide_v,
                deep_q1,
                deep_k1,
                deep_v1,
                deep_q2,
                deep_k2,
                deep_v2,
                fuse_w,
                fuse_b,
                classifier,
            },
            feature_dim: d0,
            num_edge_types: graph.num_edge_types(),
            num_classes: c,
        }
    }

    /// Parameter handles.
    pub fn ids(&self) -> &ParamIds {
        &self.ids
    }

    /// Number of classes the classifier head produces.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total trainable scalar count.
    pub fn parameter_count(&self) -> usize {
        self.params.scalar_count()
    }

    /// Serialises the trained weights into a checkpoint buffer
    /// (hyperparameters and graph metadata live in code/config, weights in
    /// the checkpoint).
    pub fn save_weights(&self) -> bytes::Bytes {
        widen_tensor::save_params(&self.params)
    }

    /// Restores weights from a checkpoint produced by
    /// [`WidenModel::save_weights`]. The model must have been constructed
    /// with the same configuration and graph metadata.
    ///
    /// Validation is all-or-nothing: the checkpoint is fully checked
    /// (decode, parameter count, names, shapes) before any parameter is
    /// written, so a failed load leaves the model untouched.
    ///
    /// # Errors
    /// Returns a [`CheckpointError`] when the buffer is malformed or does
    /// not match this model's parameter layout. Never panics on bad input —
    /// this is the path servers load untrusted checkpoints through.
    pub fn try_load_weights(&mut self, checkpoint: &[u8]) -> Result<(), CheckpointError> {
        let loaded = widen_tensor::load_params(checkpoint)?;
        if loaded.len() != self.params.len() {
            return Err(CheckpointError::CountMismatch {
                expected: self.params.len(),
                found: loaded.len(),
            });
        }
        let mut targets = Vec::with_capacity(loaded.len());
        for (_, name, tensor) in loaded.iter() {
            let target = self
                .params
                .id(name)
                .ok_or_else(|| CheckpointError::UnknownParam(name.to_string()))?;
            if self.params.get(target).shape() != tensor.shape() {
                return Err(CheckpointError::ShapeMismatch {
                    name: name.to_string(),
                    expected: self.params.get(target).shape(),
                    found: tensor.shape(),
                });
            }
            targets.push(target);
        }
        for ((_, _, tensor), target) in loaded.iter().zip(targets) {
            *self.params.get_mut(target) = tensor.clone();
        }
        Ok(())
    }

    /// Panicking convenience wrapper around
    /// [`WidenModel::try_load_weights`] for offline tooling.
    ///
    /// # Panics
    /// Panics if the checkpoint is malformed or its parameter names or
    /// shapes do not match this model.
    pub fn load_weights(&mut self, checkpoint: &[u8]) {
        if let Err(err) = self.try_load_weights(checkpoint) {
            panic!("valid WIDEN checkpoint: {err}");
        }
    }

    /// A fresh tape pinned to this model's configured kernel backend
    /// ([`WidenConfig::backend`]). Every forward/backward pass the model or
    /// trainer runs should obtain its tape here so GEMM dispatch matches
    /// the config knob rather than the process default.
    pub fn new_tape(&self) -> Tape {
        Tape::with_backend(self.config.backend)
    }

    /// Copies the current parameter values onto a tape (once per tape).
    pub fn insert_params(&self, tape: &mut Tape) -> ParamVars {
        let p = &self.params;
        let i = &self.ids;
        ParamVars {
            g_node: tape.leaf(p.get(i.g_node).clone()),
            g_edge: tape.leaf(p.get(i.g_edge).clone()),
            wide_q: tape.leaf(p.get(i.wide_q).clone()),
            wide_k: tape.leaf(p.get(i.wide_k).clone()),
            wide_v: tape.leaf(p.get(i.wide_v).clone()),
            deep_q1: tape.leaf(p.get(i.deep_q1).clone()),
            deep_k1: tape.leaf(p.get(i.deep_k1).clone()),
            deep_v1: tape.leaf(p.get(i.deep_v1).clone()),
            deep_q2: tape.leaf(p.get(i.deep_q2).clone()),
            deep_k2: tape.leaf(p.get(i.deep_k2).clone()),
            deep_v2: tape.leaf(p.get(i.deep_v2).clone()),
            fuse_w: tape.leaf(p.get(i.fuse_w).clone()),
            fuse_b: tape.leaf(p.get(i.fuse_b).clone()),
            classifier: tape.leaf(p.get(i.classifier).clone()),
        }
    }

    /// One full wide-and-deep message-passing step for a target node
    /// (Eq. 1–7 + classification head), honouring the configured
    /// [`crate::ablation::Variant`].
    pub fn forward_node(
        &self,
        tape: &mut Tape,
        pv: &ParamVars,
        graph: &HeteroGraph,
        state: &NodeState,
        masks: &MaskCache,
    ) -> NodeForward {
        assert_eq!(
            graph.feature_dim(),
            self.feature_dim,
            "graph feature dimensionality changed"
        );
        let d = self.config.d;
        let variant = self.config.variant;
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();

        // Wide branch (Eq. 1, 3).
        let mut wide_attention = None;
        let h_wide = if variant.use_wide {
            let Packed { packs, .. } = pack_wide(
                tape,
                graph,
                &state.wide,
                pv.g_node,
                pv.g_edge,
                self.num_edge_types,
            );
            let m_t = tape.select_rows(packs, &[0]);
            let q = tape.matmul(m_t, pv.wide_q);
            let k = tape.matmul(packs, pv.wide_k);
            let scores = tape.matmul_nt(q, k);
            let scaled = tape.scale(scores, inv_sqrt_d);
            let attn = tape.softmax_rows(scaled);
            wide_attention = Some(attn);
            let values = tape.matmul(packs, pv.wide_v);
            tape.matmul(attn, values)
        } else {
            tape.leaf(Tensor::zeros(1, d))
        };

        // Deep branch (Eq. 2, 4–6), one pass per sampled walk.
        let mut deep_outputs = Vec::new();
        let h_deep = if variant.use_deep && !state.deeps.is_empty() {
            let mut h_phis = Vec::with_capacity(state.deeps.len());
            for deep_state in &state.deeps {
                let Packed { packs, edges } = pack_deep(
                    tape,
                    graph,
                    deep_state,
                    pv.g_node,
                    pv.g_edge,
                    self.num_edge_types,
                );
                let rows = deep_state.len() + 1;

                // Eq. 4: successive self-attention with the causal mask Θ.
                let refined = if variant.successive_attention {
                    let q1 = tape.matmul(packs, pv.deep_q1);
                    let k1 = tape.matmul(packs, pv.deep_k1);
                    let scores = tape.matmul_nt(q1, k1);
                    let scaled = tape.scale(scores, inv_sqrt_d);
                    let att = tape.masked_softmax_rows(scaled, masks.get(rows));
                    let v1 = tape.matmul(packs, pv.deep_v1);
                    tape.matmul(att, v1)
                } else {
                    packs
                };

                // Eq. 5: gather into the target. The query is the target's
                // own pack m_t▷, keys come from the refined sequence H▷,
                // values from the raw packs M▷ (as written in the paper).
                let m_t = tape.select_rows(packs, &[0]);
                let q2 = tape.matmul(m_t, pv.deep_q2);
                let k2 = tape.matmul(refined, pv.deep_k2);
                let scores2 = tape.matmul_nt(q2, k2);
                let scaled2 = tape.scale(scores2, inv_sqrt_d);
                let attn = tape.softmax_rows(scaled2);
                let v2 = tape.matmul(packs, pv.deep_v2);
                let h_phi = tape.matmul(attn, v2);
                h_phis.push(h_phi);
                deep_outputs.push(DeepForward {
                    attention: attn,
                    packs,
                    edges,
                });
            }
            // Average pooling over the Φ walks (Eq. 7).
            if h_phis.len() == 1 {
                h_phis[0]
            } else {
                let stacked = tape.vstack(&h_phis);
                tape.mean_rows(stacked)
            }
        } else {
            tape.leaf(Tensor::zeros(1, d))
        };

        // Eq. 7: fuse, feed-forward, L2 normalise.
        let concat = tape.hstack(&[h_wide, h_deep]);
        let ff = tape.matmul(concat, pv.fuse_w);
        let biased = tape.add_row_broadcast(ff, pv.fuse_b);
        let activated = tape.relu(biased);
        let embedding = tape.l2_normalize_rows(activated);

        // Eq. 10 head.
        let logits = tape.matmul(embedding, pv.classifier);

        NodeForward {
            embedding,
            logits,
            wide_attention,
            deep: deep_outputs,
        }
    }

    /// Batched forward pass over a whole chunk of nodes (Eq. 1–7 + head).
    ///
    /// Computes exactly what [`WidenModel::forward_node`] computes per
    /// node, but with one pack assembly, one Q/K/V projection matmul per
    /// attention branch and one padded softmax per branch for the whole
    /// chunk. The attention kernels reuse the same scalar `dot`/`axpy`
    /// reductions in the same order as the per-node path, so the two
    /// engines agree to f32 round-off (the differential tests pin this).
    ///
    /// The Eq. 4 causal mask needs no mask tensor here: each pack row's
    /// key segment simply *starts at itself* and runs to the end of its
    /// walk, which encodes `θ = −∞` for earlier positions structurally.
    ///
    /// # Panics
    /// Panics if `states` is empty or the graph's feature width changed.
    pub fn forward_batch(
        &self,
        tape: &mut Tape,
        pv: &ParamVars,
        graph: &HeteroGraph,
        states: &[&NodeState],
    ) -> BatchForward {
        assert!(!states.is_empty(), "forward_batch needs at least one node");
        assert_eq!(
            graph.feature_dim(),
            self.feature_dim,
            "graph feature dimensionality changed"
        );
        let b = states.len();
        let d = self.config.d;
        let variant = self.config.variant;
        let inv_sqrt_d = 1.0 / (d as f32).sqrt();

        // Wide branch (Eq. 1, 3): one flat pack matrix, per-node spans.
        let mut wide_batch = None;
        let h_wide = if variant.use_wide {
            let wides: Vec<&widen_sampling::WideSet> = states.iter().map(|s| &s.wide).collect();
            let batch = crate::packaging::pack_wide_batch(
                tape,
                graph,
                &wides,
                pv.g_node,
                pv.g_edge,
                self.num_edge_types,
            );
            let lens: Vec<usize> = batch.spans.iter().map(|&(_, len)| len).collect();
            let q_rows: Vec<usize> = batch.spans.iter().map(|&(start, _)| start).collect();
            let m_t = tape.gather_rows(batch.packs, &q_rows);
            let q = tape.matmul(m_t, pv.wide_q);
            // K/V projections run once per unique (node, edge) pair.
            let k = batch.project(tape, pv.wide_k);
            let values = batch.project(tape, pv.wide_v);
            let spans: Arc<[(usize, usize)]> = batch.spans.into();
            let scores = tape.padded_segment_scores(q, k, spans.clone());
            let scaled = tape.scale(scores, inv_sqrt_d);
            let attn = tape.padded_softmax_rows(scaled, lens.clone().into());
            let h = tape.segment_weighted_sum(attn, values, spans);
            wide_batch = Some(WideBatch {
                attention: attn,
                lens,
            });
            h
        } else {
            tape.leaf(Tensor::zeros(b, d))
        };

        // Deep branch (Eq. 2, 4–6): all walks of all nodes in one flat
        // matrix, walk-major and grouped by node.
        let mut deep_batch = None;
        let h_deep = if variant.use_deep && states.iter().any(|s| !s.deeps.is_empty()) {
            let mut walks: Vec<&crate::state::DeepState> = Vec::new();
            let mut node_walks = Vec::with_capacity(b);
            for s in states {
                node_walks.push((walks.len(), s.deeps.len()));
                walks.extend(s.deeps.iter());
            }
            let batch = crate::packaging::pack_deep_batch(
                tape,
                graph,
                &walks,
                pv.g_node,
                pv.g_edge,
                self.num_edge_types,
            );
            let crate::packaging::PackedBatch {
                packs,
                edges,
                unique_packs,
                flat_index,
                spans: walk_spans,
            } = batch;
            let total_rows: usize = walk_spans.iter().map(|&(_, len)| len).sum();
            // Raw-pack projections run on unique rows, then broadcast back.
            let project = |tape: &mut Tape, w| {
                let unique = tape.matmul(unique_packs, w);
                tape.gather_rows(unique, &flat_index)
            };

            // Eq. 4: causal successive attention. Every pack row queries
            // the suffix of its own walk (itself + later positions).
            let refined = if variant.successive_attention {
                let mut row_spans = Vec::with_capacity(total_rows);
                let mut row_lens = Vec::with_capacity(total_rows);
                for &(start, len) in &walk_spans {
                    for r in 0..len {
                        row_spans.push((start + r, len - r));
                        row_lens.push(len - r);
                    }
                }
                let row_spans: Arc<[(usize, usize)]> = row_spans.into();
                let q1 = project(tape, pv.deep_q1);
                let k1 = project(tape, pv.deep_k1);
                let scores = tape.padded_segment_scores(q1, k1, row_spans.clone());
                let scaled = tape.scale(scores, inv_sqrt_d);
                let att = tape.padded_softmax_rows(scaled, row_lens.into());
                let v1 = project(tape, pv.deep_v1);
                tape.segment_weighted_sum(att, v1, row_spans)
            } else {
                packs
            };

            // Eq. 5: gather into each walk's target — query is the walk's
            // own m_t▷ row, keys from the refined sequence H▷, values
            // from the raw packs M▷. The refined rows are position-specific
            // (no dedup possible); the raw-pack values are not.
            let m_rows: Vec<usize> = walk_spans.iter().map(|&(start, _)| start).collect();
            let lens: Vec<usize> = walk_spans.iter().map(|&(_, len)| len).collect();
            let spans: Arc<[(usize, usize)]> = walk_spans.clone().into();
            let m_t = tape.gather_rows(packs, &m_rows);
            let q2 = tape.matmul(m_t, pv.deep_q2);
            let k2 = if variant.successive_attention {
                tape.matmul(refined, pv.deep_k2)
            } else {
                project(tape, pv.deep_k2)
            };
            let scores2 = tape.padded_segment_scores(q2, k2, spans.clone());
            let scaled2 = tape.scale(scores2, inv_sqrt_d);
            let attn = tape.padded_softmax_rows(scaled2, lens.into());
            let v2 = project(tape, pv.deep_v2);
            let h_phi = tape.segment_weighted_sum(attn, v2, spans);

            // Φ-averaging (Eq. 7); nodes without walks get zero rows.
            let phi_spans: Arc<[(usize, usize)]> = node_walks.clone().into();
            let h = tape.segment_mean_rows(h_phi, phi_spans);
            deep_batch = Some(DeepBatch {
                attention: attn,
                packs,
                edges,
                walk_spans,
                node_walks,
            });
            h
        } else {
            tape.leaf(Tensor::zeros(b, d))
        };

        // Eq. 7: fuse, feed-forward, L2 normalise — already row-wise, so
        // the per-node ops batch as-is.
        let concat = tape.hstack(&[h_wide, h_deep]);
        let ff = tape.matmul(concat, pv.fuse_w);
        let biased = tape.add_row_broadcast(ff, pv.fuse_b);
        let activated = tape.relu(biased);
        let embeddings = tape.l2_normalize_rows(activated);

        // Eq. 10 head.
        let logits = tape.matmul(embeddings, pv.classifier);

        BatchForward {
            embeddings,
            logits,
            wide: wide_batch,
            deep: deep_batch,
        }
    }

    /// Samples fresh neighbourhoods for a node at inference time (no
    /// downsampling) — this is what makes WIDEN inductive: unseen nodes are
    /// embedded purely from their sampled context and the trained weights.
    pub fn sample_state(&self, graph: &HeteroGraph, node: NodeId, seed: u64) -> NodeState {
        self.sample_state_as(graph, node, node, seed)
    }

    /// Like [`WidenModel::sample_state`], but keys the per-node rng stream
    /// by `ident` instead of `node`. Used when `node` is a shard-local
    /// index: keeping the stream keyed by the node's *global* identity
    /// makes sampling on a halo-expanded shard subgraph reproduce the
    /// full-graph stream bit-for-bit (the subgraph preserves relative
    /// neighbour order and every draw is index-based).
    pub fn sample_state_as(
        &self,
        graph: &HeteroGraph,
        node: NodeId,
        ident: NodeId,
        seed: u64,
    ) -> NodeState {
        let mut rng = StdRng::seed_from_u64(hash_seed(seed, &[u64::from(ident)]));
        let wide = sample_wide(graph, node, self.config.n_w, &mut rng);
        let deeps = sample_deep_multi(graph, node, self.config.n_d, self.config.phi, &mut rng);
        NodeState::new(wide, deeps)
    }

    /// Embeds the listed nodes (`len × d`), sampling fresh neighbourhoods
    /// with `seed`. Parallelised over chunks of nodes; each chunk runs one
    /// fused [`WidenModel::forward_batch`] (or per-node passes when the
    /// config selects [`Execution::PerNode`]).
    pub fn embed_nodes(&self, graph: &HeteroGraph, nodes: &[NodeId], seed: u64) -> Tensor {
        let rows = self.infer_rows(graph, nodes, seed, InferOutput::Embedding);
        let mut out = Tensor::zeros(nodes.len(), self.config.d);
        for (i, row) in rows.into_iter().enumerate() {
            out.set_row(i, &row);
        }
        out
    }

    /// Predicts class labels for the listed nodes.
    pub fn predict(&self, graph: &HeteroGraph, nodes: &[NodeId], seed: u64) -> Vec<usize> {
        self.infer_rows(graph, nodes, seed, InferOutput::Logits)
            .iter()
            .map(|row| argmax(row))
            .collect()
    }

    /// Predicts by averaging logits over `rounds` independently sampled
    /// neighbourhoods per node. Since the forward pass is stochastic in its
    /// neighbourhood sample, averaging reduces inference variance — the
    /// usual test-time practice for sampling-based GNNs.
    pub fn predict_ensemble(
        &self,
        graph: &HeteroGraph,
        nodes: &[NodeId],
        seed: u64,
        rounds: usize,
    ) -> Vec<usize> {
        assert!(rounds >= 1, "need at least one round");
        let mut sums: Vec<Vec<f32>> = vec![vec![0.0; self.num_classes]; nodes.len()];
        for r in 0..rounds as u64 {
            let logits =
                self.infer_rows(graph, nodes, hash_seed(seed, &[40, r]), InferOutput::Logits);
            for (sum, row) in sums.iter_mut().zip(logits) {
                for (s, v) in sum.iter_mut().zip(row) {
                    *s += v;
                }
            }
        }
        sums.iter().map(|row| argmax(row)).collect()
    }

    /// Embeds a coalesced batch of serving requests in one fused forward
    /// pass. Unlike [`WidenModel::embed_nodes`], every item carries its own
    /// sampling seed, so requests from different clients (different seeds)
    /// can share one [`WidenModel::forward_batch`] chunk. Item `i`'s row is
    /// bit-identical to `embed_nodes(graph, &[node_i], seed_i)` regardless
    /// of what else is in the batch: every batched op is row- or
    /// segment-local.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn embed_requests(&self, graph: &HeteroGraph, items: &[(NodeId, u64)]) -> Tensor {
        assert!(!items.is_empty(), "embed_requests needs at least one item");
        let keyed: Vec<(NodeId, NodeId, u64)> = items
            .iter()
            .map(|&(node, seed)| (node, node, seed))
            .collect();
        self.embed_requests_keyed(graph, &keyed)
    }

    /// Like [`WidenModel::embed_requests`], but each `(node, ident, seed)`
    /// item keys its sampling stream by `ident` rather than `node` (see
    /// [`WidenModel::sample_state_as`]). This is the shard-routed serving
    /// path: `node` is the owning shard's local index, `ident` the global
    /// id, and the returned row is bit-identical to what
    /// `embed_requests(full_graph, &[(ident, seed)])` computes — provided
    /// the shard subgraph carries a halo of at least the walk radius.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn embed_requests_keyed(
        &self,
        graph: &HeteroGraph,
        items: &[(NodeId, NodeId, u64)],
    ) -> Tensor {
        assert!(!items.is_empty(), "embed_requests needs at least one item");
        let rows = self.request_rows(graph, items, InferOutput::Embedding);
        let mut out = Tensor::zeros(items.len(), self.config.d);
        for (i, row) in rows.into_iter().enumerate() {
            out.set_row(i, &row);
        }
        out
    }

    /// Ensemble logits for a coalesced batch of serving requests: per item,
    /// the logits summed over `rounds` independently sampled neighbourhoods
    /// — the same accumulation [`WidenModel::predict_ensemble`] computes
    /// internally, so `argmax` of row `i` equals
    /// `predict_ensemble(graph, &[node_i], seed_i, rounds)[0]`.
    ///
    /// # Panics
    /// Panics if `items` is empty or `rounds` is zero.
    pub fn ensemble_logits(
        &self,
        graph: &HeteroGraph,
        items: &[(NodeId, u64)],
        rounds: usize,
    ) -> Tensor {
        let keyed: Vec<(NodeId, NodeId, u64)> = items
            .iter()
            .map(|&(node, seed)| (node, node, seed))
            .collect();
        self.ensemble_logits_keyed(graph, &keyed, rounds)
    }

    /// Ensemble logits with per-item stream identities — the classify
    /// counterpart of [`WidenModel::embed_requests_keyed`]: `node` indexes
    /// `graph`, `ident` keys each round's sampling stream.
    ///
    /// # Panics
    /// Panics if `items` is empty or `rounds` is zero.
    pub fn ensemble_logits_keyed(
        &self,
        graph: &HeteroGraph,
        items: &[(NodeId, NodeId, u64)],
        rounds: usize,
    ) -> Tensor {
        assert!(!items.is_empty(), "ensemble_logits needs at least one item");
        assert!(rounds >= 1, "need at least one round");
        let mut sums = Tensor::zeros(items.len(), self.num_classes);
        for r in 0..rounds as u64 {
            let round_items: Vec<(NodeId, NodeId, u64)> = items
                .iter()
                .map(|&(node, ident, seed)| (node, ident, hash_seed(seed, &[40, r])))
                .collect();
            let rows = self.request_rows(graph, &round_items, InferOutput::Logits);
            for (i, row) in rows.iter().enumerate() {
                for (j, v) in row.iter().enumerate() {
                    sums.set(i, j, sums.get(i, j) + v);
                }
            }
        }
        sums
    }

    /// One forward pass over `(node, ident, seed)` items on the configured
    /// engine, returning one output row per item. Runs as a single chunk —
    /// request batches are already server-sized.
    fn request_rows(
        &self,
        graph: &HeteroGraph,
        items: &[(NodeId, NodeId, u64)],
        output: InferOutput,
    ) -> Vec<Vec<f32>> {
        let mut tape = self.new_tape();
        let pv = self.insert_params(&mut tape);
        match self.config.execution {
            Execution::Batched => {
                let states: Vec<NodeState> = items
                    .iter()
                    .map(|&(node, ident, seed)| self.sample_state_as(graph, node, ident, seed))
                    .collect();
                let refs: Vec<&NodeState> = states.iter().collect();
                let fw = self.forward_batch(&mut tape, &pv, graph, &refs);
                let var = match output {
                    InferOutput::Embedding => fw.embeddings,
                    InferOutput::Logits => fw.logits,
                };
                let out = tape.value(var);
                (0..items.len()).map(|i| out.row(i).to_vec()).collect()
            }
            Execution::PerNode => {
                let masks = MaskCache::new();
                items
                    .iter()
                    .map(|&(node, ident, seed)| {
                        let state = self.sample_state_as(graph, node, ident, seed);
                        let fw = self.forward_node(&mut tape, &pv, graph, &state, &masks);
                        let var = match output {
                            InferOutput::Embedding => fw.embedding,
                            InferOutput::Logits => fw.logits,
                        };
                        tape.value(var).row(0).to_vec()
                    })
                    .collect()
            }
        }
    }

    /// Runs inference forward passes for many nodes in parallel chunks and
    /// returns one embedding or logits row per node. Each chunk runs on the
    /// engine selected by [`WidenConfig::execution`].
    fn infer_rows(
        &self,
        graph: &HeteroGraph,
        nodes: &[NodeId],
        seed: u64,
        output: InferOutput,
    ) -> Vec<Vec<f32>> {
        use rayon::prelude::*;
        let chunk = nodes
            .len()
            .div_ceil(rayon::current_num_threads().max(1))
            .max(1);
        nodes
            .par_chunks(chunk)
            .flat_map_iter(|chunk_nodes| {
                let mut tape = self.new_tape();
                let pv = self.insert_params(&mut tape);
                match self.config.execution {
                    Execution::Batched => {
                        let states: Vec<NodeState> = chunk_nodes
                            .iter()
                            .map(|&node| self.sample_state(graph, node, seed))
                            .collect();
                        let refs: Vec<&NodeState> = states.iter().collect();
                        let fw = self.forward_batch(&mut tape, &pv, graph, &refs);
                        let var = match output {
                            InferOutput::Embedding => fw.embeddings,
                            InferOutput::Logits => fw.logits,
                        };
                        let out = tape.value(var);
                        (0..chunk_nodes.len())
                            .map(|i| out.row(i).to_vec())
                            .collect::<Vec<_>>()
                    }
                    Execution::PerNode => {
                        let masks = MaskCache::new();
                        chunk_nodes
                            .iter()
                            .map(|&node| {
                                let state = self.sample_state(graph, node, seed);
                                let fw = self.forward_node(&mut tape, &pv, graph, &state, &masks);
                                let var = match output {
                                    InferOutput::Embedding => fw.embedding,
                                    InferOutput::Logits => fw.logits,
                                };
                                tape.value(var).row(0).to_vec()
                            })
                            .collect::<Vec<_>>()
                    }
                }
            })
            .collect()
    }
}

/// Which tensor [`WidenModel::infer_rows`] extracts per node.
#[derive(Clone, Copy)]
enum InferOutput {
    Embedding,
    Logits,
}

/// Index of the largest entry (ties break toward the first).
fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty class set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::Variant;
    use widen_graph::GraphBuilder;

    fn toy_graph() -> HeteroGraph {
        let mut b = GraphBuilder::new(&["a", "b"], &["ab", "bb"]).with_classes(2);
        let ta = b.node_type("a").unwrap();
        let tb = b.node_type("b").unwrap();
        let eab = b.edge_type("ab").unwrap();
        let ebb = b.edge_type("bb").unwrap();
        let mut ids = Vec::new();
        for i in 0..6 {
            let t = if i % 2 == 0 { ta } else { tb };
            let label = (i % 2 == 0).then_some((i / 3) as u16);
            ids.push(b.add_node(t, vec![i as f32 * 0.1, 1.0 - i as f32 * 0.1, 0.5], label));
        }
        b.add_edge(ids[0], ids[1], eab);
        b.add_edge(ids[2], ids[1], eab);
        b.add_edge(ids[1], ids[3], ebb);
        b.add_edge(ids[3], ids[5], ebb);
        b.add_edge(ids[4], ids[5], eab);
        b.add_edge(ids[0], ids[5], eab);
        b.build()
    }

    fn small_config() -> WidenConfig {
        let mut c = WidenConfig::small();
        c.d = 8;
        c.n_w = 3;
        c.n_d = 4;
        c.phi = 2;
        c
    }

    #[test]
    fn forward_produces_unit_norm_embedding() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let masks = MaskCache::new();
        let state = model.sample_state(&g, 0, 7);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &masks);
        let emb = tape.value(fw.embedding);
        assert_eq!(emb.shape(), (1, 8));
        let norm: f32 = emb.row(0).iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4 || norm == 0.0, "norm = {norm}");
        let logits = tape.value(fw.logits);
        assert_eq!(logits.shape(), (1, 2));
    }

    #[test]
    fn attention_distributions_are_probabilities() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let masks = MaskCache::new();
        let state = model.sample_state(&g, 1, 3);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &masks);
        let wide = tape.value(fw.wide_attention.unwrap());
        assert_eq!(wide.cols(), state.wide.len() + 1);
        assert!((wide.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        for dfw in &fw.deep {
            let a = tape.value(dfw.attention);
            assert!((a.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn variant_no_wide_omits_wide_attention() {
        let g = toy_graph();
        let cfg = small_config().with_variant(Variant::no_wide());
        let model = WidenModel::for_graph(&g, cfg);
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let masks = MaskCache::new();
        let state = model.sample_state(&g, 0, 1);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &masks);
        assert!(fw.wide_attention.is_none());
        assert!(!fw.deep.is_empty());
    }

    #[test]
    fn variant_no_deep_omits_deep_outputs() {
        let g = toy_graph();
        let cfg = small_config().with_variant(Variant::no_deep());
        let model = WidenModel::for_graph(&g, cfg);
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let masks = MaskCache::new();
        let state = model.sample_state(&g, 0, 1);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &masks);
        assert!(fw.wide_attention.is_some());
        assert!(fw.deep.is_empty());
    }

    #[test]
    fn causal_mask_blocks_backward_attention() {
        let cache = MaskCache::new();
        let m = cache.get(4);
        for row in 0..4 {
            for col in 0..4 {
                if row <= col {
                    assert_eq!(m.get(row, col), 0.0);
                } else {
                    assert_eq!(m.get(row, col), f32::NEG_INFINITY);
                }
            }
        }
        // Cache hit returns the same allocation.
        let m2 = cache.get(4);
        assert!(Arc::ptr_eq(&m, &m2));
    }

    #[test]
    fn embed_and_predict_shapes() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let nodes: Vec<u32> = (0..6).collect();
        let emb = model.embed_nodes(&g, &nodes, 11);
        assert_eq!(emb.shape(), (6, 8));
        assert!(emb.all_finite());
        let preds = model.predict(&g, &nodes, 11);
        assert_eq!(preds.len(), 6);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn inference_is_seed_deterministic() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let nodes: Vec<u32> = (0..6).collect();
        let a = model.embed_nodes(&g, &nodes, 5);
        let b = model.embed_nodes(&g, &nodes, 5);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn embeddings_differ_across_nodes() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let emb = model.embed_nodes(&g, &[0, 3], 2);
        let diff: f32 = emb
            .row(0)
            .iter()
            .zip(emb.row(1))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "distinct nodes should embed differently");
    }

    #[test]
    fn parameter_count_is_reported() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        // d0=3, d=8, vocab=2+2, c=2:
        // g_node 24 + g_edge 32 + 9·64 + fuse 128+8 + clf 16 = 784.
        assert_eq!(model.parameter_count(), 784);
    }

    #[test]
    fn gradients_flow_to_all_parameters() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let mut tape = Tape::new();
        let pv = model.insert_params(&mut tape);
        let masks = MaskCache::new();
        let state = model.sample_state(&g, 0, 1);
        let fw = model.forward_node(&mut tape, &pv, &g, &state, &masks);
        let loss = tape.softmax_cross_entropy(fw.logits, &[0]);
        tape.backward(loss);
        for (id, var) in pv.pairs(model.ids()) {
            let name = model.params.name(id);
            let grad = tape.grad(var);
            assert!(grad.is_some(), "no gradient for `{name}`");
            // ReLU can zero out some paths, but most parameters must
            // receive non-trivial gradient signal.
            if ["classifier", "fuse_w", "g_node"].contains(&name) {
                assert!(
                    grad.unwrap().frobenius_norm() > 0.0,
                    "zero gradient for `{name}`"
                );
            }
        }
    }

    /// Runs both engines over the same states and asserts logits agree to
    /// `1e-5`, embeddings to `1e-5` and every parameter gradient (under an
    /// identical cross-entropy loss) to `1e-4`.
    fn assert_engines_agree(g: &HeteroGraph, cfg: WidenConfig, states: &[NodeState]) {
        let model = WidenModel::for_graph(g, cfg);
        let refs: Vec<&NodeState> = states.iter().collect();
        let labels: Vec<usize> = (0..states.len()).map(|i| i % 2).collect();

        // Oracle: per-node forward passes, logits vstacked for the loss.
        let mut tape_a = Tape::new();
        let pv_a = model.insert_params(&mut tape_a);
        let masks = MaskCache::new();
        let mut logit_vars = Vec::new();
        let mut emb_rows = Vec::new();
        let mut wide_rows: Vec<Option<Vec<f32>>> = Vec::new();
        let mut deep_rows: Vec<Vec<Vec<f32>>> = Vec::new();
        for state in &refs {
            let fw = model.forward_node(&mut tape_a, &pv_a, g, state, &masks);
            logit_vars.push(fw.logits);
            emb_rows.push(tape_a.value(fw.embedding).row(0).to_vec());
            wide_rows.push(fw.wide_attention.map(|v| tape_a.value(v).row(0).to_vec()));
            deep_rows.push(
                fw.deep
                    .iter()
                    .map(|d| tape_a.value(d.attention).row(0).to_vec())
                    .collect(),
            );
        }
        let stacked = tape_a.vstack(&logit_vars);
        let loss_a = tape_a.softmax_cross_entropy(stacked, &labels);
        tape_a.backward(loss_a);

        // Batched engine under the identical loss.
        let mut tape_b = Tape::new();
        let pv_b = model.insert_params(&mut tape_b);
        let fw = model.forward_batch(&mut tape_b, &pv_b, g, &refs);
        let loss_b = tape_b.softmax_cross_entropy(fw.logits, &labels);
        tape_b.backward(loss_b);

        let logits_a = tape_a.value(stacked);
        let logits_b = tape_b.value(fw.logits);
        assert!(
            logits_a.max_abs_diff(logits_b) <= 1e-5,
            "logits diverge: {}",
            logits_a.max_abs_diff(logits_b)
        );
        let emb_b = tape_b.value(fw.embeddings);
        for (i, row) in emb_rows.iter().enumerate() {
            for (j, (a, b)) in row.iter().zip(emb_b.row(i)).enumerate() {
                assert!((a - b).abs() <= 1e-5, "embedding [{i},{j}]: {a} vs {b}");
            }
        }

        // The downsampling inputs — attention rows — must agree too.
        for (i, want) in wide_rows.iter().enumerate() {
            match (want, &fw.wide) {
                (Some(row), Some(wb)) => {
                    let got = &tape_b.value(wb.attention).row(i)[..wb.lens[i]];
                    assert_eq!(row.len(), got.len());
                    for (a, b) in row.iter().zip(got) {
                        assert!((a - b).abs() <= 1e-5, "wide attn: {a} vs {b}");
                    }
                }
                (None, None) => {}
                _ => panic!("wide branch presence differs between engines"),
            }
        }
        if let Some(db) = &fw.deep {
            for (i, walks) in deep_rows.iter().enumerate() {
                let (first, count) = db.node_walks[i];
                assert_eq!(walks.len(), count);
                for (phi, row) in walks.iter().enumerate() {
                    let (_, wlen) = db.walk_spans[first + phi];
                    let got = &tape_b.value(db.attention).row(first + phi)[..wlen];
                    assert_eq!(row.len(), got.len());
                    for (a, b) in row.iter().zip(got) {
                        assert!((a - b).abs() <= 1e-5, "deep attn: {a} vs {b}");
                    }
                }
            }
        }

        let mut checked = 0;
        for ((id, var_a), (_, var_b)) in pv_a
            .pairs(model.ids())
            .into_iter()
            .zip(pv_b.pairs(model.ids()))
        {
            let name = model.params.name(id);
            let shape = model.params.get(id).shape();
            let zero = Tensor::zeros(shape.0, shape.1);
            let ga = tape_a.grad(var_a).unwrap_or(&zero);
            let gb = tape_b.grad(var_b).unwrap_or(&zero);
            let diff = ga.max_abs_diff(gb);
            assert!(diff <= 1e-4, "gradient for `{name}` diverges by {diff}");
            checked += 1;
        }
        assert_eq!(checked, 14);
    }

    fn sampled_states(g: &HeteroGraph, model_cfg: &WidenConfig, seed: u64) -> Vec<NodeState> {
        let model = WidenModel::for_graph(g, model_cfg.clone());
        (0..g.num_nodes() as u32)
            .map(|v| model.sample_state(g, v, seed))
            .collect()
    }

    #[test]
    fn batched_engine_matches_per_node_oracle_full_variant() {
        let g = toy_graph();
        let cfg = small_config();
        let states = sampled_states(&g, &cfg, 7);
        assert_engines_agree(&g, cfg, &states);
    }

    #[test]
    fn batched_engine_matches_oracle_without_successive_attention() {
        let g = toy_graph();
        let cfg = small_config().with_variant(Variant::no_successive_attention());
        let states = sampled_states(&g, &cfg, 8);
        assert_engines_agree(&g, cfg, &states);
    }

    #[test]
    fn batched_engine_matches_oracle_wide_only_and_deep_only() {
        let g = toy_graph();
        for variant in [Variant::no_deep(), Variant::no_wide()] {
            let cfg = small_config().with_variant(variant);
            let states = sampled_states(&g, &cfg, 9);
            assert_engines_agree(&g, cfg, &states);
        }
    }

    #[test]
    fn batched_engine_matches_oracle_with_relay_overrides() {
        let g = toy_graph();
        let cfg = small_config();
        let mut states = sampled_states(&g, &cfg, 10);
        // Install a relay override (Eq. 8 outcome) on every walk that has
        // at least one hop, like downsampling would.
        let d = g.feature_dim().max(cfg.d);
        let mut installed = 0;
        for state in &mut states {
            for deep in &mut state.deeps {
                if !deep.is_empty() {
                    let relay: Vec<f32> = (0..cfg.d).map(|k| 0.1 + k as f32 / d as f32).collect();
                    deep.edge_override[0] = Some(relay);
                    installed += 1;
                }
            }
        }
        assert!(installed > 0, "toy graph must produce at least one walk");
        assert_engines_agree(&g, cfg, &states);
    }

    #[test]
    fn try_load_weights_round_trips_and_validates() {
        let g = toy_graph();
        let mut model = WidenModel::for_graph(&g, small_config());
        let checkpoint = model.save_weights();
        let mut other = WidenModel::for_graph(&g, small_config().with_seed(99));
        other.try_load_weights(&checkpoint).expect("valid load");
        for (id, name, tensor) in model.params.iter() {
            let _ = id;
            let oid = other.params.id(name).unwrap();
            assert_eq!(other.params.get(oid).as_slice(), tensor.as_slice());
        }

        // Structural garbage is an error, not a panic.
        assert!(matches!(
            model.try_load_weights(b"not a checkpoint"),
            Err(CheckpointError::BadMagic)
        ));
        assert!(model
            .try_load_weights(&checkpoint[..checkpoint.len() / 2])
            .is_err());

        // A layout mismatch (differently-sized model) is an error, and a
        // failed load leaves the target parameters untouched.
        let mut big_cfg = small_config();
        big_cfg.d = 16;
        let mut big = WidenModel::for_graph(&g, big_cfg);
        let before = big.params.snapshot();
        assert!(matches!(
            big.try_load_weights(&checkpoint),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        for ((_, _, t), old) in big.params.iter().zip(&before) {
            assert_eq!(t.as_slice(), old.as_slice(), "failed load must not mutate");
        }
    }

    #[test]
    #[should_panic(expected = "valid WIDEN checkpoint")]
    fn load_weights_wrapper_panics_on_garbage() {
        let g = toy_graph();
        let mut model = WidenModel::for_graph(&g, small_config());
        model.load_weights(b"garbage");
    }

    #[test]
    fn request_rows_are_invariant_to_batch_composition() {
        // The serving batcher coalesces jobs from unrelated requests into
        // one forward_batch; a node's output must not depend on its batch
        // neighbours, bit for bit.
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let items: Vec<(u32, u64)> = vec![(0, 7), (3, 9), (5, 7), (1, 1234)];
        let together = model.embed_requests(&g, &items);
        for (i, &item) in items.iter().enumerate() {
            let alone = model.embed_requests(&g, &[item]);
            assert_eq!(
                together.row(i),
                alone.row(0),
                "row {i} changed with batch composition"
            );
        }
        let logits_together = model.ensemble_logits(&g, &items, 3);
        for (i, &item) in items.iter().enumerate() {
            let alone = model.ensemble_logits(&g, &[item], 3);
            assert_eq!(logits_together.row(i), alone.row(0));
        }
    }

    #[test]
    fn ensemble_logits_argmax_matches_predict_ensemble() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let nodes: Vec<u32> = (0..6).collect();
        for seed in [3u64, 11] {
            let serial = model.predict_ensemble(&g, &nodes, seed, 2);
            let items: Vec<(u32, u64)> = nodes.iter().map(|&n| (n, seed)).collect();
            let logits = model.ensemble_logits(&g, &items, 2);
            let via_requests: Vec<usize> =
                (0..items.len()).map(|i| argmax(logits.row(i))).collect();
            assert_eq!(serial, via_requests);
        }
    }

    #[test]
    fn embed_requests_matches_embed_nodes() {
        let g = toy_graph();
        let model = WidenModel::for_graph(&g, small_config());
        let nodes: Vec<u32> = vec![0, 2, 4];
        let bulk = model.embed_nodes(&g, &nodes, 13);
        let items: Vec<(u32, u64)> = nodes.iter().map(|&n| (n, 13)).collect();
        let via_requests = model.embed_requests(&g, &items);
        assert_eq!(bulk.max_abs_diff(&via_requests), 0.0);
    }
}
