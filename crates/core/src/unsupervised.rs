//! Unsupervised training of WIDEN embeddings.
//!
//! §3.4 introduces WIDEN as "a versatile and generic heterogeneous graph
//! embedding model \[that\] can be optimized for different downstream tasks"
//! and then picks semi-supervised classification for the paper. This module
//! supplies the canonical alternative: a contrastive (InfoNCE) objective
//! over random-walk co-occurrence — positives are walk neighbours
//! (GraphSAGE's unsupervised loss family), negatives come from the batch.
//!
//! One step: embed a batch of anchors `u₁…u_B` and their walk-sampled
//! positives `v₁…v_B`, form the `B × B` similarity matrix
//! `S = Z_u · Z_vᵀ / τ`, and minimise row-wise cross-entropy against the
//! diagonal. The embeddings are already L2-normalised (Eq. 7), so `S`
//! contains cosine similarities.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use widen_graph::{HeteroGraph, NodeId};
use widen_sampling::{hash_seed, sample_deep};
use widen_tensor::{Adam, Optimizer};

use crate::config::Execution;
use crate::model::{MaskCache, WidenModel};
use crate::trainer::TrainReport;

/// Hyperparameters of the contrastive objective.
#[derive(Clone, Copy, Debug)]
pub struct UnsupervisedConfig {
    /// Length of the positive-sampling walk from each anchor.
    pub positive_walk_length: usize,
    /// Softmax temperature `τ` (lower = harder contrast).
    pub temperature: f32,
    /// Training epochs (overrides the model config's epoch count).
    pub epochs: usize,
}

impl Default for UnsupervisedConfig {
    fn default() -> Self {
        Self {
            positive_walk_length: 3,
            temperature: 0.2,
            epochs: 10,
        }
    }
}

/// Trains `model` contrastively over `nodes` (labels are never read).
/// Returns per-epoch losses; the trained weights live in `model`.
///
/// # Panics
/// Panics if `nodes` is empty or the batch size in the model config is 0.
pub fn fit_unsupervised(
    model: &mut WidenModel,
    graph: &HeteroGraph,
    nodes: &[NodeId],
    config: &UnsupervisedConfig,
) -> TrainReport {
    assert!(!nodes.is_empty(), "need at least one training node");
    let model_config = model.config.clone();
    let mut report = TrainReport::default();
    let mut optimizer = Adam::with_lr(model_config.learning_rate, model_config.weight_decay);
    let mut order: Vec<NodeId> = nodes.to_vec();
    // Shared across all epochs; only the per-node oracle engine reads it.
    let masks = MaskCache::new();

    for epoch in 1..=config.epochs {
        let start = std::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(hash_seed(model_config.seed, &[50, epoch as u64]));
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;

        for batch in order.chunks(model_config.batch_size.max(2)) {
            if batch.len() < 2 {
                continue; // InfoNCE needs in-batch negatives.
            }
            let mut tape = model.new_tape();
            let pv = model.insert_params(&mut tape);

            // Sample anchor/positive states first (rng order fixed), then
            // run the engine the config selects over all of them.
            let mut anchor_states = Vec::with_capacity(batch.len());
            let mut positive_states = Vec::with_capacity(batch.len());
            for &u in batch {
                let positive = sample_positive(graph, u, config.positive_walk_length, &mut rng);
                anchor_states.push(model.sample_state(
                    graph,
                    u,
                    hash_seed(model_config.seed, &[51, epoch as u64]),
                ));
                positive_states.push(model.sample_state(
                    graph,
                    positive,
                    hash_seed(model_config.seed, &[52, epoch as u64]),
                ));
            }

            let (z_u, z_v) = match model_config.execution {
                Execution::Batched => {
                    // One fused forward over anchors then positives; the
                    // first `B` embedding rows are Z_u, the rest Z_v.
                    let states: Vec<&crate::state::NodeState> =
                        anchor_states.iter().chain(positive_states.iter()).collect();
                    let fw = model.forward_batch(&mut tape, &pv, graph, &states);
                    let anchor_rows: Vec<usize> = (0..batch.len()).collect();
                    let positive_rows: Vec<usize> = (batch.len()..2 * batch.len()).collect();
                    let z_u = tape.gather_rows(fw.embeddings, &anchor_rows);
                    let z_v = tape.gather_rows(fw.embeddings, &positive_rows);
                    (z_u, z_v)
                }
                Execution::PerNode => {
                    let mut anchor_embs = Vec::with_capacity(batch.len());
                    let mut positive_embs = Vec::with_capacity(batch.len());
                    for (state_u, state_v) in anchor_states.iter().zip(&positive_states) {
                        let fw_u = model.forward_node(&mut tape, &pv, graph, state_u, &masks);
                        let fw_v = model.forward_node(&mut tape, &pv, graph, state_v, &masks);
                        anchor_embs.push(fw_u.embedding);
                        positive_embs.push(fw_v.embedding);
                    }
                    (tape.vstack(&anchor_embs), tape.vstack(&positive_embs))
                }
            };
            let sims = tape.matmul_nt(z_u, z_v);
            let scaled = tape.scale(sims, 1.0 / config.temperature);
            let labels: Vec<usize> = (0..batch.len()).collect();
            let loss = tape.softmax_cross_entropy(scaled, &labels);
            tape.backward(loss);

            let grads: Vec<_> = pv
                .pairs(model.ids())
                .into_iter()
                .filter_map(|(id, var)| tape.grad(var).cloned().map(|g| (id, g)))
                .collect();
            optimizer.step(&mut model.params, &grads);
            epoch_loss += f64::from(tape.value(loss).get(0, 0));
            batches += 1;
        }
        report.epoch_losses.push(epoch_loss / batches.max(1) as f64);
        report.epoch_secs.push(start.elapsed().as_secs_f64());
    }
    report
}

/// Draws a positive partner: a uniformly chosen node from a short random
/// walk starting at `anchor` (falling back to the anchor itself for
/// isolated nodes — a degenerate but harmless pair).
fn sample_positive<R: Rng + ?Sized>(
    graph: &HeteroGraph,
    anchor: NodeId,
    walk_length: usize,
    rng: &mut R,
) -> NodeId {
    let walk = sample_deep(graph, anchor, walk_length, rng);
    if walk.is_empty() {
        anchor
    } else {
        walk.entries[rng.gen_range(0..walk.entries.len())].node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WidenConfig;
    use widen_data::{acm_like, Scale};

    fn small_model(graph: &HeteroGraph, seed: u64) -> WidenModel {
        let mut cfg = WidenConfig::small();
        cfg.d = 16;
        cfg.n_w = 6;
        cfg.n_d = 6;
        cfg.phi = 2;
        cfg.batch_size = 24;
        cfg.learning_rate = 5e-3;
        cfg.seed = seed;
        WidenModel::for_graph(graph, cfg)
    }

    #[test]
    fn contrastive_loss_decreases() {
        let dataset = acm_like(Scale::Smoke, 61);
        let nodes: Vec<u32> = dataset.graph.labeled_nodes();
        let mut model = small_model(&dataset.graph, 1);
        let report = fit_unsupervised(
            &mut model,
            &dataset.graph,
            &nodes[..120],
            &UnsupervisedConfig {
                epochs: 6,
                ..Default::default()
            },
        );
        assert_eq!(report.epoch_losses.len(), 6);
        let first = report.epoch_losses[0];
        let last = report.final_loss();
        assert!(
            last < first * 0.97,
            "contrastive loss should drop: {first} -> {last}"
        );
    }

    #[test]
    fn unsupervised_embeddings_carry_class_signal() {
        // Never shows a label during training; embeddings must still
        // separate classes because classes drive the wiring.
        let dataset = acm_like(Scale::Smoke, 62);
        let nodes: Vec<u32> = dataset.graph.labeled_nodes();
        let mut model = small_model(&dataset.graph, 2);
        fit_unsupervised(
            &mut model,
            &dataset.graph,
            &nodes,
            &UnsupervisedConfig {
                epochs: 8,
                ..Default::default()
            },
        );
        let probe: Vec<u32> = nodes[..90].to_vec();
        let emb = model.embed_nodes(&dataset.graph, &probe, 3);
        let labels: Vec<usize> = probe
            .iter()
            .map(|&v| dataset.graph.label(v).unwrap() as usize)
            .collect();
        // 1-NN same-class rate: with 3 classes random is ~1/3.
        let mut hits = 0;
        for i in 0..emb.rows() {
            let mut best = usize::MAX;
            let mut best_d = f32::INFINITY;
            for j in 0..emb.rows() {
                if i == j {
                    continue;
                }
                let d: f32 = emb
                    .row(i)
                    .iter()
                    .zip(emb.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            if labels[best] == labels[i] {
                hits += 1;
            }
        }
        let knn_acc = hits as f64 / emb.rows() as f64;
        assert!(
            knn_acc > 0.45,
            "1-NN same-class rate {knn_acc} barely above chance"
        );
    }

    #[test]
    fn positive_sampling_stays_on_graph() {
        let dataset = acm_like(Scale::Smoke, 63);
        let mut rng = StdRng::seed_from_u64(1);
        for &anchor in &dataset.graph.labeled_nodes()[..20] {
            let pos = sample_positive(&dataset.graph, anchor, 3, &mut rng);
            assert!((pos as usize) < dataset.graph.num_nodes());
        }
    }
}
