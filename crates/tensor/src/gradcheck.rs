//! Finite-difference gradient checking used across the test suites.
//!
//! Every differentiable op in this crate — and the composite WIDEN blocks in
//! `widen-core` — is validated against central differences. f32 arithmetic
//! limits attainable precision, so the checker uses a combined
//! absolute/relative tolerance.

use crate::kernels::{default_backend, BackendKind};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Result of a gradient check: the largest combined-tolerance violation.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest `|analytic − numeric| / max(1, |numeric|)` observed.
    pub max_violation: f32,
    /// Where it occurred: (input index, element index).
    pub worst: (usize, usize),
}

/// Checks analytic gradients of `build` against central finite differences.
///
/// `build` must construct the full forward computation from the leaf vars it
/// is handed (one per entry of `inputs`, same order) and return a **scalar**
/// output var. It must be deterministic.
///
/// Returns a report; use [`assert_grads_close`] in tests.
pub fn check_gradients(
    inputs: &[Tensor],
    build: impl Fn(&mut Tape, &[Var]) -> Var,
    eps: f32,
) -> GradCheckReport {
    check_gradients_with_backend(inputs, build, eps, default_backend())
}

/// [`check_gradients`] with the kernel backend pinned — both the analytic
/// pass and every finite-difference evaluation run on `backend`, so the
/// check validates that backend's forward *and* backward GEMM paths.
pub fn check_gradients_with_backend(
    inputs: &[Tensor],
    build: impl Fn(&mut Tape, &[Var]) -> Var,
    eps: f32,
    backend: BackendKind,
) -> GradCheckReport {
    // Analytic pass.
    let mut tape = Tape::with_backend(backend);
    let vars: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let out = build(&mut tape, &vars);
    tape.backward(out);
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(inputs)
        .map(|(v, t)| {
            tape.grad(*v)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(t.rows(), t.cols()))
        })
        .collect();

    let eval = |perturbed: &[Tensor]| -> f32 {
        let mut tape = Tape::with_backend(backend);
        let vars: Vec<Var> = perturbed.iter().map(|t| tape.leaf(t.clone())).collect();
        let out = build(&mut tape, &vars);
        tape.value(out).get(0, 0)
    };

    let mut report = GradCheckReport {
        max_violation: 0.0,
        worst: (0, 0),
    };
    let mut work: Vec<Tensor> = inputs.to_vec();
    for (i, input) in inputs.iter().enumerate() {
        for e in 0..input.len() {
            let orig = input.as_slice()[e];
            work[i].as_mut_slice()[e] = orig + eps;
            let plus = eval(&work);
            work[i].as_mut_slice()[e] = orig - eps;
            let minus = eval(&work);
            work[i].as_mut_slice()[e] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[i].as_slice()[e];
            let violation = (a - numeric).abs() / numeric.abs().max(1.0);
            if violation > report.max_violation {
                report.max_violation = violation;
                report.worst = (i, e);
            }
        }
    }
    report
}

/// Asserts the analytic/numeric agreement is within `tol`.
///
/// # Panics
/// Panics with a located diagnostic on failure.
pub fn assert_grads_close(inputs: &[Tensor], build: impl Fn(&mut Tape, &[Var]) -> Var, tol: f32) {
    assert_grads_close_with_backend(inputs, build, tol, default_backend());
}

/// [`assert_grads_close`] with the kernel backend pinned.
///
/// # Panics
/// Panics with a located diagnostic (including the backend name) on failure.
pub fn assert_grads_close_with_backend(
    inputs: &[Tensor],
    build: impl Fn(&mut Tape, &[Var]) -> Var,
    tol: f32,
    backend: BackendKind,
) {
    let report = check_gradients_with_backend(inputs, build, 1e-2, backend);
    assert!(
        report.max_violation < tol,
        "gradient mismatch {:.3e} at input {} element {} (tol {:.1e}, backend {})",
        report.max_violation,
        report.worst.0,
        report.worst.1,
        tol,
        backend.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn randn(r: usize, c: usize, rng: &mut StdRng) -> Tensor {
        Tensor::randn(r, c, 0.5, rng)
    }

    #[test]
    fn matmul_grads() {
        let mut r = rng();
        let inputs = vec![randn(3, 4, &mut r), randn(4, 2, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                let c = t.matmul(v[0], v[1]);
                t.sum(c)
            },
            2e-2,
        );
    }

    #[test]
    fn matmul_chain_grads_on_every_backend() {
        // The same forward build must grad-check on each kernel backend —
        // this exercises every backend's nn/nt/tn paths (forward matmul +
        // both backward GEMMs) against finite differences.
        let mut r = rng();
        let inputs = vec![
            randn(9, 4, &mut r),
            randn(4, 6, &mut r),
            randn(9, 6, &mut r),
        ];
        for backend in BackendKind::all() {
            assert_grads_close_with_backend(
                &inputs,
                |t, v| {
                    let c = t.matmul(v[0], v[1]);
                    let s = t.matmul_nt(c, v[2]);
                    let sq = t.mul(s, s);
                    t.sum(sq)
                },
                2e-2,
                backend,
            );
        }
    }

    #[test]
    fn matmul_nt_grads() {
        let mut r = rng();
        let inputs = vec![randn(3, 4, &mut r), randn(5, 4, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                let c = t.matmul_nt(v[0], v[1]);
                let sq = t.mul(c, c);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn elementwise_grads() {
        let mut r = rng();
        let inputs = vec![randn(2, 3, &mut r), randn(2, 3, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                let m = t.mul(v[0], v[1]);
                let a = t.add(m, v[0]);
                let s = t.sub(a, v[1]);
                t.sum(s)
            },
            2e-2,
        );
    }

    #[test]
    fn broadcast_scale_grads() {
        let mut r = rng();
        let inputs = vec![randn(4, 3, &mut r), randn(1, 3, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                let b = t.add_row_broadcast(v[0], v[1]);
                let s = t.scale(b, 0.7);
                let sq = t.mul(s, s);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn activation_grads() {
        let mut r = rng();
        // Offset away from the ReLU kink for finite differences.
        let mut a = randn(3, 3, &mut r);
        for x in a.as_mut_slice() {
            if x.abs() < 0.1 {
                *x += 0.2;
            }
        }
        let inputs = vec![a];
        assert_grads_close(
            &inputs,
            |t, v| {
                let r1 = t.relu(v[0]);
                let r2 = t.leaky_relu(v[0], 0.2);
                let r3 = t.tanh(v[0]);
                let s1 = t.add(r1, r2);
                let s2 = t.add(s1, r3);
                t.sum(s2)
            },
            3e-2,
        );
    }

    #[test]
    fn softmax_grads() {
        let mut r = rng();
        let inputs = vec![randn(3, 5, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                let s = t.softmax_rows(v[0]);
                let sq = t.mul(s, s);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn masked_softmax_grads() {
        let mut r = rng();
        let inputs = vec![randn(4, 4, &mut r)];
        let mut mask = Tensor::zeros(4, 4);
        for row in 0..4 {
            for col in 0..4 {
                if row > col {
                    mask.set(row, col, f32::NEG_INFINITY);
                }
            }
        }
        let mask = Arc::new(mask);
        assert_grads_close(
            &inputs,
            move |t, v| {
                let s = t.masked_softmax_rows(v[0], mask.clone());
                let sq = t.mul(s, s);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn stack_select_grads() {
        let mut r = rng();
        let inputs = vec![randn(2, 3, &mut r), randn(3, 3, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                let st = t.vstack(&[v[0], v[1]]);
                let sel = t.select_rows(st, &[0, 4, 2, 2]);
                let sq = t.mul(sel, sel);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn hstack_mean_rows_grads() {
        let mut r = rng();
        let inputs = vec![randn(3, 2, &mut r), randn(3, 4, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                let h = t.hstack(&[v[0], v[1]]);
                let m = t.mean_rows(h);
                let sq = t.mul(m, m);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn l2_normalize_grads() {
        let mut r = rng();
        // Keep rows clearly away from zero norm.
        let mut a = randn(3, 4, &mut r);
        for x in a.as_mut_slice() {
            *x += 1.0;
        }
        let target = randn(3, 4, &mut r);
        let inputs = vec![a, target];
        assert_grads_close(
            &inputs,
            |t, v| {
                let n = t.l2_normalize_rows(v[0]);
                let d = t.sub(n, v[1]);
                let sq = t.mul(d, d);
                t.sum(sq)
            },
            3e-2,
        );
    }

    #[test]
    fn cross_entropy_grads() {
        let mut r = rng();
        let inputs = vec![randn(4, 3, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| t.softmax_cross_entropy(v[0], &[0, 2, 1, 1]),
            2e-2,
        );
    }

    #[test]
    fn maxpool2_grads() {
        let mut r = rng();
        // Separate the operands to keep finite differences off the tie point.
        let mut a = randn(2, 4, &mut r);
        let mut b = randn(2, 4, &mut r);
        for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_mut_slice()) {
            if (*x - *y).abs() < 0.1 {
                *x += 0.3;
            }
        }
        let inputs = vec![a, b];
        assert_grads_close(
            &inputs,
            |t, v| {
                let m = t.maxpool2(v[0], v[1]);
                let sq = t.mul(m, m);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn transpose_grads() {
        let mut r = rng();
        let inputs = vec![randn(3, 5, &mut r), randn(3, 5, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                let tr = t.transpose(v[0]);
                let back = t.transpose(tr);
                let d = t.sub(back, v[1]);
                let sq = t.mul(d, d);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn mul_scalar_var_grads() {
        let mut r = rng();
        let inputs = vec![randn(3, 4, &mut r), randn(1, 1, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                let scaled = t.mul_scalar_var(v[0], v[1]);
                let sq = t.mul(scaled, scaled);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn soft_selection_block_grads() {
        // GTN-style: softmax over channel logits gates two matrices.
        let mut r = rng();
        let inputs = vec![
            randn(1, 2, &mut r),
            randn(3, 3, &mut r),
            randn(3, 3, &mut r),
        ];
        assert_grads_close(
            &inputs,
            |t, v| {
                let sm = t.softmax_rows(v[0]);
                let col = t.transpose(sm);
                let s0 = t.select_rows(col, &[0]);
                let s1 = t.select_rows(col, &[1]);
                let g0 = t.mul_scalar_var(v[1], s0);
                let g1 = t.mul_scalar_var(v[2], s1);
                let mix = t.add(g0, g1);
                let sq = t.mul(mix, mix);
                t.sum(sq)
            },
            3e-2,
        );
    }

    #[test]
    fn gather_rows_grads() {
        let mut r = rng();
        let inputs = vec![randn(4, 3, &mut r)];
        assert_grads_close(
            &inputs,
            |t, v| {
                // Duplicate index exercises the scatter-add accumulation.
                let g = t.gather_rows(v[0], &[2, 0, 2, 3]);
                let sq = t.mul(g, g);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn padded_segment_scores_grads() {
        let mut r = rng();
        let inputs = vec![randn(3, 4, &mut r), randn(6, 4, &mut r)];
        let spans: Arc<[(usize, usize)]> = Arc::from(vec![(0, 2), (2, 4), (4, 1)]);
        assert_grads_close(
            &inputs,
            move |t, v| {
                let s = t.padded_segment_scores(v[0], v[1], spans.clone());
                let sq = t.mul(s, s);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn padded_softmax_rows_grads() {
        let mut r = rng();
        let inputs = vec![randn(3, 5, &mut r)];
        let lens: Arc<[usize]> = Arc::from(vec![5, 3, 1]);
        assert_grads_close(
            &inputs,
            move |t, v| {
                let s = t.padded_softmax_rows(v[0], lens.clone());
                let sq = t.mul(s, s);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn segment_weighted_sum_grads() {
        let mut r = rng();
        let inputs = vec![randn(2, 3, &mut r), randn(5, 4, &mut r)];
        let spans: Arc<[(usize, usize)]> = Arc::from(vec![(0, 3), (3, 2)]);
        assert_grads_close(
            &inputs,
            move |t, v| {
                let s = t.segment_weighted_sum(v[0], v[1], spans.clone());
                let sq = t.mul(s, s);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn segment_mean_rows_grads() {
        let mut r = rng();
        let inputs = vec![randn(6, 3, &mut r)];
        // Includes an empty span (zero row, zero gradient).
        let spans: Arc<[(usize, usize)]> = Arc::from(vec![(0, 4), (4, 0), (4, 2)]);
        assert_grads_close(
            &inputs,
            move |t, v| {
                let m = t.segment_mean_rows(v[0], spans.clone());
                let sq = t.mul(m, m);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn batched_attention_block_grads() {
        // The batched wide-attention block (Eq. 3) end to end: shared
        // Q/K/V projections, ragged scores over per-node spans, padded
        // softmax, segment-weighted value sum.
        let mut r = rng();
        let d = 4;
        let inputs = vec![
            randn(7, d, &mut r), // flat pack matrix: spans (0,3) and (3,4)
            randn(d, d, &mut r), // W_Q
            randn(d, d, &mut r), // W_K
            randn(d, d, &mut r), // W_V
        ];
        let spans: Arc<[(usize, usize)]> = Arc::from(vec![(0, 3), (3, 4)]);
        let lens: Arc<[usize]> = Arc::from(vec![3, 4]);
        assert_grads_close(
            &inputs,
            move |t, v| {
                let packs = v[0];
                let m_t = t.gather_rows(packs, &[0, 3]);
                let q = t.matmul(m_t, v[1]);
                let k = t.matmul(packs, v[2]);
                let scores = t.padded_segment_scores(q, k, spans.clone());
                let scaled = t.scale(scores, 1.0 / (d as f32).sqrt());
                let att = t.padded_softmax_rows(scaled, lens.clone());
                let vals = t.matmul(packs, v[3]);
                let h = t.segment_weighted_sum(att, vals, spans.clone());
                let sq = t.mul(h, h);
                t.sum(sq)
            },
            4e-2,
        );
    }

    #[test]
    fn causal_suffix_attention_grads() {
        // The batched Eq. 4 layout: overlapping suffix spans — every row
        // attends to itself and all later rows of its own walk.
        let mut r = rng();
        let d = 3;
        let inputs = vec![
            randn(4, d, &mut r),
            randn(d, d, &mut r),
            randn(d, d, &mut r),
        ];
        let spans: Arc<[(usize, usize)]> = Arc::from(vec![(0, 4), (1, 3), (2, 2), (3, 1)]);
        let lens: Arc<[usize]> = Arc::from(vec![4, 3, 2, 1]);
        assert_grads_close(
            &inputs,
            move |t, v| {
                let q = t.matmul(v[0], v[1]);
                let k = t.matmul(v[0], v[2]);
                let scores = t.padded_segment_scores(q, k, spans.clone());
                let att = t.padded_softmax_rows(scores, lens.clone());
                let h = t.segment_weighted_sum(att, v[0], spans.clone());
                let sq = t.mul(h, h);
                t.sum(sq)
            },
            4e-2,
        );
    }

    #[test]
    fn spmm_grads() {
        use crate::sparse::CsrMatrix;
        let mut r = rng();
        let csr = Arc::new(CsrMatrix::from_coo(
            3,
            3,
            &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, -1.5), (2, 2, 0.5)],
        ));
        let inputs = vec![randn(3, 4, &mut r)];
        assert_grads_close(
            &inputs,
            move |t, v| {
                let y = t.spmm(csr.clone(), v[0]);
                let sq = t.mul(y, y);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn deep_composite_attention_block_grads() {
        // A miniature of the WIDEN wide-attention block (Eq. 3).
        let mut r = rng();
        let d = 4;
        let inputs = vec![
            randn(5, d, &mut r), // pack matrix M
            randn(d, d, &mut r), // W_Q
            randn(d, d, &mut r), // W_K
            randn(d, d, &mut r), // W_V
        ];
        assert_grads_close(
            &inputs,
            move |t, v| {
                let m = v[0];
                let q_all = t.matmul(m, v[1]);
                let q = t.select_rows(q_all, &[0]);
                let k = t.matmul(m, v[2]);
                let scores = t.matmul_nt(q, k);
                let scaled = t.scale(scores, 1.0 / (d as f32).sqrt());
                let att = t.softmax_rows(scaled);
                let vals = t.matmul(m, v[3]);
                let h = t.matmul(att, vals);
                let sq = t.mul(h, h);
                t.sum(sq)
            },
            4e-2,
        );
    }
}
