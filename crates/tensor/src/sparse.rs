//! Sparse CSR matrices for the full-graph baselines (GCN, FastGCN, GTN, HAN).

use rustc_hash::FxHashMap;

use crate::tensor::Tensor;

/// A compressed-sparse-row `f32` matrix.
///
/// Used for normalised adjacency operators (`D^{-1/2}(A+I)D^{-1/2}`), for
/// GTN's soft edge-type composition (sparse × sparse products) and for HAN's
/// meta-path adjacency construction. Values and structure are immutable once
/// built; autograd treats CSR operands as constants.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds from COO triplets; duplicate coordinates are summed.
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_coo(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "coordinate ({r},{c}) out of bounds");
        }
        // Bucket by row, merging duplicates.
        let mut row_maps: Vec<FxHashMap<u32, f32>> = vec![FxHashMap::default(); rows];
        for &(r, c, v) in triplets {
            *row_maps[r].entry(c as u32).or_insert(0.0) += v;
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for map in row_maps {
            let mut entries: Vec<(u32, f32)> = map.into_iter().collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            for (c, v) in entries {
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// The `n × n` identity as CSR.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(column, value)` pairs of row `r`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let span = self.indptr[r]..self.indptr[r + 1];
        self.indices[span.clone()]
            .iter()
            .zip(&self.values[span])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Dense product `self · dense`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn spmm(&self, dense: &Tensor) -> Tensor {
        assert_eq!(self.cols, dense.rows(), "spmm shape mismatch");
        let n = dense.cols();
        let mut out = Tensor::zeros(self.rows, n);
        use rayon::prelude::*;
        if self.nnz() * n >= 1 << 18 {
            let indptr = &self.indptr;
            let indices = &self.indices;
            let values = &self.values;
            out.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| {
                    for k in indptr[r]..indptr[r + 1] {
                        let src = dense.row(indices[k] as usize);
                        let v = values[k];
                        for (o, &s) in out_row.iter_mut().zip(src) {
                            *o += v * s;
                        }
                    }
                });
        } else {
            for r in 0..self.rows {
                for k in self.indptr[r]..self.indptr[r + 1] {
                    let src = dense.row(self.indices[k] as usize);
                    let v = self.values[k];
                    let out_row = out.row_mut(r);
                    for (o, &s) in out_row.iter_mut().zip(src) {
                        *o += v * s;
                    }
                }
            }
        }
        out
    }

    /// Dense product with the transpose: `selfᵀ · dense`.
    ///
    /// Used by the backward pass of [`crate::Tape::spmm`] without
    /// materialising the transposed matrix.
    pub fn spmm_transposed(&self, dense: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(self.cols, dense.cols());
        self.spmm_transposed_acc(dense, &mut out);
        out
    }

    /// Accumulating transposed product: `out += selfᵀ · dense`.
    ///
    /// The backward pass accumulates the sparse-input gradient straight
    /// into its pooled buffer through this kernel instead of allocating a
    /// scratch product.
    pub fn spmm_transposed_acc(&self, dense: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rows, dense.rows(), "spmm_transposed shape mismatch");
        let n = dense.cols();
        assert_eq!(
            out.shape(),
            (self.cols, n),
            "spmm_transposed_acc output shape mismatch"
        );
        for r in 0..self.rows {
            let src = dense.row(r);
            for k in self.indptr[r]..self.indptr[r + 1] {
                let dst = out.row_mut(self.indices[k] as usize);
                let v = self.values[k];
                for (o, &s) in dst.iter_mut().zip(src) {
                    *o += v * s;
                }
            }
        }
    }

    /// Sparse product `self · other` (both CSR).
    ///
    /// Used by GTN's meta-path composition `A₁ · A₂` and HAN's meta-path
    /// adjacency (e.g. `A_PA · A_AP`).
    pub fn spspmm(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.cols, other.rows, "spspmm shape mismatch");
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        indptr.push(0);
        let mut acc: FxHashMap<u32, f32> = FxHashMap::default();
        for r in 0..self.rows {
            acc.clear();
            for k in self.indptr[r]..self.indptr[r + 1] {
                let mid = self.indices[k] as usize;
                let v = self.values[k];
                for k2 in other.indptr[mid]..other.indptr[mid + 1] {
                    *acc.entry(other.indices[k2]).or_insert(0.0) += v * other.values[k2];
                }
            }
            let mut entries: Vec<(u32, f32)> = acc.iter().map(|(&c, &v)| (c, v)).collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            for (c, v) in entries {
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: other.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_coo(self.cols, self.rows, &triplets)
    }

    /// Row-stochastic normalisation (`D⁻¹ A`); empty rows stay empty.
    pub fn row_normalized(&self) -> CsrMatrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let span = out.indptr[r]..out.indptr[r + 1];
            let sum: f32 = out.values[span.clone()].iter().sum();
            if sum > 0.0 {
                for v in &mut out.values[span] {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// GCN symmetric normalisation with self loops:
    /// `D̂^{-1/2} (A + I) D̂^{-1/2}` (Kipf & Welling).
    ///
    /// # Panics
    /// Panics unless square.
    pub fn gcn_normalized(&self) -> CsrMatrix {
        assert_eq!(
            self.rows, self.cols,
            "gcn normalisation needs a square matrix"
        );
        let n = self.rows;
        let mut triplets: Vec<(usize, usize, f32)> = Vec::with_capacity(self.nnz() + n);
        for r in 0..n {
            for (c, v) in self.row_entries(r) {
                triplets.push((r, c, v));
            }
            triplets.push((r, r, 1.0));
        }
        let with_loops = CsrMatrix::from_coo(n, n, &triplets);
        let deg: Vec<f32> = (0..n)
            .map(|r| with_loops.row_entries(r).map(|(_, v)| v).sum())
            .collect();
        let inv_sqrt: Vec<f32> = deg
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
            .collect();
        let mut out = with_loops;
        for r in 0..n {
            let span = out.indptr[r]..out.indptr[r + 1];
            let (idx, val) = (&out.indices[span.clone()], &mut out.values[span.clone()]);
            for (v, &c) in val.iter_mut().zip(idx) {
                *v *= inv_sqrt[r] * inv_sqrt[c as usize];
            }
        }
        out
    }

    /// Column L2 norms squared — FastGCN's importance-sampling distribution
    /// `q(v) ∝ ‖A·,v‖²`.
    pub fn column_sq_norms(&self) -> Vec<f32> {
        let mut norms = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                norms[c] += v * v;
            }
        }
        norms
    }

    /// Restricts to `keep_rows × keep_cols`, rescaling values by
    /// `1/(n·q(col))` as in FastGCN's Monte-Carlo estimator when `rescale`
    /// holds the sampling probabilities of the kept columns.
    pub fn restrict(
        &self,
        keep_rows: &[usize],
        keep_cols: &[usize],
        rescale: Option<&[f32]>,
    ) -> CsrMatrix {
        let mut col_pos: FxHashMap<u32, usize> = FxHashMap::default();
        for (i, &c) in keep_cols.iter().enumerate() {
            col_pos.insert(c as u32, i);
        }
        let mut triplets = Vec::new();
        for (new_r, &r) in keep_rows.iter().enumerate() {
            for k in self.indptr[r]..self.indptr[r + 1] {
                if let Some(&new_c) = col_pos.get(&self.indices[k]) {
                    let mut v = self.values[k];
                    if let Some(q) = rescale {
                        v /= keep_cols.len() as f32 * q[new_c];
                    }
                    triplets.push((new_r, new_c, v));
                }
            }
        }
        CsrMatrix::from_coo(keep_rows.len(), keep_cols.len(), &triplets)
    }

    /// Dense copy (test helper; avoid on large matrices).
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                out.set(r, c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_coo(3, 3, &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0), (2, 2, 4.0)])
    }

    #[test]
    fn from_coo_merges_duplicates_and_sorts() {
        let m = CsrMatrix::from_coo(2, 3, &[(0, 2, 1.0), (0, 0, 1.0), (0, 2, 2.0)]);
        let row: Vec<(usize, f32)> = m.row_entries(0).collect();
        assert_eq!(row, vec![(0, 1.0), (2, 3.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn spmm_matches_dense() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = sample();
        let x = Tensor::randn(3, 4, 1.0, &mut rng);
        let sparse = m.spmm(&x);
        let dense = m.to_dense().matmul(&x);
        assert!(sparse.max_abs_diff(&dense) < 1e-5);
    }

    #[test]
    fn spmm_transposed_matches_dense() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = sample();
        let x = Tensor::randn(3, 4, 1.0, &mut rng);
        let sparse = m.spmm_transposed(&x);
        let dense = m.to_dense().transpose().matmul(&x);
        assert!(sparse.max_abs_diff(&dense) < 1e-5);
    }

    #[test]
    fn spspmm_matches_dense() {
        let a = sample();
        let b = CsrMatrix::from_coo(3, 2, &[(0, 0, 1.0), (2, 1, 5.0), (1, 1, -1.0)]);
        let sparse = a.spspmm(&b).to_dense();
        let dense = a.to_dense().matmul(&b.to_dense());
        assert!(sparse.max_abs_diff(&dense) < 1e-5);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let rt = m.transpose().transpose();
        assert!(m.to_dense().max_abs_diff(&rt.to_dense()) < 1e-6);
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let m = sample().row_normalized();
        for r in 0..3 {
            let sum: f32 = m.row_entries(r).map(|(_, v)| v).sum();
            if sum > 0.0 {
                assert!((sum - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gcn_normalized_is_symmetric_for_symmetric_input() {
        let m = CsrMatrix::from_coo(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let n = m.gcn_normalized().to_dense();
        assert!(n.max_abs_diff(&n.transpose()) < 1e-6);
        // Self loops present.
        for i in 0..3 {
            assert!(n.get(i, i) > 0.0);
        }
    }

    #[test]
    fn restrict_selects_submatrix() {
        let m = sample();
        let sub = m.restrict(&[1, 2], &[0, 2], None);
        let d = sub.to_dense();
        assert_eq!(d.shape(), (2, 2));
        assert_eq!(d.get(0, 0), 1.0); // (1,0)
        assert_eq!(d.get(0, 1), 3.0); // (1,2)
        assert_eq!(d.get(1, 1), 4.0); // (2,2)
    }

    #[test]
    fn column_sq_norms_match_dense() {
        let m = sample();
        let norms = m.column_sq_norms();
        assert_eq!(norms, vec![1.0, 4.0, 25.0]);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::randn(4, 3, 1.0, &mut rng);
        let id = CsrMatrix::identity(4);
        assert!(id.spmm(&x).max_abs_diff(&x) < 1e-6);
    }
}
