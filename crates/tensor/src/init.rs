//! Weight initialisation schemes.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialisation: `U(−a, a)` with
/// `a = √(6 / (fan_in + fan_out))`. The default for attention projection
/// matrices (`W_Q`, `W_K`, `W_V`) and linear layers.
pub fn xavier_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    Tensor::rand_uniform(rows, cols, -a, a, rng)
}

/// He/Kaiming normal initialisation: `N(0, √(2/fan_in))` — used ahead of
/// ReLU layers (Eq. 7's feed-forward).
pub fn he_normal<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / rows as f32).sqrt();
    Tensor::randn(rows, cols, std, rng)
}

/// Plain Gaussian initialisation with the given standard deviation
/// (embedding tables).
pub fn normal<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Tensor {
    Tensor::randn(rows, cols, std, rng)
}

/// All-zeros initialisation (biases).
pub fn zeros_init(rows: usize, cols: usize) -> Tensor {
    Tensor::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = xavier_uniform(64, 64, &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound));
        // Not degenerate.
        assert!(t.frobenius_norm() > 0.0);
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = he_normal(512, 64, &mut rng);
        let std = (t.as_slice().iter().map(|x| x * x).sum::<f32>() / t.len() as f32).sqrt();
        let expected = (2.0 / 512.0f32).sqrt();
        assert!((std - expected).abs() / expected < 0.15);
    }

    #[test]
    fn init_is_seed_deterministic() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(9));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn zeros_init_is_zero() {
        assert_eq!(zeros_init(2, 2).sum(), 0.0);
    }
}
