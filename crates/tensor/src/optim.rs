//! First-order optimizers over a [`ParamStore`].

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// A gradient set keyed by parameter id, as produced by a training step.
pub type GradMap = Vec<(ParamId, Tensor)>;

/// Common optimizer interface.
pub trait Optimizer {
    /// Applies one update step given gradients for (a subset of) parameters.
    ///
    /// Parameters without a gradient this step are left untouched (their
    /// Adam moments do not advance either, matching sparse-update practice
    /// for embedding tables).
    fn step(&mut self, params: &mut ParamStore, grads: &GradMap);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (sweeps / schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain SGD with optional L2 weight decay (the paper's γ regularisation).
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
}

impl Sgd {
    /// SGD with learning rate `lr` and L2 strength `weight_decay`.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self { lr, weight_decay }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradMap) {
        for (id, grad) in grads {
            let p = params.get_mut(*id);
            assert_eq!(p.shape(), grad.shape(), "gradient shape mismatch");
            if self.weight_decay > 0.0 {
                let decay = self.lr * self.weight_decay;
                let current = p.clone();
                p.add_scaled(-decay, &current);
            }
            p.add_scaled(-self.lr, grad);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate τ (paper default `1e-4` for WIDEN).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// L2 regularisation strength γ (`0.01` on ACM/DBLP, `0` on Yelp).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam (Kingma & Ba) with decoupled parameter-wise moments.
pub struct Adam {
    cfg: AdamConfig,
    /// Per-parameter (m, v, t) lazily allocated on first gradient.
    state: Vec<Option<(Tensor, Tensor, u64)>>,
}

impl Adam {
    /// Adam with the given configuration.
    pub fn new(cfg: AdamConfig) -> Self {
        Self {
            cfg,
            state: Vec::new(),
        }
    }

    /// Adam with default moments and the given learning rate / decay.
    pub fn with_lr(lr: f32, weight_decay: f32) -> Self {
        Self::new(AdamConfig {
            lr,
            weight_decay,
            ..AdamConfig::default()
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradMap) {
        if self.state.len() < params.len() {
            self.state.resize_with(params.len(), || None);
        }
        for (id, grad) in grads {
            let p = params.get_mut(*id);
            assert_eq!(p.shape(), grad.shape(), "gradient shape mismatch");
            let (rows, cols) = p.shape();
            let slot = &mut self.state[id.index()];
            if slot.is_none() {
                *slot = Some((Tensor::zeros(rows, cols), Tensor::zeros(rows, cols), 0));
            }
            let (m, v, t) = slot.as_mut().expect("just initialised");
            *t += 1;
            let (b1, b2) = (self.cfg.beta1, self.cfg.beta2);
            let bias1 = 1.0 - b1.powi(*t as i32);
            let bias2 = 1.0 - b2.powi(*t as i32);
            let g = grad.as_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            let ps = p.as_mut_slice();
            for i in 0..g.len() {
                // L2 decay folded into the gradient (classic Adam-L2).
                let gi = g[i] + self.cfg.weight_decay * ps[i];
                ms[i] = b1 * ms[i] + (1.0 - b1) * gi;
                vs[i] = b2 * vs[i] + (1.0 - b2) * gi * gi;
                let m_hat = ms[i] / bias1;
                let v_hat = vs[i] / bias2;
                ps[i] -= self.cfg.lr * m_hat / (v_hat.sqrt() + self.cfg.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.cfg.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(params: &ParamStore, id: ParamId) -> GradMap {
        // f(w) = ½‖w‖² ⇒ ∇f = w.
        vec![(id, params.get(id).clone())]
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut params = ParamStore::new();
        let w = params.register("w", Tensor::row_vector(&[4.0, -2.0]));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            let g = quadratic_grad(&params, w);
            opt.step(&mut params, &g);
        }
        assert!(params.get(w).frobenius_norm() < 1e-3);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut params = ParamStore::new();
        let w = params.register("w", Tensor::row_vector(&[4.0, -2.0]));
        let mut opt = Adam::with_lr(0.1, 0.0);
        for _ in 0..300 {
            let g = quadratic_grad(&params, w);
            opt.step(&mut params, &g);
        }
        assert!(params.get(w).frobenius_norm() < 1e-2);
    }

    #[test]
    fn weight_decay_shrinks_untouched_direction() {
        let mut params = ParamStore::new();
        let w = params.register("w", Tensor::row_vector(&[1.0]));
        let mut opt = Sgd::new(0.1, 0.5);
        // Zero task gradient: only decay acts.
        let g = vec![(w, Tensor::row_vector(&[0.0]))];
        opt.step(&mut params, &g);
        assert!((params.get(w).get(0, 0) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn params_without_grads_untouched() {
        let mut params = ParamStore::new();
        let w = params.register("w", Tensor::row_vector(&[1.0]));
        let frozen = params.register("frozen", Tensor::row_vector(&[7.0]));
        let mut opt = Adam::with_lr(0.1, 0.0);
        let g = vec![(w, Tensor::row_vector(&[1.0]))];
        opt.step(&mut params, &g);
        assert_eq!(params.get(frozen).as_slice(), &[7.0]);
        assert!(params.get(w).get(0, 0) < 1.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::with_lr(0.01, 0.0);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
    }
}
