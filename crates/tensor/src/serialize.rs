//! Binary (de)serialisation of parameter stores — model checkpointing.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic  "WDN1"            4 bytes
//! count  u32               number of parameters
//! per parameter:
//!   name_len u32, name utf-8 bytes
//!   rows u32, cols u32
//!   rows*cols f32 values
//! ```
//!
//! The format is intentionally simple and self-describing; loading
//! validates the magic, name uniqueness and buffer sizes, so a truncated
//! or corrupted checkpoint fails loudly instead of yielding garbage
//! weights.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::params::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"WDN1";

/// Serialisation errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// A parameter name was not valid UTF-8.
    BadName,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a WIDEN checkpoint (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadName => write!(f, "parameter name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialises a parameter store into a checkpoint buffer.
pub fn save_params(params: &ParamStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + params.scalar_count() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(params.len() as u32);
    for (_, name, tensor) in params.iter() {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        buf.put_u32_le(tensor.rows() as u32);
        buf.put_u32_le(tensor.cols() as u32);
        for &v in tensor.as_slice() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Deserialises a checkpoint into a fresh parameter store.
///
/// # Errors
/// Returns a [`CheckpointError`] on malformed input.
pub fn load_params(mut data: &[u8]) -> Result<ParamStore, CheckpointError> {
    if data.len() < 8 || &data[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    data.advance(4);
    let count = data.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let name_len = data.get_u32_le() as usize;
        if data.remaining() < name_len {
            return Err(CheckpointError::Truncated);
        }
        let name = std::str::from_utf8(&data[..name_len])
            .map_err(|_| CheckpointError::BadName)?
            .to_string();
        data.advance(name_len);
        if data.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let rows = data.get_u32_le() as usize;
        let cols = data.get_u32_le() as usize;
        let scalars = rows * cols;
        if data.remaining() < scalars * 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut values = Vec::with_capacity(scalars);
        for _ in 0..scalars {
            values.push(data.get_f32_le());
        }
        store.register(name, Tensor::from_vec(rows, cols, values));
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.register("alpha", Tensor::from_rows(&[&[1.0, -2.5], &[3.5, 0.0]]));
        store.register("β-weights", Tensor::row_vector(&[0.125]));
        store
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = sample_store();
        let bytes = save_params(&store);
        let loaded = load_params(&bytes).expect("valid checkpoint");
        assert_eq!(loaded.len(), store.len());
        for (id, name, tensor) in store.iter() {
            let lid = loaded.id(name).expect("name survives");
            assert_eq!(loaded.get(lid).as_slice(), tensor.as_slice());
            assert_eq!(loaded.get(lid).shape(), tensor.shape());
            let _ = id;
        }
        // Insertion order preserved (optimizer-state alignment).
        let names_a: Vec<&str> = store.iter().map(|(_, n, _)| n).collect();
        let names_b: Vec<&str> = loaded.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            load_params(b"NOPE1234"),
            Err(CheckpointError::BadMagic)
        ));
        assert!(matches!(load_params(b""), Err(CheckpointError::BadMagic)));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let bytes = save_params(&sample_store());
        for cut in [5, 9, 12, bytes.len() - 1] {
            let result = load_params(&bytes[..cut]);
            assert!(
                result.is_err(),
                "cut at {cut} of {} should fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ParamStore::new();
        let loaded = load_params(&save_params(&store)).unwrap();
        assert!(loaded.is_empty());
    }
}
