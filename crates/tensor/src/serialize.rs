//! Binary (de)serialisation of parameter stores — model checkpointing.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic    "WDN2"            4 bytes
//! count    u32               number of parameters
//! per parameter:
//!   name_len u32, name utf-8 bytes
//!   rows u32, cols u32
//!   rows*cols f32 values
//! checksum u64               FNV-1a over every byte between magic and
//!                            checksum
//! ```
//!
//! The format is intentionally simple and self-describing; loading
//! validates the magic, the trailing checksum, name uniqueness and buffer
//! sizes with checked arithmetic, so a truncated or corrupted checkpoint
//! fails loudly — with an [`Err`], never a panic — instead of yielding
//! garbage weights. The checksum makes *any* single-byte corruption
//! detectable, including flips inside the f32 payload that would otherwise
//! parse cleanly into wrong values.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::params::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"WDN2";
/// Bytes of fixed framing: magic + trailing checksum.
const FOOTER_LEN: usize = 8;

/// Serialisation errors.
///
/// The first four variants describe malformed buffers; the remaining ones
/// describe a well-formed checkpoint that does not match the model it is
/// being loaded into (see `WidenModel::try_load_weights` in `widen-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// A parameter name was not valid UTF-8.
    BadName,
    /// The trailing checksum does not match the content (bit corruption),
    /// or parsing left unconsumed bytes.
    Corrupted,
    /// The checkpoint holds a different number of parameters than the
    /// target model.
    CountMismatch {
        /// Parameters the model expects.
        expected: usize,
        /// Parameters the checkpoint holds.
        found: usize,
    },
    /// The checkpoint names a parameter the target model does not have.
    UnknownParam(String),
    /// A parameter's stored shape differs from the model's.
    ShapeMismatch {
        /// The offending parameter.
        name: String,
        /// Shape the model expects.
        expected: (usize, usize),
        /// Shape the checkpoint holds.
        found: (usize, usize),
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a WIDEN checkpoint (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadName => write!(f, "parameter name is not valid UTF-8"),
            CheckpointError::Corrupted => write!(f, "checkpoint corrupted (checksum mismatch)"),
            CheckpointError::CountMismatch { expected, found } => write!(
                f,
                "checkpoint holds {found} parameters, model expects {expected}"
            ),
            CheckpointError::UnknownParam(name) => {
                write!(f, "checkpoint has unknown parameter `{name}`")
            }
            CheckpointError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch for `{name}`: checkpoint {found:?}, model {expected:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// 64-bit FNV-1a digest, used for the checkpoint checksum and as the
/// cache/registry identity of a checkpoint's exact byte content.
pub fn digest64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serialises a parameter store into a checkpoint buffer.
pub fn save_params(params: &ParamStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(24 + params.scalar_count() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(params.len() as u32);
    for (_, name, tensor) in params.iter() {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
        buf.put_u32_le(tensor.rows() as u32);
        buf.put_u32_le(tensor.cols() as u32);
        for &v in tensor.as_slice() {
            buf.put_f32_le(v);
        }
    }
    let checksum = digest64(&buf[4..]);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Deserialises a checkpoint into a fresh parameter store.
///
/// # Errors
/// Returns a [`CheckpointError`] on malformed input. Never panics: sizes
/// are validated with checked arithmetic and the trailing checksum rejects
/// arbitrary byte corruption before any content is interpreted.
pub fn load_params(data: &[u8]) -> Result<ParamStore, CheckpointError> {
    if data.len() < 4 || &data[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if data.len() < 4 + 4 + FOOTER_LEN {
        return Err(CheckpointError::Truncated);
    }
    let payload = &data[4..data.len() - FOOTER_LEN];
    let mut stored = [0u8; FOOTER_LEN];
    stored.copy_from_slice(&data[data.len() - FOOTER_LEN..]);
    if digest64(payload) != u64::from_le_bytes(stored) {
        return Err(CheckpointError::Corrupted);
    }

    let mut data = payload;
    let count = data.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let name_len = data.get_u32_le() as usize;
        if data.remaining() < name_len {
            return Err(CheckpointError::Truncated);
        }
        let name = std::str::from_utf8(&data[..name_len])
            .map_err(|_| CheckpointError::BadName)?
            .to_string();
        data.advance(name_len);
        if data.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let rows = data.get_u32_le() as usize;
        let cols = data.get_u32_le() as usize;
        let byte_len = rows
            .checked_mul(cols)
            .and_then(|scalars| scalars.checked_mul(4))
            .ok_or(CheckpointError::Truncated)?;
        if data.remaining() < byte_len {
            return Err(CheckpointError::Truncated);
        }
        let scalars = rows * cols;
        let mut values = Vec::with_capacity(scalars);
        for _ in 0..scalars {
            values.push(data.get_f32_le());
        }
        if store.id(&name).is_some() {
            return Err(CheckpointError::Corrupted);
        }
        store.register(name, Tensor::from_vec(rows, cols, values));
    }
    if data.remaining() != 0 {
        return Err(CheckpointError::Corrupted);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut store = ParamStore::new();
        store.register("alpha", Tensor::from_rows(&[&[1.0, -2.5], &[3.5, 0.0]]));
        store.register("β-weights", Tensor::row_vector(&[0.125]));
        store
    }

    #[test]
    fn round_trip_preserves_everything() {
        let store = sample_store();
        let bytes = save_params(&store);
        let loaded = load_params(&bytes).expect("valid checkpoint");
        assert_eq!(loaded.len(), store.len());
        for (id, name, tensor) in store.iter() {
            let lid = loaded.id(name).expect("name survives");
            assert_eq!(loaded.get(lid).as_slice(), tensor.as_slice());
            assert_eq!(loaded.get(lid).shape(), tensor.shape());
            let _ = id;
        }
        // Insertion order preserved (optimizer-state alignment).
        let names_a: Vec<&str> = store.iter().map(|(_, n, _)| n).collect();
        let names_b: Vec<&str> = loaded.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            load_params(b"NOPE1234"),
            Err(CheckpointError::BadMagic)
        ));
        assert!(matches!(load_params(b""), Err(CheckpointError::BadMagic)));
        // The previous format version is rejected, not misread.
        assert!(matches!(
            load_params(b"WDN1\x00\x00\x00\x00"),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let bytes = save_params(&sample_store());
        for cut in 0..bytes.len() {
            let result = load_params(&bytes[..cut]);
            assert!(
                result.is_err(),
                "cut at {cut} of {} should fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = save_params(&sample_store());
        for offset in 0..bytes.len() {
            let mut mutated = bytes.to_vec();
            mutated[offset] ^= 0x40;
            assert!(
                load_params(&mutated).is_err(),
                "flip at {offset} of {} should fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ParamStore::new();
        let loaded = load_params(&save_params(&store)).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        assert_eq!(digest64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(digest64(b"a"), digest64(b"b"));
        assert_eq!(digest64(b"widen"), digest64(b"widen"));
    }
}
