//! Opt-in per-op profiler for the autograd tape.
//!
//! When enabled via [`crate::Tape::enable_profiling`], every forward op
//! records its kind, input/output shapes, elapsed nanoseconds, and an
//! estimated FLOP count; [`crate::Tape::backward`] additionally times each
//! backward step. Aggregation is a fixed array indexed by
//! [`Op::kind_index`] — recording is two `Instant` reads plus a handful of
//! integer adds per op, so profiling a full epoch perturbs what it
//! measures as little as a wall-clock profiler can. When profiling is off
//! the tape skips even the clock reads (one null check per op).
//!
//! The per-tape aggregate surfaces as a [`ProfileReport`]: per-kind totals
//! with a fwd/bwd split, mergeable across tapes (the trainer merges one
//! report per chunk into one per epoch) and renderable as a top-k table.

use crate::op::{Op, OP_KIND_COUNT};
use crate::tensor::Tensor;

/// FLOP estimate for one forward op, from input shapes.
///
/// Estimates follow the usual convention (multiply-add = 2 FLOPs) and are
/// deliberately coarse for bookkeeping ops — `vstack` "costs" its output
/// size. They exist to rank ops and sanity-check arithmetic intensity, not
/// to benchmark hardware.
pub(crate) fn estimate_flops(op: &Op, values: &[Tensor], out: &Tensor) -> u64 {
    let n = |t: &Tensor| t.len() as u64;
    match op {
        Op::Leaf => 0,
        // (m×k)·(k×n): 2mkn.
        Op::MatMul(a, b) => {
            let (m, k) = values[a.index()].shape();
            let n = values[b.index()].cols();
            2 * (m as u64) * (k as u64) * (n as u64)
        }
        // (m×k)·(n×k)ᵀ: 2mkn.
        Op::MatMulNt(a, b) => {
            let (m, k) = values[a.index()].shape();
            let n = values[b.index()].rows();
            2 * (m as u64) * (k as u64) * (n as u64)
        }
        Op::Add(..)
        | Op::Sub(..)
        | Op::Mul(..)
        | Op::AddRowBroadcast(..)
        | Op::Scale(..)
        | Op::Relu(..)
        | Op::LeakyRelu(..)
        | Op::MaxPool2(..)
        | Op::MulScalarVar(..) => n(out),
        // exp + max + sum + div sweeps.
        Op::SoftmaxRows(..) | Op::MaskedSoftmaxRows(..) => 5 * n(out),
        Op::Tanh(..) => 4 * n(out),
        // Copies: count moved elements once.
        Op::VStack(..) | Op::HStack(..) | Op::SelectRows(..) | Op::Transpose(..) => n(out),
        Op::Sum(a) | Op::MeanRows(a) => n(&values[a.index()]),
        Op::L2NormalizeRows(a) => 3 * n(&values[a.index()]),
        Op::SoftmaxCrossEntropy(a, _) => 5 * n(&values[a.index()]),
        Op::Spmm(csr, b) => 2 * (csr.nnz() as u64) * (values[b.index()].cols() as u64),
        // Σ_i 2·len_i·d dot products against K.
        Op::PaddedSegmentScores(_, k, spans) => {
            let d = values[k.index()].cols() as u64;
            2 * d * spans.iter().map(|&(_, l)| l as u64).sum::<u64>()
        }
        Op::PaddedSoftmaxRows(_, lens) => 5 * lens.iter().map(|&l| l as u64).sum::<u64>(),
        Op::SegmentWeightedSum(_, v, spans) => {
            let d = values[v.index()].cols() as u64;
            2 * d * spans.iter().map(|&(_, l)| l as u64).sum::<u64>()
        }
        Op::SegmentMeanRows(a, spans) => {
            let d = values[a.index()].cols() as u64;
            d * spans.iter().map(|&(_, l)| l as u64).sum::<u64>()
        }
    }
}

/// Per-kind accumulator slot. Shapes keep the most recent occurrence —
/// enough to label the table row without per-op allocation.
#[derive(Clone, Copy, Default)]
struct OpAgg {
    count: u64,
    fwd_nanos: u64,
    bwd_nanos: u64,
    flops: u64,
    bwd_pool_hits: u64,
    bwd_allocs: u64,
    last_in: [(u32, u32); 2],
    n_in: u8,
    last_out: (u32, u32),
}

/// The tape-attached collector. One instance per [`crate::Tape`]; obtained
/// reports merge across tapes.
#[derive(Clone)]
pub(crate) struct TapeProfiler {
    aggs: [OpAgg; OP_KIND_COUNT],
}

impl Default for TapeProfiler {
    fn default() -> Self {
        Self {
            aggs: [OpAgg::default(); OP_KIND_COUNT],
        }
    }
}

impl TapeProfiler {
    pub(crate) fn record_forward(&mut self, op: &Op, values: &[Tensor], out: &Tensor, nanos: u64) {
        let agg = &mut self.aggs[op.kind_index()];
        agg.count += 1;
        agg.fwd_nanos += nanos;
        agg.flops += estimate_flops(op, values, out);
        agg.last_out = (out.rows() as u32, out.cols() as u32);
        agg.n_in = 0;
        for (slot, var) in op.inputs().iter().take(2).enumerate() {
            let v = &values[var.index()];
            agg.last_in[slot] = (v.rows() as u32, v.cols() as u32);
            agg.n_in = (slot + 1) as u8;
        }
    }

    pub(crate) fn record_backward(&mut self, op: &Op, nanos: u64, pool_hits: u64, allocs: u64) {
        let agg = &mut self.aggs[op.kind_index()];
        agg.bwd_nanos += nanos;
        agg.bwd_pool_hits += pool_hits;
        agg.bwd_allocs += allocs;
    }

    pub(crate) fn report(&self, backend: &'static str) -> ProfileReport {
        let mut ops = Vec::new();
        let (mut fwd_total, mut bwd_total) = (0u64, 0u64);
        for (kind, agg) in self.aggs.iter().enumerate() {
            fwd_total += agg.fwd_nanos;
            bwd_total += agg.bwd_nanos;
            if agg.count == 0 {
                continue;
            }
            let mut shape = String::new();
            for i in 0..agg.n_in as usize {
                if i > 0 {
                    shape.push('·');
                }
                shape.push_str(&format!("{}×{}", agg.last_in[i].0, agg.last_in[i].1));
            }
            if agg.n_in > 0 {
                shape.push('→');
            }
            shape.push_str(&format!("{}×{}", agg.last_out.0, agg.last_out.1));
            ops.push(OpProfile {
                name: kind_name(kind),
                backend,
                count: agg.count,
                fwd_nanos: agg.fwd_nanos,
                bwd_nanos: agg.bwd_nanos,
                flops: agg.flops,
                bwd_pool_hits: agg.bwd_pool_hits,
                bwd_allocs: agg.bwd_allocs,
                last_shape: shape,
            });
        }
        ProfileReport {
            ops,
            fwd_nanos_total: fwd_total,
            bwd_nanos_total: bwd_total,
        }
    }
}

/// `kind_index` → display name, without materialising an op.
fn kind_name(kind: usize) -> &'static str {
    const NAMES: [&str; OP_KIND_COUNT] = [
        "leaf",
        "matmul",
        "matmul_nt",
        "add",
        "sub",
        "mul",
        "add_row_broadcast",
        "scale",
        "relu",
        "leaky_relu",
        "tanh",
        "softmax_rows",
        "masked_softmax_rows",
        "vstack",
        "hstack",
        "select_rows",
        "sum",
        "mean_rows",
        "l2_normalize_rows",
        "softmax_cross_entropy",
        "maxpool2",
        "spmm",
        "transpose",
        "mul_scalar_var",
        "padded_segment_scores",
        "padded_softmax_rows",
        "segment_weighted_sum",
        "segment_mean_rows",
    ];
    NAMES[kind]
}

/// Aggregated statistics of one op kind across a profiled region.
#[derive(Clone, Debug, PartialEq)]
pub struct OpProfile {
    /// Op kind name (matches [`Op::name`]).
    pub name: &'static str,
    /// Kernel backend the producing tape dispatched through
    /// ([`crate::BackendKind::name`]) — lets merged fig4/profile tables
    /// attribute forward time to the backend that actually ran it.
    pub backend: &'static str,
    /// Number of forward executions.
    pub count: u64,
    /// Total forward self-time, nanoseconds.
    pub fwd_nanos: u64,
    /// Total backward self-time, nanoseconds.
    pub bwd_nanos: u64,
    /// Estimated forward FLOPs (2 per multiply-add).
    pub flops: u64,
    /// Backward gradient buffers served from the tape's pool free lists.
    pub bwd_pool_hits: u64,
    /// Backward gradient buffers that had to heap-allocate.
    pub bwd_allocs: u64,
    /// Shape of the most recent occurrence, e.g. `64×128·128×64→64×64`.
    pub last_shape: String,
}

impl OpProfile {
    /// Forward + backward self-time, nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.fwd_nanos + self.bwd_nanos
    }
}

/// A profiled region's per-op breakdown with fwd/bwd totals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileReport {
    /// One entry per op kind that executed at least once.
    pub ops: Vec<OpProfile>,
    /// Sum of forward self-times, nanoseconds.
    pub fwd_nanos_total: u64,
    /// Sum of backward self-times, nanoseconds.
    pub bwd_nanos_total: u64,
}

impl ProfileReport {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total estimated FLOPs across all ops.
    pub fn total_flops(&self) -> u64 {
        self.ops.iter().map(|o| o.flops).sum()
    }

    /// Folds another report into this one (kinds matched by name **and**
    /// backend — rows from tapes on different kernel backends stay
    /// separate; shapes keep the other report's most recent occurrence).
    pub fn merge(&mut self, other: &ProfileReport) {
        self.fwd_nanos_total += other.fwd_nanos_total;
        self.bwd_nanos_total += other.bwd_nanos_total;
        for o in &other.ops {
            if let Some(mine) = self
                .ops
                .iter_mut()
                .find(|m| m.name == o.name && m.backend == o.backend)
            {
                mine.count += o.count;
                mine.fwd_nanos += o.fwd_nanos;
                mine.bwd_nanos += o.bwd_nanos;
                mine.flops += o.flops;
                mine.bwd_pool_hits += o.bwd_pool_hits;
                mine.bwd_allocs += o.bwd_allocs;
                mine.last_shape.clone_from(&o.last_shape);
            } else {
                self.ops.push(o.clone());
            }
        }
    }

    /// The `k` op kinds with the largest fwd+bwd self-time, descending.
    pub fn top_k(&self, k: usize) -> Vec<&OpProfile> {
        let mut sorted: Vec<&OpProfile> = self.ops.iter().collect();
        sorted.sort_by(|a, b| {
            b.total_nanos()
                .cmp(&a.total_nanos())
                .then_with(|| a.name.cmp(b.name))
        });
        sorted.truncate(k);
        sorted
    }

    /// Renders the top-`k` ops as an aligned text table (fig4 output,
    /// slow-epoch logs).
    pub fn render_table(&self, k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:<10} {:>8} {:>12} {:>12} {:>10} {:>14} {:>10} {:>10}  {}\n",
            "op",
            "backend",
            "count",
            "fwd_ms",
            "bwd_ms",
            "share",
            "gflops_est",
            "pool_hits",
            "bwd_alloc",
            "last_shape"
        ));
        let grand = (self.fwd_nanos_total + self.bwd_nanos_total).max(1) as f64;
        for o in self.top_k(k) {
            out.push_str(&format!(
                "{:<24} {:<10} {:>8} {:>12.3} {:>12.3} {:>9.1}% {:>14.3} {:>10} {:>10}  {}\n",
                o.name,
                o.backend,
                o.count,
                o.fwd_nanos as f64 / 1e6,
                o.bwd_nanos as f64 / 1e6,
                o.total_nanos() as f64 / grand * 100.0,
                o.flops as f64 / 1e9,
                o.bwd_pool_hits,
                o.bwd_allocs,
                o.last_shape
            ));
        }
        out.push_str(&format!(
            "total: fwd {:.3}ms  bwd {:.3}ms  est {:.3} GFLOP\n",
            self.fwd_nanos_total as f64 / 1e6,
            self.bwd_nanos_total as f64 / 1e6,
            self.total_flops() as f64 / 1e9
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &'static str, fwd: u64, bwd: u64) -> OpProfile {
        OpProfile {
            name,
            backend: "reference",
            count: 1,
            fwd_nanos: fwd,
            bwd_nanos: bwd,
            flops: 100,
            bwd_pool_hits: 3,
            bwd_allocs: 1,
            last_shape: "2×2→2×2".into(),
        }
    }

    #[test]
    fn merge_sums_pool_counters() {
        let mut a = ProfileReport {
            ops: vec![sample("matmul", 1, 1)],
            fwd_nanos_total: 1,
            bwd_nanos_total: 1,
        };
        a.merge(&a.clone());
        let mm = &a.ops[0];
        assert_eq!(mm.bwd_pool_hits, 6);
        assert_eq!(mm.bwd_allocs, 2);
    }

    #[test]
    fn merge_sums_matching_kinds() {
        let mut a = ProfileReport {
            ops: vec![sample("matmul", 10, 20)],
            fwd_nanos_total: 10,
            bwd_nanos_total: 20,
        };
        let b = ProfileReport {
            ops: vec![sample("matmul", 5, 5), sample("relu", 1, 1)],
            fwd_nanos_total: 6,
            bwd_nanos_total: 6,
        };
        a.merge(&b);
        assert_eq!(a.fwd_nanos_total, 16);
        assert_eq!(a.bwd_nanos_total, 26);
        assert_eq!(a.ops.len(), 2);
        let mm = a.ops.iter().find(|o| o.name == "matmul").unwrap();
        assert_eq!(mm.count, 2);
        assert_eq!(mm.fwd_nanos, 15);
        assert_eq!(mm.bwd_nanos, 25);
    }

    #[test]
    fn merge_keeps_backends_as_separate_rows() {
        let mut a = ProfileReport {
            ops: vec![sample("matmul", 10, 20)],
            fwd_nanos_total: 10,
            bwd_nanos_total: 20,
        };
        let mut opt = sample("matmul", 5, 5);
        opt.backend = "optimized";
        let b = ProfileReport {
            ops: vec![opt],
            fwd_nanos_total: 5,
            bwd_nanos_total: 5,
        };
        a.merge(&b);
        assert_eq!(
            a.ops.len(),
            2,
            "same op on different backends must not merge"
        );
        let reference = a.ops.iter().find(|o| o.backend == "reference").unwrap();
        assert_eq!(reference.fwd_nanos, 10);
        let optimized = a.ops.iter().find(|o| o.backend == "optimized").unwrap();
        assert_eq!(optimized.fwd_nanos, 5);
        let table = a.render_table(4);
        assert!(table.contains("backend"));
        assert!(table.contains("optimized"));
    }

    #[test]
    fn top_k_orders_by_total_self_time() {
        let r = ProfileReport {
            ops: vec![
                sample("small", 1, 1),
                sample("big", 100, 100),
                sample("mid", 50, 0),
            ],
            fwd_nanos_total: 151,
            bwd_nanos_total: 101,
        };
        let top: Vec<&str> = r.top_k(2).iter().map(|o| o.name).collect();
        assert_eq!(top, vec!["big", "mid"]);
        let table = r.render_table(3);
        assert!(table.contains("big"));
        assert!(table.contains("last_shape"));
    }
}
