//! The scalar oracle backend.
//!
//! These are the exact kernels that used to live inline in `tensor.rs`,
//! moved behind the [`KernelBackend`] seam unchanged: same loop orders,
//! same `+0.0`-only zero skip, same rayon thresholds and stripe sizing.
//! Everything downstream that promises bitwise reproducibility (batched
//! vs per-node engine parity, checkpoint restore, the striped-`tn`
//! any-thread-count guarantee) is promised *against this backend*.

use super::{axpy, dot, nonzero, KernelBackend, PAR_MATMUL_THRESHOLD, TN_BLOCK_BYTES};

/// Scalar oracle backend — bit-compatible with the historical kernels.
#[derive(Clone, Copy, Debug, Default)]
pub struct Reference;

impl KernelBackend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn gemm_nn_acc(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        let work = m * k * n;
        if work >= PAR_MATMUL_THRESHOLD && m > 1 && rayon::current_num_threads() > 1 {
            use rayon::prelude::*;
            out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| {
                matmul_row(&a[i * k..(i + 1) * k], b, n, out_row);
            });
        } else {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                matmul_row(a_row, b, n, out_row);
            }
        }
    }

    fn gemm_nt_acc(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        let work = m * k * n;
        if work >= PAR_MATMUL_THRESHOLD && m > 1 && rayon::current_num_threads() > 1 {
            use rayon::prelude::*;
            out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| {
                let a_row = &a[i * k..(i + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    *o += dot(a_row, &b[j * k..(j + 1) * k]);
                }
            });
        } else {
            let a_rows = a.chunks_exact(k.max(1));
            let out_rows = out.chunks_exact_mut(n.max(1));
            for (a_row, out_row) in a_rows.zip(out_rows) {
                let b_rows = b.chunks_exact(k.max(1));
                for (o, b_row) in out_row.iter_mut().zip(b_rows) {
                    *o += dot(a_row, b_row);
                }
            }
        }
    }

    fn gemm_tn_acc(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let work = m * k * n;
        let threads = rayon::current_num_threads();
        // A single worker gains nothing from striping and would pay the
        // fork-join dispatch on every backward matmul, so fall through to
        // the serial rank-1 kernel when the pool has one thread.
        if work >= PAR_MATMUL_THRESHOLD && m > 1 && threads > 1 {
            // Stripe width: enough stripes to feed every thread, but each
            // stripe's output block capped near L2 size (bytes below are
            // f32 counts × 4). Clamped to ≥1 row.
            let cache_rows = (TN_BLOCK_BYTES / 4 / n.max(1)).max(1);
            let stripe = m.div_ceil(threads).clamp(1, cache_rows);
            gemm_tn_acc_striped(m, k, n, a, b, out, stripe);
        } else {
            // Serial rank-1 accumulation; row-major friendly for `b`.
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    if nonzero(av) {
                        let out_row = &mut out[i * n..(i + 1) * n];
                        axpy(av, b_row, out_row);
                    }
                }
            }
        }
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        dot(a, b)
    }
}

/// One output row of `gemm_nn_acc`: `out_row += a_row · B` via rank-1
/// axpy updates, skipping exact `+0.0` multipliers (see
/// [`super::nonzero`]).
#[inline]
pub(crate) fn matmul_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    for (p, &a) in a_row.iter().enumerate() {
        if nonzero(a) {
            let b_row = &b[p * n..(p + 1) * n];
            axpy(a, b_row, out_row);
        }
    }
}

/// Column-striped body of [`Reference::gemm_tn_acc`]: one rayon task per
/// `stripe`-row block of the output, each walking the shared `k`
/// dimension in increasing order so every element accumulates its rank-1
/// terms in exactly the serial order (bit-identical results for any
/// stripe width or thread count). Factored out so tests can pin the
/// stripe width regardless of the host's core count.
pub(crate) fn gemm_tn_acc_striped(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    stripe: usize,
) {
    use rayon::prelude::*;
    out.par_chunks_mut(stripe * n)
        .enumerate()
        .for_each(|(chunk_idx, out_block)| {
            let i0 = chunk_idx * stripe;
            let rows_here = out_block.len() / n;
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                let a_stripe = a_row[i0..i0 + rows_here].iter();
                for (&av, out_row) in a_stripe.zip(out_block.chunks_mut(n)) {
                    if nonzero(av) {
                        axpy(av, b_row, out_row);
                    }
                }
            }
        });
}
