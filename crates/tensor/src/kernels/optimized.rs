//! Packed, register-tiled forward GEMM backend.
//!
//! This is the PR-5 backward playbook applied to the forward pass. The
//! [`Reference`] `A·B` kernel streams the whole output row through memory
//! once per inner-dimension step (`n` loads + `n` stores per `p`); the
//! kernel here instead computes an `MR × NR` output tile in registers —
//! `MR` query rows share every load of a B panel row, and each of the
//! `MR·NR` accumulators lives in a register for the full `k` sweep. B is
//! repacked into contiguous `NR`-wide panels (one cache line per `p`)
//! through the thread-local scratch arena in `pool.rs`, and the `k` loop
//! is monomorphised for the paper-config hot inner dimensions
//! (`d = 128` at paper scale, 64 and 32 for the small configs).
//!
//! ## Parity contract
//!
//! Per output element the tile kernel accumulates `a[i][p]·b[p][j]` in
//! the same increasing-`p`, single-accumulator order as [`Reference`] —
//! the differences are exactly two:
//!
//! 1. no `+0.0` skip: terms the reference kernel elides are summed here
//!    (so where Reference produces NaN/∞, Optimized does too — it sums a
//!    superset of the reference's terms);
//! 2. accumulation into a non-zero `out` rounds once at the end
//!    (`out += Σ terms`) instead of per term.
//!
//! Both effects are bounded by the standard GEMM error model — see the
//! `backend_parity` proptests for the enforced tolerance. `A·Bᵀ`, `Aᵀ·B`
//! and `dot` replicate the reference arithmetic element for element and
//! stay bit-identical.
//!
//! ## Runtime SIMD dispatch
//!
//! The workspace compiles for baseline x86-64 (SSE2), so the wide-vector
//! inner loops here are explicit intrinsics behind
//! `is_x86_feature_detected!` probes — AVX-512F first, then AVX2, then a
//! portable scalar body. Every SIMD variant vectorises **across output
//! elements** (tile columns, dot lanes, axpy elements) and uses separate
//! multiply and add — never FMA — so each element sees the identical
//! correctly-rounded operation sequence: all variants of a kernel are
//! bit-identical, and the parity contract holds on any host.

use super::{dot, nonzero, KernelBackend, DOT_LANES, PAR_MATMUL_THRESHOLD, TN_BLOCK_BYTES};
use crate::pool::with_pack_scratch;

/// Packed, register-tiled forward-GEMM backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct Optimized;

/// Rows per register tile: each B-panel load is reused across `MR` rows.
const MR: usize = 4;

/// Columns per register tile / packed-panel width. On the SIMD paths the
/// `MR × NR` accumulator tile is 4 ZMM (AVX-512) or 8 YMM (AVX2)
/// registers — well inside the register file, no spills.
const NR: usize = 16;

/// Pack B only once there are enough output rows to amortise the extra
/// pass over B (below this, the tile kernel reads B in place).
const PACK_MIN_M: usize = 2 * MR;

impl KernelBackend for Optimized {
    fn name(&self) -> &'static str {
        "optimized"
    }

    fn gemm_nn_acc(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        if m >= PACK_MIN_M {
            let panels = n.div_ceil(NR);
            with_pack_scratch(panels * k * NR, |packed| {
                pack_b(k, n, b, packed);
                nn_driver(m, k, n, a, BSource::Packed(packed), out);
            });
        } else {
            nn_driver(m, k, n, a, BSource::Raw(b), out);
        }
    }

    fn gemm_nt_acc(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let work = m * k * n;
        if work >= PAR_MATMUL_THRESHOLD && m > 1 && rayon::current_num_threads() > 1 {
            use rayon::prelude::*;
            out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| {
                nt_row(k, n, &a[i * k..(i + 1) * k], b, out_row);
            });
        } else {
            for i in 0..m {
                nt_row(
                    k,
                    n,
                    &a[i * k..(i + 1) * k],
                    b,
                    &mut out[i * n..(i + 1) * n],
                );
            }
        }
    }

    fn gemm_tn_acc(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        // Same algorithm as the reference tn kernel — identical `+0.0`
        // skip, stripe sizing and increasing-`p` element order — with the
        // rank-1 update routed through the runtime-SIMD axpy, so weight
        // gradients stay bit-identical across backends.
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let work = m * k * n;
        let threads = rayon::current_num_threads();
        if work >= PAR_MATMUL_THRESHOLD && m > 1 && threads > 1 {
            let cache_rows = (TN_BLOCK_BYTES / 4 / n.max(1)).max(1);
            let stripe = m.div_ceil(threads).clamp(1, cache_rows);
            tn_striped(m, k, n, a, b, out, stripe);
        } else {
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    if nonzero(av) {
                        axpy_wide(av, b_row, &mut out[i * n..(i + 1) * n]);
                    }
                }
            }
        }
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        dot(a, b)
    }
}

/// B operand view for the tile kernel: packed panels or the raw matrix.
#[derive(Clone, Copy)]
enum BSource<'a> {
    /// Panel-major repack: panel `j` holds columns `j·NR ..`, element
    /// `(p, c)` at `j·k·NR + p·NR + c`, short final panel zero-padded.
    Packed(&'a [f32]),
    /// Row-major B as handed to the kernel (small-`m` calls).
    Raw(&'a [f32]),
}

fn pack_b(k: usize, n: usize, b: &[f32], packed: &mut [f32]) {
    let panels = n.div_ceil(NR);
    for panel in 0..panels {
        let j0 = panel * NR;
        let w = (n - j0).min(NR);
        let dst = &mut packed[panel * k * NR..(panel + 1) * k * NR];
        for p in 0..k {
            let src = &b[p * n + j0..p * n + j0 + w];
            let d = &mut dst[p * NR..(p + 1) * NR];
            d[..w].copy_from_slice(src);
            d[w..].fill(0.0);
        }
    }
}

fn nn_driver(m: usize, k: usize, n: usize, a: &[f32], b: BSource<'_>, out: &mut [f32]) {
    let work = m * k * n;
    let threads = rayon::current_num_threads();
    if work >= PAR_MATMUL_THRESHOLD && m > MR && threads > 1 {
        use rayon::prelude::*;
        // Row bands are independent, so any MR-aligned split is
        // deterministic and bit-identical to the serial sweep.
        let rows_per = m.div_ceil(threads).div_ceil(MR) * MR;
        out.par_chunks_mut(rows_per * n)
            .enumerate()
            .for_each(|(ci, out_chunk)| {
                let i0 = ci * rows_per;
                let rows_here = out_chunk.len() / n;
                nn_block(
                    k,
                    n,
                    &a[i0 * k..(i0 + rows_here) * k],
                    rows_here,
                    b,
                    out_chunk,
                );
            });
    } else {
        nn_block(k, n, a, m, b, out);
    }
}

/// Tiles `rows` output rows into `MR`-high bands.
fn nn_block(
    k: usize,
    n: usize,
    a_block: &[f32],
    rows: usize,
    b: BSource<'_>,
    out_block: &mut [f32],
) {
    let mut i = 0;
    while i < rows {
        let mra = (rows - i).min(MR);
        let a_sub = &a_block[i * k..(i + mra) * k];
        let o_sub = &mut out_block[i * n..(i + mra) * n];
        match mra {
            4 => row_band::<4>(k, n, a_sub, b, o_sub),
            3 => row_band::<3>(k, n, a_sub, b, o_sub),
            2 => row_band::<2>(k, n, a_sub, b, o_sub),
            _ => row_band::<1>(k, n, a_sub, b, o_sub),
        }
        i += mra;
    }
}

/// One `MRA`-row band: sweeps the NR-wide panels of B.
fn row_band<const MRA: usize>(
    k: usize,
    n: usize,
    a_sub: &[f32],
    b: BSource<'_>,
    o_sub: &mut [f32],
) {
    match b {
        BSource::Packed(packed) => {
            let mut j0 = 0;
            let mut panel = 0;
            while j0 < n {
                let w = (n - j0).min(NR);
                let bp = &packed[panel * k * NR..(panel + 1) * k * NR];
                micro::<MRA>(k, a_sub, bp, NR, o_sub, n, j0, w);
                j0 += NR;
                panel += 1;
            }
        }
        BSource::Raw(raw) => {
            let mut j0 = 0;
            while j0 + NR <= n {
                micro::<MRA>(k, a_sub, &raw[j0..], n, o_sub, n, j0, NR);
                j0 += NR;
            }
            // Ragged tail columns: plain single-accumulator dots, still
            // increasing-`p` order.
            for j in j0..n {
                for r in 0..MRA {
                    let a_row = &a_sub[r * k..(r + 1) * k];
                    let mut acc = 0.0f32;
                    for (p, &av) in a_row.iter().enumerate() {
                        acc += av * raw[p * n + j];
                    }
                    o_sub[r * n + j] += acc;
                }
            }
        }
    }
}

/// `MRA × NR` register tile, dispatching to a fixed-`k` instantiation for
/// the hot inner dimensions (paper `d = 128`; 64/32 for small configs).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro<const MRA: usize>(
    k: usize,
    a_sub: &[f32],
    b_panel: &[f32],
    b_stride: usize,
    o_sub: &mut [f32],
    n: usize,
    j0: usize,
    w: usize,
) {
    match k {
        32 => micro_k::<MRA, 32>(a_sub, b_panel, b_stride, o_sub, n, j0, w),
        64 => micro_k::<MRA, 64>(a_sub, b_panel, b_stride, o_sub, n, j0, w),
        128 => micro_k::<MRA, 128>(a_sub, b_panel, b_stride, o_sub, n, j0, w),
        _ => micro_dyn::<MRA>(k, a_sub, b_panel, b_stride, o_sub, n, j0, w),
    }
}

#[inline(always)]
fn micro_k<const MRA: usize, const K: usize>(
    a_sub: &[f32],
    b_panel: &[f32],
    b_stride: usize,
    o_sub: &mut [f32],
    n: usize,
    j0: usize,
    w: usize,
) {
    micro_dyn::<MRA>(K, a_sub, b_panel, b_stride, o_sub, n, j0, w)
}

/// The tile body: every output element keeps a single register
/// accumulator swept over increasing `p` — the reference accumulation
/// order, minus the `+0.0` skip.
///
/// The accumulator fill dispatches at runtime to an AVX-512F or AVX2
/// variant when the CPU has one (the compile target is baseline x86-64,
/// so the compiler cannot emit wide vectors on its own). The SIMD
/// variants vectorise **across the `NR` output columns** and use separate
/// multiply and add (never FMA), so each output element sees exactly the
/// scalar sequence `acc += a[i][p] · b[p][j]` in increasing-`p` order —
/// all three fills are bit-identical, on NaN and subnormal inputs too.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_dyn<const MRA: usize>(
    k: usize,
    a_sub: &[f32],
    b_panel: &[f32],
    b_stride: usize,
    o_sub: &mut [f32],
    n: usize,
    j0: usize,
    w: usize,
) {
    let mut acc = [[0.0f32; NR]; MRA];
    fill_tile::<MRA>(k, a_sub, b_panel, b_stride, &mut acc);
    for (r, lanes) in acc.iter().enumerate() {
        let o_row = &mut o_sub[r * n + j0..r * n + j0 + w];
        for (o, &v) in o_row.iter_mut().zip(&lanes[..w]) {
            *o += v;
        }
    }
}

/// Fills the `MRA × NR` accumulator tile, dispatching on the widest
/// vector extension the CPU reports (`is_x86_feature_detected!` caches
/// the CPUID probe in a static, so the steady-state cost is one relaxed
/// atomic load per tile).
#[inline(always)]
fn fill_tile<const MRA: usize>(
    k: usize,
    a_sub: &[f32],
    b_panel: &[f32],
    b_stride: usize,
    acc: &mut [[f32; NR]; MRA],
) {
    debug_assert!(a_sub.len() >= MRA * k);
    debug_assert!(k == 0 || b_panel.len() >= (k - 1) * b_stride + NR);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature probed above; slice bounds asserted above
            // (every `p` reads `NR` floats at `p · b_stride`).
            unsafe { fill_tile_avx512::<MRA>(k, a_sub, b_panel, b_stride, acc) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: as above.
            unsafe { fill_tile_avx2::<MRA>(k, a_sub, b_panel, b_stride, acc) };
            return;
        }
    }
    fill_tile_scalar::<MRA>(k, a_sub, b_panel, b_stride, acc);
}

/// Portable fill: single accumulator per element, increasing `p`.
#[inline(always)]
fn fill_tile_scalar<const MRA: usize>(
    k: usize,
    a_sub: &[f32],
    b_panel: &[f32],
    b_stride: usize,
    acc: &mut [[f32; NR]; MRA],
) {
    for p in 0..k {
        let bp = &b_panel[p * b_stride..p * b_stride + NR];
        for r in 0..MRA {
            let av = a_sub[r * k + p];
            for l in 0..NR {
                acc[r][l] += av * bp[l];
            }
        }
    }
}

/// AVX-512F fill: one ZMM accumulator per tile row (`NR = 16` lanes),
/// broadcast `a`, separate `mul`/`add` — lane `l` of row `r` performs the
/// scalar fill's exact operation sequence for element `(r, l)`.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX-512F, `a_sub` holds
/// `MRA · k` floats and `b_panel` holds `(k-1) · b_stride + NR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn fill_tile_avx512<const MRA: usize>(
    k: usize,
    a_sub: &[f32],
    b_panel: &[f32],
    b_stride: usize,
    acc: &mut [[f32; NR]; MRA],
) {
    use std::arch::x86_64::*;
    let ap = a_sub.as_ptr();
    let bp = b_panel.as_ptr();
    let mut va = [_mm512_setzero_ps(); MRA];
    for p in 0..k {
        let b = _mm512_loadu_ps(bp.add(p * b_stride));
        for (r, v) in va.iter_mut().enumerate() {
            let a = _mm512_set1_ps(*ap.add(r * k + p));
            *v = _mm512_add_ps(*v, _mm512_mul_ps(a, b));
        }
    }
    for (r, v) in va.iter().enumerate() {
        _mm512_storeu_ps(acc[r].as_mut_ptr(), *v);
    }
}

/// AVX2 fill: two YMM accumulators per tile row, same contract as
/// [`fill_tile_avx512`].
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2, `a_sub` holds `MRA · k`
/// floats and `b_panel` holds `(k-1) · b_stride + NR`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_tile_avx2<const MRA: usize>(
    k: usize,
    a_sub: &[f32],
    b_panel: &[f32],
    b_stride: usize,
    acc: &mut [[f32; NR]; MRA],
) {
    use std::arch::x86_64::*;
    let ap = a_sub.as_ptr();
    let bp = b_panel.as_ptr();
    let mut lo = [_mm256_setzero_ps(); MRA];
    let mut hi = [_mm256_setzero_ps(); MRA];
    for p in 0..k {
        let b0 = _mm256_loadu_ps(bp.add(p * b_stride));
        let b1 = _mm256_loadu_ps(bp.add(p * b_stride + 8));
        for r in 0..MRA {
            let a = _mm256_set1_ps(*ap.add(r * k + p));
            lo[r] = _mm256_add_ps(lo[r], _mm256_mul_ps(a, b0));
            hi[r] = _mm256_add_ps(hi[r], _mm256_mul_ps(a, b1));
        }
    }
    for r in 0..MRA {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), lo[r]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), hi[r]);
    }
}

/// One `A·Bᵀ` output row: 4 key rows at a time share every load of the
/// query row, each element reproducing the shared [`dot`] arithmetic
/// bit-for-bit (same lane split, same summation order).
fn nt_row(k: usize, n: usize, a_row: &[f32], b: &[f32], out_row: &mut [f32]) {
    if k < DOT_LANES {
        // Below one lane chunk the shared dot is all tail; the 4-wide
        // tile would only pay accumulator setup for nothing.
        for (j, o) in out_row.iter_mut().enumerate() {
            *o += dot(a_row, &b[j * k..(j + 1) * k]);
        }
        return;
    }
    let mut j = 0;
    while j + 4 <= n {
        let d = dot4(
            a_row,
            &b[j * k..(j + 1) * k],
            &b[(j + 1) * k..(j + 2) * k],
            &b[(j + 2) * k..(j + 3) * k],
            &b[(j + 3) * k..(j + 4) * k],
        );
        for (o, &v) in out_row[j..j + 4].iter_mut().zip(&d) {
            *o += v;
        }
        j += 4;
    }
    for jj in j..n {
        out_row[jj] += dot(a_row, &b[jj * k..(jj + 1) * k]);
    }
}

/// Four lane-split dots sharing the `a` loads. Each result is bit-equal
/// to `dot(a, b_i)`: identical chunking, lane order and tail handling.
/// Dispatches to a SIMD variant at runtime — the `DOT_LANES = 16` lane
/// accumulators map onto one ZMM (or two YMM) per key row, and the
/// sequential lane fold and scalar tail are shared, so all variants
/// reproduce the scalar [`dot`] bit for bit.
#[inline]
fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    let mut acc = [[0.0f32; DOT_LANES]; 4];
    fill_dot4_lanes(a, [b0, b1, b2, b3], &mut acc);
    let k = a.len();
    let tail = k - k % DOT_LANES;
    let bs = [b0, b1, b2, b3];
    let mut out = [0.0f32; 4];
    for (r, o) in out.iter_mut().enumerate() {
        let mut sum = 0.0f32;
        for &lane in &acc[r] {
            sum += lane;
        }
        for p in tail..k {
            sum += a[p] * bs[r][p];
        }
        *o = sum;
    }
    out
}

/// Accumulates the full-chunk portion of [`dot4`] into per-row lane
/// accumulators, picking the widest vector extension available.
#[inline(always)]
fn fill_dot4_lanes(a: &[f32], bs: [&[f32]; 4], acc: &mut [[f32; DOT_LANES]; 4]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature probed; `nt_row` hands equal-length slices.
            unsafe { fill_dot4_lanes_avx512(a, bs, acc) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: as above.
            unsafe { fill_dot4_lanes_avx2(a, bs, acc) };
            return;
        }
    }
    fill_dot4_lanes_scalar(a, bs, acc);
}

/// Portable lane fill — the reference [`dot`] chunk arithmetic, four
/// key rows wide.
#[inline(always)]
fn fill_dot4_lanes_scalar(a: &[f32], bs: [&[f32]; 4], acc: &mut [[f32; DOT_LANES]; 4]) {
    let chunks = a.len() / DOT_LANES;
    for ci in 0..chunks {
        let base = ci * DOT_LANES;
        for l in 0..DOT_LANES {
            let av = a[base + l];
            for (r, b) in bs.iter().enumerate() {
                acc[r][l] += av * b[base + l];
            }
        }
    }
}

/// AVX-512F lane fill: one ZMM accumulator per key row, separate
/// `mul`/`add` — lane `l` repeats the scalar fill's operation sequence.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX-512F and every slice in `bs`
/// is at least as long as `a`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn fill_dot4_lanes_avx512(a: &[f32], bs: [&[f32]; 4], acc: &mut [[f32; DOT_LANES]; 4]) {
    use std::arch::x86_64::*;
    let chunks = a.len() / DOT_LANES;
    let ap = a.as_ptr();
    let mut va = [_mm512_setzero_ps(); 4];
    for ci in 0..chunks {
        let base = ci * DOT_LANES;
        let av = _mm512_loadu_ps(ap.add(base));
        for (r, v) in va.iter_mut().enumerate() {
            let b = _mm512_loadu_ps(bs[r].as_ptr().add(base));
            *v = _mm512_add_ps(*v, _mm512_mul_ps(av, b));
        }
    }
    for (r, v) in va.iter().enumerate() {
        _mm512_storeu_ps(acc[r].as_mut_ptr(), *v);
    }
}

/// AVX2 lane fill: two YMM accumulators per key row, same contract as
/// [`fill_dot4_lanes_avx512`].
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and every slice in `bs` is
/// at least as long as `a`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_dot4_lanes_avx2(a: &[f32], bs: [&[f32]; 4], acc: &mut [[f32; DOT_LANES]; 4]) {
    use std::arch::x86_64::*;
    let chunks = a.len() / DOT_LANES;
    let ap = a.as_ptr();
    let mut lo = [_mm256_setzero_ps(); 4];
    let mut hi = [_mm256_setzero_ps(); 4];
    for ci in 0..chunks {
        let base = ci * DOT_LANES;
        let a0 = _mm256_loadu_ps(ap.add(base));
        let a1 = _mm256_loadu_ps(ap.add(base + 8));
        for r in 0..4 {
            let b0 = _mm256_loadu_ps(bs[r].as_ptr().add(base));
            let b1 = _mm256_loadu_ps(bs[r].as_ptr().add(base + 8));
            lo[r] = _mm256_add_ps(lo[r], _mm256_mul_ps(a0, b0));
            hi[r] = _mm256_add_ps(hi[r], _mm256_mul_ps(a1, b1));
        }
    }
    for r in 0..4 {
        _mm256_storeu_ps(acc[r].as_mut_ptr(), lo[r]);
        _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), hi[r]);
    }
}

/// Column-striped tn body — the reference stripe walk with the rank-1
/// update swapped for [`axpy_wide`]; element order (increasing `p`,
/// single accumulator in `out`) is unchanged, so results are
/// bit-identical for any stripe width or thread count.
fn tn_striped(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32], stripe: usize) {
    use rayon::prelude::*;
    out.par_chunks_mut(stripe * n)
        .enumerate()
        .for_each(|(chunk_idx, out_block)| {
            let i0 = chunk_idx * stripe;
            let rows_here = out_block.len() / n;
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                let a_stripe = a_row[i0..i0 + rows_here].iter();
                for (&av, out_row) in a_stripe.zip(out_block.chunks_mut(n)) {
                    if nonzero(av) {
                        axpy_wide(av, b_row, out_row);
                    }
                }
            }
        });
}

/// `y += alpha · x` with runtime SIMD dispatch. Every element performs
/// exactly one `mul` and one `add` in place, so all variants are
/// bit-identical to the shared scalar [`super::axpy`].
#[inline(always)]
fn axpy_wide(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if x.len() >= 16 {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature probed; equal lengths asserted above.
            unsafe { axpy_avx512(alpha, x, y) };
            return;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: as above.
            unsafe { axpy_avx2(alpha, x, y) };
            return;
        }
    }
    super::axpy(alpha, x, y);
}

/// AVX-512F rank-1 update body.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX-512F and `x.len() == y.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn axpy_avx512(alpha: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = x.len();
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let av = _mm512_set1_ps(alpha);
    let mut j = 0;
    while j + 16 <= n {
        let yv = _mm512_loadu_ps(yp.add(j));
        let xv = _mm512_loadu_ps(xp.add(j));
        _mm512_storeu_ps(yp.add(j), _mm512_add_ps(yv, _mm512_mul_ps(av, xv)));
        j += 16;
    }
    while j < n {
        *yp.add(j) += alpha * *xp.add(j);
        j += 1;
    }
}

/// AVX2 rank-1 update body.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and `x.len() == y.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = x.len();
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let av = _mm256_set1_ps(alpha);
    let mut j = 0;
    while j + 8 <= n {
        let yv = _mm256_loadu_ps(yp.add(j));
        let xv = _mm256_loadu_ps(xp.add(j));
        _mm256_storeu_ps(yp.add(j), _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
        j += 8;
    }
    while j < n {
        *yp.add(j) += alpha * *xp.add(j);
        j += 1;
    }
}
