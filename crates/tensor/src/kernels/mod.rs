//! Swappable GEMM / dot kernel backends.
//!
//! Every dense matrix product in the crate funnels through the
//! [`KernelBackend`] trait: `tensor.rs` keeps shape checks and dispatch,
//! the raw slice arithmetic lives here. Two backends exist:
//!
//! * [`Reference`] — the scalar oracle. Bit-compatible with the kernels
//!   that historically lived inline in `tensor.rs`; every bitwise-parity
//!   guarantee in the workspace (batched vs per-node engines, striped
//!   `tn`, checkpoint restore) is stated against this backend.
//! * [`Optimized`] — packed, register-tiled forward GEMM (`A·B`) with a
//!   shape-specialised fast path for the paper-config inner dimensions,
//!   plus a 4-wide `A·Bᵀ` kernel that reuses query-row loads and a
//!   SIMD-axpy `Aᵀ·B`. Hot inner loops dispatch at runtime to AVX-512F /
//!   AVX2 intrinsics (the compile target is baseline x86-64) in the exact
//!   reference element order, so backward weight gradients and attention
//!   scores stay bit-identical across backends; `A·B` differs from
//!   [`Reference`] only by the documented tolerance contract (see
//!   `DESIGN.md`).
//!
//! The active backend is a per-[`crate::Tape`] property
//! ([`crate::Tape::set_backend`]); tensors' plain `matmul*` methods use
//! the process-wide default, initialised lazily from the
//! `WIDEN_KERNEL_BACKEND` environment variable (`reference` |
//! `optimized`, defaulting to `reference`).

pub(crate) mod optimized;
pub(crate) mod reference;

pub use optimized::Optimized;
pub use reference::Reference;

use std::sync::atomic::{AtomicU8, Ordering};

/// Work threshold (`m·k·n`) above which GEMM kernels parallelise via rayon.
pub(crate) const PAR_MATMUL_THRESHOLD: usize = 64 * 64 * 64;

/// Target byte footprint for one `gemm_tn_acc` output stripe (~half a
/// typical L2 slice), so the accumulating block stays cache-resident.
pub(crate) const TN_BLOCK_BYTES: usize = 256 * 1024;

/// Lane count for [`dot`]'s split accumulators. 16 f32 lanes give the
/// autovectoriser room for two 256-bit (or four 128-bit) accumulator
/// registers, breaking the loop-carried dependency of a scalar reduction
/// — ~5× faster than the naive loop on the `matmul_nt` backward shapes.
pub(crate) const DOT_LANES: usize = 16;

/// The slice-level dense kernel vocabulary a backend must provide.
///
/// All matrices are row-major `f32` slices; shapes are passed explicitly
/// and callers guarantee `a.len() == m·k` (or `k·m` for `tn`),
/// `b.len() == k·n` (`n·k` for `nt`) and `out.len() == m·n`. Every method
/// **accumulates** into `out` so backward passes can reuse gradient
/// buffers without a second sweep.
///
/// Implementations must be deterministic for a given input (including
/// across thread counts) and *row-deterministic*: the value written to an
/// output row may depend only on the participating input rows and the
/// shared operand, never on which other rows happen to be in the batch.
/// The batched execution engine's dedup/gather equivalence proof relies
/// on this.
pub trait KernelBackend: Send + Sync {
    /// Stable lowercase backend name (profiler labels, env selection).
    fn name(&self) -> &'static str;

    /// `out += A·B` with `A: m×k`, `B: k×n`, `out: m×n`.
    fn gemm_nn_acc(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]);

    /// `out += A·Bᵀ` with `A: m×k`, `B: n×k`, `out: m×n`.
    fn gemm_nt_acc(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]);

    /// `out += Aᵀ·B` with `A: k×m`, `B: k×n`, `out: m×n`.
    fn gemm_tn_acc(&self, m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]);

    /// Lane-split inner product of two equal-length slices.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;
}

/// Selector for one of the built-in kernel backends.
///
/// `Copy` + 1 byte so it can be threaded through tapes, configs and wire
/// formats for free. [`BackendKind::Reference`] is the default everywhere
/// a value is constructed without consulting [`default_backend`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum BackendKind {
    /// Scalar oracle, bit-compatible with the historical inline kernels.
    #[default]
    Reference = 0,
    /// Packed, register-tiled forward GEMM (tolerance-bounded vs
    /// [`BackendKind::Reference`] on `A·B`; bit-identical elsewhere).
    Optimized = 1,
}

static REFERENCE: Reference = Reference;
static OPTIMIZED: Optimized = Optimized;

impl BackendKind {
    /// The backend implementation this selector names.
    #[inline]
    pub fn dispatch(self) -> &'static dyn KernelBackend {
        match self {
            BackendKind::Reference => &REFERENCE,
            BackendKind::Optimized => &OPTIMIZED,
        }
    }

    /// Stable lowercase name (matches [`KernelBackend::name`]).
    pub fn name(self) -> &'static str {
        self.dispatch().name()
    }

    /// Parses a backend name as accepted by `WIDEN_KERNEL_BACKEND`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "reference" => Some(BackendKind::Reference),
            "optimized" => Some(BackendKind::Optimized),
            _ => None,
        }
    }

    /// Reads `WIDEN_KERNEL_BACKEND`; unset means [`BackendKind::Reference`].
    ///
    /// # Panics
    /// Panics on an unrecognised value — a typo in CI must fail loudly,
    /// not silently fall back to the oracle.
    pub fn from_env() -> Self {
        match std::env::var("WIDEN_KERNEL_BACKEND") {
            Ok(v) => Self::from_name(&v).unwrap_or_else(|| {
                panic!("unknown WIDEN_KERNEL_BACKEND value `{v}` (expected `reference` or `optimized`)")
            }),
            Err(_) => BackendKind::Reference,
        }
    }

    /// Both backends, for parameterised tests.
    pub fn all() -> [BackendKind; 2] {
        [BackendKind::Reference, BackendKind::Optimized]
    }
}

const DEFAULT_UNSET: u8 = u8::MAX;
static DEFAULT_BACKEND: AtomicU8 = AtomicU8::new(DEFAULT_UNSET);

/// The process-wide default backend used by tensors' plain `matmul*`
/// methods and freshly created tapes.
///
/// Lazily initialised from `WIDEN_KERNEL_BACKEND` on first read (so a CI
/// matrix can flip a whole test binary per run); overridable with
/// [`set_default_backend`].
pub fn default_backend() -> BackendKind {
    match DEFAULT_BACKEND.load(Ordering::Relaxed) {
        0 => BackendKind::Reference,
        1 => BackendKind::Optimized,
        _ => {
            let kind = BackendKind::from_env();
            DEFAULT_BACKEND.store(kind as u8, Ordering::Relaxed);
            kind
        }
    }
}

/// Overrides the process-wide default backend (see [`default_backend`]).
pub fn set_default_backend(kind: BackendKind) {
    DEFAULT_BACKEND.store(kind as u8, Ordering::Relaxed);
}

/// Whether `a` participates in a rank-1 update.
///
/// Only an exact `+0.0` may be skipped: skipping `-0.0` would be visible if
/// an accumulator row were negatively signed (and `-0.0` must behave like
/// any other value under IEEE-754 sign rules), while subnormals carry real
/// magnitude and must flow through the dense kernel arithmetic.
#[inline]
pub(crate) fn nonzero(a: f32) -> bool {
    a.to_bits() != 0
}

/// Lane-split inner product — the shared scalar `dot` kernel. Both
/// backends use this exact accumulation order, so attention scores and
/// `nt` products are bit-identical across backends.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; DOT_LANES];
    for (ac, bc) in a.chunks_exact(DOT_LANES).zip(b.chunks_exact(DOT_LANES)) {
        for l in 0..DOT_LANES {
            acc[l] += ac[l] * bc[l];
        }
    }
    let mut sum = 0.0f32;
    for &lane in &acc {
        sum += lane;
    }
    let tail = a.len() - a.len() % DOT_LANES;
    for (&x, &y) in a[tail..].iter().zip(&b[tail..]) {
        sum += x * y;
    }
    sum
}

/// `y += alpha · x`, the shared rank-1 update kernel.
#[inline]
pub(crate) fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_names() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.dispatch().name(), kind.name());
        }
        assert_eq!(
            BackendKind::from_name(" Optimized \n"),
            Some(BackendKind::Optimized)
        );
        assert_eq!(BackendKind::from_name("simd"), None);
    }

    #[test]
    fn set_default_backend_overrides_env_choice() {
        let before = default_backend();
        set_default_backend(BackendKind::Optimized);
        assert_eq!(default_backend(), BackendKind::Optimized);
        set_default_backend(before);
        assert_eq!(default_backend(), before);
    }
}
