//! Shape-keyed buffer pool for backward-pass gradient tensors.
//!
//! Every [`crate::Tape::backward`] sweep needs one gradient buffer per
//! touched node. Before the pool those buffers were freshly allocated each
//! backward pass and dropped with the tape — for the training hot loop that
//! meant thousands of identical-shape heap allocations per epoch. The pool
//! keeps returned buffers in per-shape free lists so a steady-state
//! backward pass performs **zero** gradient allocations: every
//! `take_zeroed` is a pop + memset.
//!
//! The pool lives on the tape ([`crate::Tape::take_pool`] /
//! [`crate::Tape::install_pool`] move it between tapes) so a trainer can
//! keep one pool per worker across chunks and epochs. Residency is capped
//! per shape ([`MAX_BUFFERS_PER_SHAPE`]) — recycling beyond the cap drops
//! the buffer, so a pathological shape mix cannot leak memory.

use std::cell::RefCell;

use rustc_hash::FxHashMap;

use crate::tensor::Tensor;

thread_local! {
    /// Per-thread packing scratch for the optimized GEMM backend (see
    /// [`with_pack_scratch`]). One buffer per thread, grown to the high
    ///-water mark and reused for the life of the thread.
    static PACK_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a thread-local `len`-element scratch slice.
///
/// This is the kernel backends' side of the buffer-reuse story: gradient
/// tensors cycle through the shape-keyed [`BufferPool`] on the tape, while
/// the packed-GEMM B panels — which live only for the duration of one
/// kernel call and have a per-thread lifetime, not a per-tape one — reuse
/// this thread-local arena. Together a steady-state training step performs
/// zero kernel-side allocations.
///
/// The slice is **not** zeroed between calls; callers must overwrite every
/// element they read. Nested calls on one thread would double-borrow and
/// panic — kernels never recurse into themselves, so this is a programming
/// error, not a runtime condition.
pub(crate) fn with_pack_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    PACK_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Free-list cap per distinct shape; recycles beyond it are dropped.
///
/// One backward pass needs at most one live buffer per tape node of a
/// given shape, and the WIDEN training graphs reuse a handful of shapes
/// (d×d weight grads, pack-matrix grads), so a small cap holds the
/// steady-state working set while bounding worst-case residency.
pub const MAX_BUFFERS_PER_SHAPE: usize = 64;

/// Monotonic counters describing pool behaviour (snapshot semantics: take
/// two snapshots and subtract for a per-region delta).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take_zeroed` calls served from a free list.
    pub hits: u64,
    /// `take_zeroed` calls that had to heap-allocate.
    pub misses: u64,
    /// Buffers accepted back into a free list.
    pub recycled: u64,
    /// Buffers rejected at recycle time (pool disabled or shape cap hit).
    pub dropped: u64,
    /// Bytes served from free lists (4 × elements over all hits).
    pub bytes_reused: u64,
    /// Buffers currently parked in free lists.
    pub resident_buffers: u64,
    /// Bytes currently parked in free lists.
    pub resident_bytes: u64,
}

/// A shape-keyed recycler of `f32` buffers for gradient tensors.
///
/// Enabled by default on every [`crate::Tape`]; a disabled pool (see
/// [`BufferPool::disabled`]) degrades to plain allocation — used by the
/// differential tests that pin pooled gradients to the alloc-per-op path.
#[derive(Debug)]
pub struct BufferPool {
    enabled: bool,
    free: FxHashMap<(u32, u32), Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
    recycled: u64,
    dropped: u64,
    bytes_reused: u64,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// An empty, enabled pool.
    pub fn new() -> Self {
        Self {
            enabled: true,
            free: FxHashMap::default(),
            hits: 0,
            misses: 0,
            recycled: 0,
            dropped: 0,
            bytes_reused: 0,
        }
    }

    /// A pool that never retains buffers: every take allocates, every
    /// recycle drops. Behaviourally identical to pre-pool code.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::new()
        }
    }

    /// Whether this pool retains buffers.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Free-list hits so far (cheap accessor for per-op profiling deltas).
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Allocating takes so far (cheap accessor for per-op profiling deltas).
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// A zero-filled `rows × cols` tensor, reusing a parked buffer of the
    /// same shape when one is available.
    pub fn take_zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        let key = (rows as u32, cols as u32);
        if let Some(mut buf) = self.free.get_mut(&key).and_then(Vec::pop) {
            debug_assert_eq!(buf.len(), rows * cols);
            buf.fill(0.0);
            self.hits += 1;
            self.bytes_reused += (buf.len() * std::mem::size_of::<f32>()) as u64;
            Tensor::from_vec(rows, cols, buf)
        } else {
            self.misses += 1;
            Tensor::zeros(rows, cols)
        }
    }

    /// Returns a tensor's buffer to the free list of its shape. Drops it
    /// instead when the pool is disabled or the shape's cap is reached.
    pub fn recycle(&mut self, t: Tensor) {
        if !self.enabled || t.is_empty() {
            self.dropped += 1;
            return;
        }
        let key = (t.rows() as u32, t.cols() as u32);
        let bucket = self.free.entry(key).or_default();
        if bucket.len() >= MAX_BUFFERS_PER_SHAPE {
            self.dropped += 1;
        } else {
            bucket.push(t.into_vec());
            self.recycled += 1;
        }
    }

    /// Drops every parked buffer, keeping counters.
    pub fn clear(&mut self) {
        self.free.clear();
    }

    /// Current counters plus residency.
    pub fn stats(&self) -> PoolStats {
        let mut resident_buffers = 0u64;
        let mut resident_bytes = 0u64;
        for (&(r, c), bucket) in &self.free {
            resident_buffers += bucket.len() as u64;
            resident_bytes += bucket.len() as u64
                * u64::from(r)
                * u64::from(c)
                * std::mem::size_of::<f32>() as u64;
        }
        PoolStats {
            hits: self.hits,
            misses: self.misses,
            recycled: self.recycled,
            dropped: self.dropped,
            bytes_reused: self.bytes_reused,
            resident_buffers,
            resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycle_take_reuses_the_buffer() {
        let mut pool = BufferPool::new();
        let a = pool.take_zeroed(3, 4);
        assert_eq!(pool.stats().misses, 1);
        pool.recycle(a);
        let b = pool.take_zeroed(3, 4);
        assert_eq!(b.shape(), (3, 4));
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.bytes_reused, 48);
    }

    #[test]
    fn shape_mismatch_never_crosses_buckets() {
        let mut pool = BufferPool::new();
        pool.recycle(Tensor::zeros(2, 2));
        let t = pool.take_zeroed(4, 1);
        assert_eq!(t.shape(), (4, 1));
        // 2×2 stayed parked; 4×1 was a miss.
        let s = pool.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.resident_buffers, 1);
    }

    #[test]
    fn recycled_dirty_buffer_comes_back_zeroed() {
        let mut pool = BufferPool::new();
        pool.recycle(Tensor::full(2, 3, 7.5));
        let t = pool.take_zeroed(2, 3);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn per_shape_cap_bounds_residency() {
        let mut pool = BufferPool::new();
        for _ in 0..MAX_BUFFERS_PER_SHAPE + 10 {
            pool.recycle(Tensor::zeros(1, 8));
        }
        let s = pool.stats();
        assert_eq!(s.resident_buffers, MAX_BUFFERS_PER_SHAPE as u64);
        assert_eq!(s.dropped, 10);
    }

    #[test]
    fn disabled_pool_allocates_and_drops() {
        let mut pool = BufferPool::disabled();
        pool.recycle(Tensor::zeros(2, 2));
        let _ = pool.take_zeroed(2, 2);
        let s = pool.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.resident_buffers, 0);
    }
}
