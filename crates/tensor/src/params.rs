//! Named, ordered parameter storage shared by models and optimizers.

use rustc_hash::FxHashMap;

use crate::tensor::Tensor;

/// Stable handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index into the store's dense arrays (used by optimizers).
    pub fn index(self) -> usize {
        self.0
    }
}

/// An insertion-ordered collection of named trainable tensors.
///
/// Insertion order is the canonical iteration order everywhere (optimizer
/// state, serialisation, gradient application), which keeps runs bit-for-bit
/// reproducible for a fixed seed.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    tensors: Vec<Tensor>,
    lookup: FxHashMap<String, usize>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter; returns its handle.
    ///
    /// # Panics
    /// Panics if the name is already registered.
    pub fn register(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.lookup.contains_key(&name),
            "parameter `{name}` registered twice"
        );
        let id = ParamId(self.tensors.len());
        self.lookup.insert(name.clone(), id.0);
        self.names.push(name);
        self.tensors.push(tensor);
        id
    }

    /// Handle for a registered name, if present.
    pub fn id(&self, name: &str) -> Option<ParamId> {
        self.lookup.get(name).copied().map(ParamId)
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter (optimizer updates).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Iterates `(id, name, tensor)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.names
            .iter()
            .zip(&self.tensors)
            .enumerate()
            .map(|(i, (n, t))| (ParamId(i), n.as_str(), t))
    }

    /// Deep copy of all parameter tensors (snapshot for best-model keeping).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.tensors.clone()
    }

    /// Restores a snapshot taken with [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store's layout.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        assert_eq!(
            snapshot.len(),
            self.tensors.len(),
            "snapshot layout mismatch"
        );
        for (dst, src) in self.tensors.iter_mut().zip(snapshot) {
            assert_eq!(dst.shape(), src.shape(), "snapshot shape mismatch");
            *dst = src.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::zeros(2, 3));
        assert_eq!(store.id("w"), Some(w));
        assert_eq!(store.id("missing"), None);
        assert_eq!(store.name(w), "w");
        assert_eq!(store.get(w).shape(), (2, 3));
        assert_eq!(store.scalar_count(), 6);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(1, 1));
        store.register("w", Tensor::zeros(1, 1));
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::full(1, 2, 1.0));
        let snap = store.snapshot();
        store.get_mut(w).scale_inplace(5.0);
        assert_eq!(store.get(w).as_slice(), &[5.0, 5.0]);
        store.restore(&snap);
        assert_eq!(store.get(w).as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut store = ParamStore::new();
        store.register("b", Tensor::zeros(1, 1));
        store.register("a", Tensor::zeros(1, 1));
        let names: Vec<&str> = store.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
    }
}
